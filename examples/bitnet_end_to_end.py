"""End-to-end BitNet-b1.58-3B inference on LUT-extended GPUs.

Reproduces the Table 1 scenario: prefill (BS1, seq 2048) and decode
(BS1024, one token) latency of BitNet-3B running WINT2AINT8 on a stock
A100, and on A100s retrofitted with LUT tensor cores at 4x/8x array
scale — plus the per-kernel breakdown of where the time goes.

Run:  python examples/bitnet_end_to_end.py
"""

from repro.datatypes import FP16, INT8
from repro.models.configs import BITNET_3B
from repro.models.transformer import InferencePhase
from repro.sim.gpu_specs import A100, with_lut_extension
from repro.sim.tile_sim import PrecomputeMode, TileSimulator


def main() -> None:
    print(f"model: {BITNET_3B.name} "
          f"({BITNET_3B.total_params / 1e9:.2f}B params, "
          f"{BITNET_3B.layers} layers)")

    configs = [
        ("A100 FP16 TC (WFP16AFP16)", A100, 16, FP16, PrecomputeMode.NONE),
        ("A100 INT8 TC (WINT2AINT8 dequant)", A100, 16, INT8,
         PrecomputeMode.NONE),
        ("A100-LUT-4X (WINT2AINT8)",
         with_lut_extension(A100, 4, reg_scale=2.0, weight_bits=2),
         2, INT8, PrecomputeMode.FUSED),
        ("A100-LUT-8X (WINT2AINT8)",
         with_lut_extension(A100, 8, reg_scale=2.0, weight_bits=2),
         2, INT8, PrecomputeMode.FUSED),
    ]

    print(f"\n{'configuration':<36} {'prefill':>10} {'decode':>10} "
          f"{'speedup':>8}")
    base_prefill = base_decode = None
    for label, spec, weight_bits, act, precompute in configs:
        sim = TileSimulator(spec)
        prefill = sim.model_inference_ms(
            BITNET_3B, 1, 2048, InferencePhase.PREFILL,
            weight_bits=weight_bits, act_dtype=act, precompute=precompute,
        )
        decode = sim.model_inference_ms(
            BITNET_3B, 1024, 1, InferencePhase.DECODE,
            weight_bits=weight_bits, act_dtype=act, precompute=precompute,
        )
        if base_prefill is None:
            base_prefill, base_decode = prefill, decode
        print(f"{label:<36} {prefill:>8.2f}ms {decode:>8.2f}ms "
              f"{base_decode / decode:>7.2f}x")

    # Where does one LUT-8X prefill layer spend its time?
    spec = with_lut_extension(A100, 8, reg_scale=2.0, weight_bits=2)
    timing = TileSimulator(spec).time_model(
        BITNET_3B, 1, 2048, InferencePhase.PREFILL,
        weight_bits=2, act_dtype=INT8, precompute=PrecomputeMode.FUSED,
    )
    print("\nper-kernel breakdown of one LUT-8X prefill layer:")
    for group in sorted(timing.groups, key=lambda g: -g.time_s)[:8]:
        print(f"  {group.name[:52]:<54} {group.time_s * 1e3:7.3f} ms "
              f"[{group.bound}-bound]")


if __name__ == "__main__":
    main()
