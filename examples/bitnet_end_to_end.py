"""End-to-end BitNet-b1.58-3B inference on LUT-extended GPUs.

Reproduces the Table 1 scenario: prefill (BS1, seq 2048) and decode
(BS1024, one token) latency of BitNet-3B running WINT2AINT8 on a stock
A100, and on A100s retrofitted with LUT tensor cores at 4x/8x array
scale — plus the per-kernel breakdown of where the time goes.

The analytic simulation is then grounded by the *numeric* serving
runtime: a width-scaled BitNet-style decoder (same layer recipe — GQA
projections, gated FFN — with 2-bit weights) actually serves a batch of
requests through :class:`~repro.runtime.ServingEngine`, KV-cached
decode steps and all, on the registered mpGEMM kernel backend.

Run:  python examples/bitnet_end_to_end.py
"""

import numpy as np

from repro.datatypes import FP16, INT8
from repro.models.configs import BITNET_3B, ModelConfig
from repro.models.transformer import InferencePhase
from repro.runtime import (
    DecoderModel,
    Request,
    RuntimeConfig,
    SamplingParams,
    ServingEngine,
)
from repro.sim.gpu_specs import A100, with_lut_extension
from repro.sim.tile_sim import PrecomputeMode, TileSimulator

#: BitNet-3B's layer recipe at 1/50th width: small enough that the
#: numeric engine decodes in seconds, same shapes qualitatively (gated
#: FFN, ffn = 2.7x hidden, 2-bit ternary-style weights).
BITNET_MICRO = ModelConfig(
    "bitnet-micro", hidden=64, ffn=172, layers=2, heads=4, kv_heads=4,
    vocab=512, gated_ffn=True,
)


def main() -> None:
    print(f"model: {BITNET_3B.name} "
          f"({BITNET_3B.total_params / 1e9:.2f}B params, "
          f"{BITNET_3B.layers} layers)")

    configs = [
        ("A100 FP16 TC (WFP16AFP16)", A100, 16, FP16, PrecomputeMode.NONE),
        ("A100 INT8 TC (WINT2AINT8 dequant)", A100, 16, INT8,
         PrecomputeMode.NONE),
        ("A100-LUT-4X (WINT2AINT8)",
         with_lut_extension(A100, 4, reg_scale=2.0, weight_bits=2),
         2, INT8, PrecomputeMode.FUSED),
        ("A100-LUT-8X (WINT2AINT8)",
         with_lut_extension(A100, 8, reg_scale=2.0, weight_bits=2),
         2, INT8, PrecomputeMode.FUSED),
    ]

    print(f"\n{'configuration':<36} {'prefill':>10} {'decode':>10} "
          f"{'speedup':>8}")
    base_prefill = base_decode = None
    for label, spec, weight_bits, act, precompute in configs:
        sim = TileSimulator(spec)
        prefill = sim.model_inference_ms(
            BITNET_3B, 1, 2048, InferencePhase.PREFILL,
            weight_bits=weight_bits, act_dtype=act, precompute=precompute,
        )
        decode = sim.model_inference_ms(
            BITNET_3B, 1024, 1, InferencePhase.DECODE,
            weight_bits=weight_bits, act_dtype=act, precompute=precompute,
        )
        if base_prefill is None:
            base_prefill, base_decode = prefill, decode
        print(f"{label:<36} {prefill:>8.2f}ms {decode:>8.2f}ms "
              f"{base_decode / decode:>7.2f}x")

    # Where does one LUT-8X prefill layer spend its time?
    spec = with_lut_extension(A100, 8, reg_scale=2.0, weight_bits=2)
    timing = TileSimulator(spec).time_model(
        BITNET_3B, 1, 2048, InferencePhase.PREFILL,
        weight_bits=2, act_dtype=INT8, precompute=PrecomputeMode.FUSED,
    )
    print("\nper-kernel breakdown of one LUT-8X prefill layer:")
    for group in sorted(timing.groups, key=lambda g: -g.time_s)[:8]:
        print(f"  {group.name[:52]:<54} {group.time_s * 1e3:7.3f} ms "
              f"[{group.bound}-bound]")

    serve_numeric()


def serve_numeric() -> None:
    """Serve a request batch through the numeric runtime (W2, INT4 KV)."""
    model = DecoderModel(
        BITNET_MICRO,
        RuntimeConfig(weight_bits=2, kv_bits=4, max_seq_len=96, seed=3),
    )
    engine = ServingEngine(model, max_batch_size=4)
    rng = np.random.default_rng(3)
    for i in range(8):
        prompt = tuple(
            int(t) for t in
            rng.integers(0, BITNET_MICRO.vocab, int(rng.integers(4, 24)))
        )
        engine.submit(Request(
            request_id=f"bitnet-{i}",
            prompt=prompt,
            max_new_tokens=int(rng.integers(4, 14)),
            sampling=SamplingParams(top_k=4 if i % 2 else None, seed=i),
        ))
    results, stats = engine.run()
    print(f"\nnumeric serving ({BITNET_MICRO.name}, W2 weights, INT4 KV, "
          f"backend={model.head.engine.backend.name}):")
    print(f"  {stats.requests} requests "
          f"({stats.prompt_tokens} prompt + {stats.generated_tokens} "
          f"generated tokens) in {stats.wall_s:.2f}s "
          f"-> {stats.throughput_tok_s:.0f} tok/s, "
          f"mean decode batch {stats.mean_batch:.2f}")
    by_reason: dict[str, int] = {}
    for r in results:
        by_reason[r.finish_reason] = by_reason.get(r.finish_reason, 0) + 1
    print(f"  completions: {by_reason}; decode attention visited "
          f"{model.stats['attn_context_tokens']} cached tokens over "
          f"{model.stats['decode_steps']} batched steps")


if __name__ == "__main__":
    main()
