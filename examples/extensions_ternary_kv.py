"""The paper's Section 5 extensions: ternary weights and KV-cache mpGEMM.

1. BitNet b1.58-style ternary weights through the base-3 LUT engine:
   3 ternary digits pack into 5 bits (vs 6 for bit-plane storage), index
   a 27-entry table, and reproduce the dequantized matmul exactly.
2. FP4 (E2M1) weights via the mantissa-as-index / exponent-as-shift
   strategy.
3. Decode attention with a 4-bit quantized KV cache, evaluated through
   the LUT engine per head.

Run:  python examples/extensions_ternary_kv.py
"""

import numpy as np

from repro.datatypes import INT8
from repro.lut.attention import (
    QuantizedKvCache,
    dequant_decode_attention,
    float_decode_attention,
    lut_decode_attention,
)
from repro.lut.fp_weights import (
    fp4_dequant_reference,
    fp4_lut_mpgemm,
    quantize_fp4,
)
from repro.lut.ternary import TernaryLutEngine, ternary_dequant_reference
from repro.quant.ternary import pack_ternary, quantize_ternary


def main() -> None:
    rng = np.random.default_rng(0)

    print("=" * 60)
    print("1. Ternary (BitNet b1.58) weights")
    print("=" * 60)
    weights = rng.normal(size=(256, 768))
    activations = rng.normal(size=(4, 768))
    tw = quantize_ternary(weights)
    zeros = float((tw.digits == 0).mean())
    print(f"absmean scale {tw.scale:.3f}; {zeros:.0%} zeros")
    packed = pack_ternary(tw.digits)
    print(f"packed: {packed.nbytes} bytes = "
          f"{8 * packed.nbytes / tw.digits.size:.2f} bits/weight "
          f"(bit-plane storage would need 2.0)")
    engine = TernaryLutEngine(tw)
    err = np.abs(
        engine.matmul(activations) - ternary_dequant_reference(activations, tw)
    ).max()
    print(f"27-entry-table LUT vs dequant reference: max |err| = {err:.2e}")

    print()
    print("=" * 60)
    print("2. FP4 (E2M1) weights: mantissa index + exponent shift")
    print("=" * 60)
    fw = quantize_fp4(weights)
    err = np.abs(
        fp4_lut_mpgemm(activations, fw)
        - fp4_dequant_reference(activations, fw)
    ).max()
    print(f"FP4 LUT vs dequant reference: max |err| = {err:.2e}")

    print()
    print("=" * 60)
    print("3. Decode attention on a 4-bit KV cache")
    print("=" * 60)
    heads, context, dim = 8, 256, 64
    k_cache = rng.normal(size=(heads, context, dim))
    v_cache = rng.normal(size=(heads, context, dim))
    query = rng.normal(size=(heads, dim))
    reference = float_decode_attention(query, k_cache, v_cache)
    cache = QuantizedKvCache.quantize(k_cache, v_cache, bits=4)
    fp_bytes = 2 * heads * context * dim * 2
    print(f"cache: {fp_bytes / 1e6:.2f} MB FP16 -> "
          f"{cache.memory_bytes() / 1e6:.2f} MB INT4 "
          f"({fp_bytes / cache.memory_bytes():.0f}x)")
    lut = lut_decode_attention(query, cache, table_dtype=INT8)
    dequant = dequant_decode_attention(query, cache)
    scale = np.abs(reference).max()
    print(f"cache-quantization error vs FP: "
          f"{np.abs(dequant - reference).max() / scale:.4f}")
    print(f"extra error from LUT evaluation: "
          f"{np.abs(lut - dequant).max() / scale:.2e}")


if __name__ == "__main__":
    main()
