"""Accuracy study: does INT8 table quantization hurt? (Table 5)

Trains a small NumPy transformer LM on a synthetic Markov language,
quantizes its weights to 2 bits with straight-through QAT, and evaluates
perplexity / next-token accuracy with (a) dequantized weights and (b) the
full LUT pipeline with INT8 tables. The table-quantization delta is the
paper's headline accuracy claim.

Run:  python examples/accuracy_study.py

The full published table (four model rows, five-task battery) is the
``table5`` experiment:  python -m repro.experiments.harness run table5
"""

from repro.accuracy.data import SyntheticLanguage
from repro.accuracy.metrics import next_token_accuracy, perplexity
from repro.accuracy.model import TransformerConfig, TransformerLM, train_lm
from repro.accuracy.quantize_model import (
    LinearMode,
    make_executor,
    qat_finetune,
)


def main() -> None:
    lang = SyntheticLanguage(vocab=64, branching=8, seed=0)
    train_tokens = lang.sample(20_000, seed=1)
    val_tokens = lang.sample(4_000, seed=2)
    print(f"synthetic language: vocab 64, entropy-bound PPL "
          f"{2.718281828 ** lang.entropy_bound_nats():.2f}")

    cfg = TransformerConfig(vocab=64, dim=32, blocks=2, ctx=16)
    model = TransformerLM(cfg, seed=0)
    losses = train_lm(
        model, lang.batches(train_tokens, cfg.ctx, 32, seed=3), steps=400
    )
    print(f"trained {sum(p.value.size for p in model.parameters())} params; "
          f"loss {losses[0]:.2f} -> {losses[-1]:.2f}")

    def report(label, executor=None):
        ppl = perplexity(model, val_tokens, executor=executor)
        acc = next_token_accuracy(model, val_tokens, executor=executor)
        print(f"{label:<34} PPL {ppl:6.3f}   acc {acc:.3f}")
        return ppl

    report("FP16 (full precision)")
    report("W2 post-training quantization",
           make_executor(model, LinearMode.QUANT_DEQUANT, bits=2))

    print("running straight-through QAT fine-tune ...")
    qat_finetune(model, lang.batches(train_tokens, cfg.ctx, 32, seed=4),
                 bits=2, steps=200)
    ppl_qat = report("W2 after QAT",
                     make_executor(model, LinearMode.QUANT_DEQUANT, bits=2))
    ppl_lut = report("W2 + LUT INT8 tables",
                     make_executor(model, LinearMode.LUT_INT8_TABLE, bits=2))
    delta = 100 * abs(ppl_lut - ppl_qat) / ppl_qat
    print(f"\nINT8 table quantization PPL delta: {delta:.3f}% "
          "(paper: 7.68 -> 7.69, ~0.1%)")


if __name__ == "__main__":
    main()
