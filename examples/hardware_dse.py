"""Hardware design-space exploration with the PPA model.

Walks the paper's hardware methodology: pick the lookup length K with a
dot-product-unit sweep (Fig. 11), compare design styles at DP4 level
(Fig. 12), then sweep tensor-core MNK factorizations and extract the
Pareto frontier (Fig. 14) — landing on the elongated M2 N64 K4 array.

Run:  python examples/hardware_dse.py
"""

from repro.datatypes import FP16, INT8
from repro.experiments.harness import resolve, run_many
from repro.hw.dotprod import DotProductKind, dp_unit_cost
from repro.hw.dse import best_by_area_power, pareto_frontier, sweep_mnk


def main() -> None:
    print("=" * 64)
    print("Step 1 — choose K (LUT DP unit, W1 weights)")
    print("=" * 64)
    for act in (FP16, INT8):
        densities = {
            k: dp_unit_cost(
                DotProductKind.LUT_TENSOR_CORE, k, act, 1
            ).compute_density_tflops_mm2
            for k in range(2, 9)
        }
        peak = max(densities, key=densities.get)
        row = "  ".join(f"K{k}:{v:5.1f}" for k, v in densities.items())
        print(f"A={act.name:<9} {row}  -> peak K={peak}")

    print()
    print("=" * 64)
    print("Step 2 — DP4 design styles (A=FP16)")
    print("=" * 64)
    for kind in (DotProductKind.MAC, DotProductKind.ADD_SERIAL,
                 DotProductKind.LUT_CONVENTIONAL,
                 DotProductKind.LUT_TENSOR_CORE):
        wb = 16 if kind is DotProductKind.MAC else 1
        unit = dp_unit_cost(kind, 4, FP16, min(wb, 8), include_post=False)
        print(f"{kind.value:<18} {unit.compute_density_tflops_mm2:7.2f} "
              f"TFLOPs/mm^2  {unit.power_mw:6.3f} mW")

    print()
    print("=" * 64)
    print("Step 3 — tensor-core MNK sweep (W1 x AFP16, 512 lanes)")
    print("=" * 64)
    points = sweep_mnk(DotProductKind.LUT_TENSOR_CORE, FP16, 1)
    frontier = pareto_frontier(points)
    best = best_by_area_power(points)
    print(f"swept {len(points)} configurations; "
          f"{len(frontier)} on the Pareto frontier:")
    for p in frontier:
        marker = "  <== min area x power" if p.mnk == best.mnk else ""
        print(f"  MNK={str(p.mnk):<14} area {p.area_um2:9.0f} um^2  "
              f"power {p.power_mw:6.2f} mW{marker}")

    mac_best = best_by_area_power(sweep_mnk(DotProductKind.MAC, FP16, 1))
    print(f"\nMAC optimum {mac_best.mnk}: {mac_best.area_um2:.0f} um^2, "
          f"{mac_best.power_mw:.2f} mW")
    print(f"LUT vs MAC reduction: area {mac_best.area_um2 / best.area_um2:.1f}x,"
          f" power {mac_best.power_mw / best.power_mw:.1f}x")

    print()
    print("=" * 64)
    print("Step 4 — cross-check against the paper experiments (harness)")
    print("=" * 64)
    # The walk above is the tutorial version of Fig. 11 and Fig. 14; the
    # harness runs the full published sweeps through the same models.
    for run in run_many(resolve(["fig11", "fig14"]), jobs=2):
        print(f"\n--- {run.name} ({run.spec.meta.paper_ref}) ---")
        print(run.text)


if __name__ == "__main__":
    main()
