"""Quickstart: LUT-based mpGEMM in five minutes.

Quantizes a weight matrix to 2 bits, reinterprets it onto the symmetric
grid, and runs activations through the LUT pipeline — showing that the
result matches the dequantization-based reference exactly, and that INT8
table quantization (the only lossy knob) costs ~1e-3 relative error.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    LutMpGemmEngine,
    dequant_mpgemm_reference,
    quantize_weights,
    reinterpret_symmetric,
)
from repro.datatypes import FP16, INT8
from repro.lut.mpgemm import LutMpGemmConfig


def main() -> None:
    rng = np.random.default_rng(0)
    out_features, in_features, batch = 512, 1024, 8
    weights = rng.normal(size=(out_features, in_features))
    activations = rng.normal(size=(batch, in_features))

    # 1. Offline: quantize weights to 2-bit unsigned affine codes.
    qw = quantize_weights(weights, bits=2, axis=0)
    print(f"weights: {weights.shape} -> {qw.bits}-bit codes, "
          f"{qw.codes.nbytes // 8} packed bytes equivalent")

    # 2. Offline: reinterpret onto the symmetric odd grid (Eq. 2). The
    #    dequantized values are preserved exactly.
    rw = reinterpret_symmetric(qw)
    assert np.allclose(rw.dequantize(), qw.dequantize(), rtol=1e-12)
    print(f"reinterpreted codes in {{{rw.codes.min()}..{rw.codes.max()}}}, "
          "all odd — every bit-plane is ±1")

    # 3. Online: run the LUT pipeline (symmetrized tables, bit-serial
    #    lookups) and compare against the dequantization reference.
    engine = LutMpGemmEngine(rw, LutMpGemmConfig(act_dtype=FP16))
    out_lut = engine.matmul(activations)
    out_ref = dequant_mpgemm_reference(activations, qw, act_dtype=FP16)
    print(f"LUT vs dequant reference max |err|: "
          f"{np.abs(out_lut - out_ref).max():.2e} (exact)")

    # 4. Enable INT8 table quantization (the hardware configuration).
    engine8 = LutMpGemmEngine(
        rw, LutMpGemmConfig(act_dtype=FP16, table_dtype=INT8)
    )
    out_int8 = engine8.matmul(activations)
    rel = np.abs(out_int8 - out_ref).max() / np.abs(out_ref).max()
    print(f"with INT8 tables, relative error: {rel:.2e} "
          "(negligible — Table 5's claim)")

    # 5. The table the hardware sees: 8 entries per 4 activations.
    table = engine8.precompute(activations[:1])
    print(f"precomputed table shape (M, groups, entries): {table.shape}")


if __name__ == "__main__":
    main()
