"""The compilation stack end to end on a LLAMA2-7B layer.

Shows the paper's Section 3.3 pipeline: build the layer DFG, run the
mpGEMM -> precompute + LUT-mpGEMM transformation, fuse element-wise
chains (precompute disappears into its producer), schedule the big FFN
mpGEMM onto LMMA instructions, and functionally execute the generated
kernel to prove it computes the right numbers.

Run:  python examples/compiler_pipeline.py
"""

import numpy as np

from repro.compiler.codegen import generate_kernel
from repro.compiler.passes import (
    fusion_groups,
    graph_traffic_bytes,
    split_mpgemm_pass,
)
from repro.compiler.scheduler import schedule_gemm
from repro.datatypes import FP16
from repro.models.configs import LLAMA2_7B
from repro.models.transformer import InferencePhase, build_layer_graph
from repro.models.workloads import GemmShape
from repro.quant.weight import quantize_weights
from repro.sim.gpu_specs import A100, with_lut_extension


def main() -> None:
    # 1. Build the quantized layer DFG.
    graph = build_layer_graph(
        LLAMA2_7B, batch=1, seqlen=256, phase=InferencePhase.PREFILL,
        weight_bits=2,
    )
    print(f"layer graph: {len(graph)} operators, "
          f"{graph.total_flops / 1e9:.1f} GFLOPs")

    # 2. DFG transformation: split every mpGEMM.
    transformed = split_mpgemm_pass(graph)
    print(f"after split pass: {len(transformed)} operators "
          f"(+{len(transformed) - len(graph)} precompute ops)")

    # 3. Operator fusion.
    groups = fusion_groups(transformed)
    print(f"fusion: {len(transformed)} ops -> {len(groups)} kernels")
    for g in groups:
        if len(g.operators) > 1:
            print(f"  fused kernel: {g.name}")
    unfused = graph_traffic_bytes(transformed, fused=False)
    fused = graph_traffic_bytes(transformed, fused=True)
    print(f"memory traffic: {unfused / 1e6:.1f} MB -> {fused / 1e6:.1f} MB "
          f"({100 * (1 - fused / unfused):.0f}% saved)")

    # 4. Schedule the FFN-up mpGEMM onto the LUT tensor core.
    spec = with_lut_extension(A100, array_scale=4, reg_scale=2.0,
                              weight_bits=2)
    shape = GemmShape(256, 2 * LLAMA2_7B.ffn, LLAMA2_7B.hidden, "ffn_up")
    schedule = schedule_gemm(shape, spec, FP16, weight_bits=2, use_lut=True)
    print(f"\nschedule for {shape.label}: block tile "
          f"({schedule.tile.block_m}, {schedule.tile.block_n}, "
          f"{schedule.tile.block_k}), warp tile "
          f"({schedule.tile.warp_m}, {schedule.tile.warp_n})")
    print(f"bound instruction: {schedule.instruction.name} "
          f"({schedule.instruction.serial_cycles} bit-serial cycle(s))")

    # 5. Generate and functionally execute the kernel on a small slice.
    small = GemmShape(32, 128, 256)
    small_schedule = schedule_gemm(small, spec, FP16, weight_bits=2,
                                   use_lut=True)
    kernel = generate_kernel(small_schedule)
    rng = np.random.default_rng(0)
    activations = rng.normal(size=(small.m, small.k))
    qw = quantize_weights(rng.normal(size=(small.n, small.k)), 2)
    out = kernel.execute(activations, qw)
    from repro.lut.mpgemm import dequant_mpgemm_reference

    ref = dequant_mpgemm_reference(activations, qw, act_dtype=FP16)
    print(f"\ngenerated kernel {kernel.name}")
    print(f"functional check vs reference: max |err| = "
          f"{np.abs(out - ref).max():.2e}")


if __name__ == "__main__":
    main()
