"""Reproduce the paper's tables and figures through the harness API.

Everything the CLI does is available programmatically: select
experiments by name or tag, run cache misses in parallel worker
processes, and get structured (JSON-ready) data back alongside the
formatted text. This script regenerates the two headline results
(Figure 17 end-to-end speedups, Table 1 overall comparison) plus every
"cheap"-tagged experiment, using an on-disk cache so reruns are
near-instant.

Run:  python examples/reproduce_paper.py

Equivalent CLI:
    python -m repro.experiments.harness run fig17 table1 --jobs 2
    python -m repro.experiments.harness run --tag cheap --jobs 4
"""

from pathlib import Path

from repro.experiments.harness import (
    CACHE_DIRNAME,
    ResultCache,
    resolve,
    run_many,
)

ARTIFACTS_DIR = Path("artifacts")


def main() -> None:
    cache = ResultCache(ARTIFACTS_DIR / CACHE_DIRNAME)

    print("=" * 64)
    print("Headline results: Figure 17 and Table 1")
    print("=" * 64)
    for run in run_many(resolve(["fig17", "table1"]), jobs=2, cache=cache):
        origin = "cache" if run.cached else f"{run.elapsed_s:.2f}s"
        print(f"\n--- {run.name} [{origin}] ---")
        print(run.text)

    print()
    print("=" * 64)
    print("Everything tagged 'cheap', 4 workers")
    print("=" * 64)
    runs = run_many(resolve(tags=["cheap"]), jobs=4, cache=cache)
    for run in runs:
        origin = "cache" if run.cached else f"{run.elapsed_s:.2f}s"
        print(f"  {run.name:<12} {run.spec.meta.paper_ref:<28} [{origin}]")
    print(f"\n{sum(not r.cached for r in runs)} computed, "
          f"{sum(r.cached for r in runs)} from cache "
          f"(cache dir: {cache.directory})")


if __name__ == "__main__":
    main()
