"""Serving quickstart: continuous batching over the LUT kernel seam.

Builds a small numeric decoder from a :class:`ModelConfig` (quantized
weights, INT4 KV cache), submits a burst of mixed-length requests, and
lets the :class:`ServingEngine` drive them to completion — prefill
admission, batched KV-cached decode steps, per-request sampling and
completion — printing the request lifecycle and throughput stats.

Run:  python examples/serving_quickstart.py
"""

import numpy as np

from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    Request,
    RuntimeConfig,
    SamplingParams,
    ServingEngine,
)


def main() -> None:
    config = ModelConfig(
        "tiny-serve", hidden=64, ffn=128, layers=2, heads=4, kv_heads=2,
        vocab=256, gated_ffn=True,
    )
    model = DecoderModel(
        config,
        RuntimeConfig(weight_bits=4, kv_bits=4, max_seq_len=96, seed=7),
    )
    engine = ServingEngine(model, max_batch_size=4)

    rng = np.random.default_rng(7)
    print(f"submitting 8 requests to {config.name} "
          f"(W4 weights, INT4 KV, backend={model.head.engine.backend.name})")
    for i in range(8):
        prompt_len = int(rng.integers(3, 20))
        prompt = tuple(int(t) for t in rng.integers(0, config.vocab,
                                                    prompt_len))
        engine.submit(Request(
            request_id=f"req-{i}",
            prompt=prompt,
            max_new_tokens=int(rng.integers(4, 16)),
            sampling=SamplingParams(top_k=8 if i % 2 else None, seed=i),
        ))

    results, stats = engine.run()

    print(f"\n{'request':<9} {'prompt':>6} {'gen':>4} {'finish':>7} "
          f"{'ttft ms':>8} {'latency ms':>11}")
    for r in results:
        print(f"{r.request_id:<9} {len(r.prompt):>6} {len(r.tokens):>4} "
              f"{r.finish_reason:>7} {r.first_token_ms:>8.1f} "
              f"{r.latency_ms:>11.1f}")

    print(f"\n{stats.requests} requests, {stats.generated_tokens} tokens in "
          f"{stats.wall_s:.2f}s "
          f"({stats.throughput_tok_s:.0f} tok/s, "
          f"mean decode batch {stats.mean_batch:.2f})")
    print(f"decode attention visited {model.stats['attn_context_tokens']} "
          f"cached tokens over {model.stats['decode_steps']} batched steps "
          "- cost scales with the cache, not the full sequence")


if __name__ == "__main__":
    main()
