"""Tests for the LMMA/MMA instruction sets."""

import numpy as np
import pytest

from repro.datatypes.formats import FP16, FP32, INT2, INT8, INT16, dtype_from_name
from repro.errors import IsaError
from repro.isa.lmma import (
    LmmaInstruction,
    default_lmma_for,
    legal_lmma_combinations,
)
from repro.isa.mma import A100_MMA_SHAPES, MmaInstruction
from repro.quant.weight import quantize_weights


class TestMma:
    def test_parse_roundtrip(self):
        ins = MmaInstruction.parse("mma.m16n8k16.fp16.fp32")
        assert (ins.m, ins.n, ins.k) == (16, 8, 16)
        assert ins.in_dtype is FP16
        assert MmaInstruction.parse(ins.name) == ins

    def test_flops(self):
        assert A100_MMA_SHAPES["fp16"].flops == 2 * 16 * 8 * 16

    def test_execute_semantics(self):
        ins = MmaInstruction(2, 3, 4, FP16, FP32)
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(2, 4)), rng.normal(size=(3, 4))
        np.testing.assert_allclose(ins.execute(a, b), a @ b.T)
        accum = np.ones((2, 3))
        np.testing.assert_allclose(ins.execute(a, b, accum), a @ b.T + 1)

    def test_execute_shape_checked(self):
        ins = MmaInstruction(2, 3, 4, FP16, FP32)
        with pytest.raises(IsaError):
            ins.execute(np.zeros((2, 5)), np.zeros((3, 4)))

    def test_malformed_rejected(self):
        for bad in ("mma.m16n8.fp16.fp32", "foo.m1n1k1.fp16.fp32", "mma"):
            with pytest.raises(IsaError):
                MmaInstruction.parse(bad)


class TestLmmaFormat:
    def test_name_roundtrip(self):
        ins = default_lmma_for(INT2, FP16)
        assert ins.name == "lmma.m2n64k4.fp16.int2.fp32.fp16"
        assert LmmaInstruction.parse(ins.name) == ins

    def test_parse_fields(self):
        ins = LmmaInstruction.parse("lmma.m4n64k4.int8.int1.int16.int16")
        assert (ins.m, ins.n, ins.k) == (4, 64, 4)
        assert ins.w_dtype is dtype_from_name("int1")
        assert ins.a_dtype is INT8

    def test_serial_cycles_equal_weight_bits(self):
        assert default_lmma_for(INT2, FP16).serial_cycles == 2
        assert default_lmma_for(dtype_from_name("int4"), FP16).serial_cycles == 4

    def test_table_entries_symmetrized(self):
        assert default_lmma_for(INT2, FP16).table_entries == 8

    def test_flops(self):
        assert default_lmma_for(INT2, FP16).flops == 2 * 2 * 64 * 4


class TestLmmaLegality:
    def test_float_weights_rejected(self):
        with pytest.raises(IsaError):
            LmmaInstruction(2, 64, 4, FP16, FP16, FP32, FP16)

    def test_large_k_rejected(self):
        with pytest.raises(IsaError):
            LmmaInstruction(2, 64, 16, FP16, INT2, FP32, FP16)

    def test_unsupported_activation_rejected(self):
        fp32 = dtype_from_name("fp32")
        with pytest.raises(IsaError):
            LmmaInstruction(2, 64, 4, fp32, INT2, FP32, FP16)

    def test_unsupported_weight_width_rejected(self):
        int5 = None
        with pytest.raises(IsaError):
            LmmaInstruction.parse("lmma.m2n64k4.fp16.fp16.fp32.fp16")

    def test_envelope_covers_paper_combinations(self):
        combos = legal_lmma_combinations()
        names = {(i.w_dtype.bits, i.a_dtype.name) for i in combos}
        # INT1/2/4 weights x FP16/FP8/INT16/INT8 activations = 12 combos.
        assert len(names) == 12
        assert (1, "fp16") in names
        assert (4, "int8") in names

    def test_malformed_rejected(self):
        for bad in (
            "lmma.m2n64.fp16.int2.fp32.fp16",
            "lmma.m2n64k4.fp16.int2.fp32",
            "mma.m2n64k4.fp16.int2.fp32.fp16",
        ):
            with pytest.raises(IsaError):
                LmmaInstruction.parse(bad)


class TestLmmaExecution:
    def _tile(self, ins, seed=0, bits=None):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(ins.m, ins.k))
        w = rng.normal(size=(ins.n, ins.k))
        qw = quantize_weights(w, bits or ins.w_dtype.bits, symmetric=True)
        return a, qw

    def test_execute_matches_reference(self):
        ins = default_lmma_for(INT2, FP16)
        a, qw = self._tile(ins)
        from repro.lut.mpgemm import dequant_mpgemm_reference

        out = ins.execute(a, qw, table_dtype=None)
        ref = dequant_mpgemm_reference(a, qw, act_dtype=FP16)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_execute_with_accumulator(self):
        ins = default_lmma_for(INT2, FP16)
        a, qw = self._tile(ins, seed=1)
        base = ins.execute(a, qw, table_dtype=None)
        accum = np.full((ins.m, ins.n), 2.0)
        np.testing.assert_allclose(
            ins.execute(a, qw, accum=accum, table_dtype=None), base + 2.0
        )

    def test_execute_checks_activation_shape(self):
        ins = default_lmma_for(INT2, FP16)
        _, qw = self._tile(ins)
        with pytest.raises(IsaError):
            ins.execute(np.zeros((1, ins.k)), qw)

    def test_execute_checks_weight_bits(self):
        ins = default_lmma_for(INT2, FP16)
        a, qw = self._tile(ins, bits=4)
        with pytest.raises(IsaError):
            ins.execute(a, qw)

    def test_int8_activation_path(self):
        ins = default_lmma_for(INT2, INT8)
        a, qw = self._tile(ins, seed=2)
        out = ins.execute(a, qw, table_dtype=None)
        from repro.lut.mpgemm import dequant_mpgemm_reference

        np.testing.assert_allclose(
            out, dequant_mpgemm_reference(a, qw), atol=1e-9
        )
