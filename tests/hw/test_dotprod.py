"""Tests pinning the dot-product PPA shapes of Figs. 11-13."""

import pytest

from repro.datatypes.formats import FP16, FP8_E4M3, INT8, INT16
from repro.errors import HardwareModelError
from repro.hw.dotprod import (
    DotProductKind,
    DotProdParams,
    dp_compute_density,
    dp_unit_cost,
    iso_throughput_area,
)


class TestFig12Anchors:
    """Absolute compute-density anchors from Fig. 12 (DP4, no psum)."""

    def test_mac_fp16_near_paper(self):
        density = dp_unit_cost(
            DotProductKind.MAC, 4, FP16, include_post=False
        ).compute_density_tflops_mm2
        assert 3.39 * 0.7 <= density <= 3.39 * 1.3

    def test_lut_w1a16_near_paper(self):
        density = dp_unit_cost(
            DotProductKind.LUT_TENSOR_CORE, 4, FP16, 1, include_post=False
        ).compute_density_tflops_mm2
        assert 61.55 * 0.6 <= density <= 61.55 * 1.4

    def test_ordering_lut_gt_add_gt_mac(self):
        mac = dp_unit_cost(DotProductKind.MAC, 4, FP16, include_post=False)
        add = dp_unit_cost(
            DotProductKind.ADD_SERIAL, 4, FP16, 1, include_post=False
        )
        lut = dp_unit_cost(
            DotProductKind.LUT_TENSOR_CORE, 4, FP16, 1, include_post=False
        )
        assert (
            lut.compute_density_tflops_mm2
            > add.compute_density_tflops_mm2
            > mac.compute_density_tflops_mm2
        )

    def test_power_ordering_matches(self):
        mac = dp_unit_cost(DotProductKind.MAC, 4, FP16, include_post=False)
        lut = dp_unit_cost(
            DotProductKind.LUT_TENSOR_CORE, 4, FP16, 1, include_post=False
        )
        assert lut.power_mw < mac.power_mw

    def test_fp8_same_ordering(self):
        mac = dp_unit_cost(DotProductKind.MAC, 4, FP8_E4M3, include_post=False)
        add = dp_unit_cost(
            DotProductKind.ADD_SERIAL, 4, FP8_E4M3, 1, include_post=False
        )
        lut = dp_unit_cost(
            DotProductKind.LUT_TENSOR_CORE, 4, FP8_E4M3, 1, include_post=False
        )
        assert (
            lut.compute_density_tflops_mm2
            > add.compute_density_tflops_mm2
            > mac.compute_density_tflops_mm2
        )


class TestFig11KSweep:
    """DSE along K: INT activations peak at K=4, FP16 at K=5 (Fig. 11)."""

    @staticmethod
    def _peak(act):
        densities = {
            k: dp_compute_density(DotProductKind.LUT_TENSOR_CORE, k, act, 1)
            for k in range(2, 9)
        }
        return max(densities, key=densities.get)

    def test_int8_peak_k4(self):
        assert self._peak(INT8) == 4

    def test_int16_peak_k4(self):
        assert self._peak(INT16) == 4

    def test_fp16_peak_k5(self):
        assert self._peak(FP16) == 5

    def test_fp8_peak_4_or_5(self):
        assert self._peak(FP8_E4M3) in (4, 5)

    def test_k4_within_five_percent_of_fp16_peak(self):
        """Paper: FP peaks at K=5 'but also well at K=4'."""
        d4 = dp_compute_density(DotProductKind.LUT_TENSOR_CORE, 4, FP16, 1)
        d5 = dp_compute_density(DotProductKind.LUT_TENSOR_CORE, 5, FP16, 1)
        assert d4 >= 0.9 * d5

    def test_density_collapses_at_k8(self):
        """Exponential table growth kills large K."""
        d4 = dp_compute_density(DotProductKind.LUT_TENSOR_CORE, 4, INT8, 1)
        d8 = dp_compute_density(DotProductKind.LUT_TENSOR_CORE, 8, INT8, 1)
        assert d8 < 0.5 * d4


class TestFig13WeightScaling:
    """Iso-throughput area vs weight bits (Fig. 13, A=FP16, N=4 share)."""

    PARAMS = DotProdParams(ltc_share=4)

    def _area(self, kind, wb):
        unit = dp_unit_cost(kind, 4, FP16, wb, params=self.PARAMS)
        return iso_throughput_area(unit, self.PARAMS)

    @property
    def mac_area(self):
        return dp_unit_cost(DotProductKind.MAC, 4, FP16).area_um2

    def test_mac_area_independent_of_weight_bits(self):
        a1 = dp_unit_cost(DotProductKind.MAC, 4, FP16, 1).area_um2
        a8 = dp_unit_cost(DotProductKind.MAC, 4, FP16, 8).area_um2
        assert a1 == a8

    def test_add_wins_at_1_and_2_bits_only(self):
        assert self._area(DotProductKind.ADD_SERIAL, 1) < self.mac_area
        assert self._area(DotProductKind.ADD_SERIAL, 2) < self.mac_area
        assert self._area(DotProductKind.ADD_SERIAL, 4) > self.mac_area

    def test_conventional_lut_loses_beyond_2_bits(self):
        assert self._area(DotProductKind.LUT_CONVENTIONAL, 1) < self.mac_area
        assert self._area(DotProductKind.LUT_CONVENTIONAL, 4) > self.mac_area

    def test_ltc_wins_up_to_6_bits(self):
        for wb in (1, 2, 4, 6):
            assert self._area(DotProductKind.LUT_TENSOR_CORE, wb) < self.mac_area

    def test_ltc_loses_by_8_bits(self):
        assert self._area(DotProductKind.LUT_TENSOR_CORE, 8) > self.mac_area

    def test_ltc_beats_conventional_everywhere(self):
        for wb in (1, 2, 4, 8, 16):
            assert self._area(DotProductKind.LUT_TENSOR_CORE, wb) < self._area(
                DotProductKind.LUT_CONVENTIONAL, wb
            )

    def test_iso_area_monotone_in_weight_bits(self):
        areas = [
            self._area(DotProductKind.LUT_TENSOR_CORE, wb)
            for wb in (1, 2, 4, 8, 16)
        ]
        assert areas == sorted(areas)


class TestUnitInterface:
    def test_invalid_args_rejected(self):
        with pytest.raises(HardwareModelError):
            dp_unit_cost(DotProductKind.MAC, 0, FP16)
        with pytest.raises(HardwareModelError):
            dp_unit_cost(DotProductKind.ADD_SERIAL, 4, FP16, 0)

    def test_cycles_per_result(self):
        assert dp_unit_cost(DotProductKind.MAC, 4, FP16).cycles_per_result == 1
        assert (
            dp_unit_cost(
                DotProductKind.LUT_TENSOR_CORE, 4, FP16, 4
            ).cycles_per_result
            == 4
        )

    def test_breakdown_sums_to_total(self):
        unit = dp_unit_cost(DotProductKind.LUT_TENSOR_CORE, 4, FP16, 2)
        total = sum(p.total_ge for p in unit.breakdown.values())
        assert total == pytest.approx(unit.cost.total_ge)

    def test_no_post_smaller_than_post(self):
        full = dp_unit_cost(DotProductKind.LUT_TENSOR_CORE, 4, FP16, 1)
        bare = dp_unit_cost(
            DotProductKind.LUT_TENSOR_CORE, 4, FP16, 1, include_post=False
        )
        assert bare.area_um2 < full.area_um2

    def test_energy_efficiency_positive(self):
        unit = dp_unit_cost(DotProductKind.LUT_TENSOR_CORE, 4, FP16, 1)
        assert unit.energy_efficiency_tflops_w > 0
