"""Tests for circuit primitive cost models."""

import pytest

from repro.datatypes.formats import FP16, FP8_E4M3, FP32, INT8
from repro.errors import HardwareModelError
from repro.hw.tech import TSMC28, TechnologyModel
from repro.hw.units import (
    CircuitCost,
    accumulator_width,
    adder_for,
    barrel_shifter,
    fp_adder,
    fp_multiplier,
    int_adder,
    int_addsub,
    int_multiplier,
    multiplier_for,
    mux,
    register,
)


class TestTechnology:
    def test_area_conversion(self):
        assert TSMC28.area_um2(100) == pytest.approx(100 * TSMC28.ge_area_um2)

    def test_power_positive_and_activity_weighted(self):
        dense = TSMC28.power_mw(logic_ge=1000)
        sparse = TSMC28.power_mw(logic_ge=0, storage_ge=1000)
        assert dense > sparse > 0

    def test_scaled_override(self):
        fast = TSMC28.scaled(frequency_ghz=2.0)
        assert fast.frequency_ghz == 2.0
        assert fast.ge_area_um2 == TSMC28.ge_area_um2

    def test_invalid_constants_rejected(self):
        with pytest.raises(HardwareModelError):
            TechnologyModel(ge_area_um2=-1)
        with pytest.raises(HardwareModelError):
            TechnologyModel(frequency_ghz=0)


class TestPrimitives:
    def test_adder_linear_in_width(self):
        assert int_adder(32).logic_ge == 2 * int_adder(16).logic_ge

    def test_addsub_more_than_add(self):
        assert int_addsub(16).logic_ge > int_adder(16).logic_ge

    def test_multiplier_quadratic(self):
        assert int_multiplier(8, 8).logic_ge == 4 * int_multiplier(4, 4).logic_ge

    def test_mux_scales_with_ways_and_width(self):
        assert mux(8, 8).logic_ge == 7 * 8
        assert mux(16, 8).logic_ge > mux(8, 8).logic_ge
        assert mux(1, 8).logic_ge == 0

    def test_barrel_shifter_log_stages(self):
        assert barrel_shifter(16, 2).logic_ge == 16
        assert barrel_shifter(16, 4).logic_ge == 32
        assert barrel_shifter(16, 1).logic_ge == 0

    def test_register_is_storage(self):
        r = register(16)
        assert r.storage_ge > 0
        assert r.logic_ge == 0

    def test_invalid_widths(self):
        with pytest.raises(HardwareModelError):
            int_adder(0)
        with pytest.raises(HardwareModelError):
            int_multiplier(0, 4)
        with pytest.raises(HardwareModelError):
            mux(0, 8)


class TestFloatUnits:
    def test_fp16_multiplier_dominates_adder(self):
        # Mantissa array dwarfs the align/normalize shifters.
        assert fp_multiplier(FP16).logic_ge > fp_adder(FP16).logic_ge

    def test_wider_format_costs_more(self):
        assert fp_adder(FP32).logic_ge > fp_adder(FP16).logic_ge
        assert fp_multiplier(FP16).logic_ge > fp_multiplier(FP8_E4M3).logic_ge

    def test_non_float_rejected(self):
        with pytest.raises(HardwareModelError):
            fp_adder(INT8)
        with pytest.raises(HardwareModelError):
            fp_multiplier(INT8)

    def test_mixed_multiplier_between_pure_cases(self):
        mixed = multiplier_for(INT8, FP16).logic_ge
        assert int_multiplier(8, 8).logic_ge < mixed < fp_multiplier(FP16).logic_ge

    def test_adder_for_dispatch(self):
        assert adder_for(FP16).logic_ge == fp_adder(FP16).logic_ge
        assert adder_for(INT8).logic_ge == int_adder(8).logic_ge
        # Float sign flip is one XOR; integer add/sub a full row.
        assert adder_for(FP16, addsub=True).logic_ge == fp_adder(FP16).logic_ge + 1
        assert adder_for(INT8, addsub=True).logic_ge == int_addsub(8).logic_ge


class TestCircuitCostAlgebra:
    def test_add_and_scale(self):
        a = CircuitCost(10, 5)
        b = CircuitCost(1, 2)
        total = a + 2 * b
        assert total.logic_ge == 12
        assert total.storage_ge == 9
        assert total.total_ge == 21

    def test_accumulator_width(self):
        assert accumulator_width(FP16, 100) == 16
        assert accumulator_width(INT8, 256) == 16
