"""Tests for the hardware-model sensitivity analysis."""

import pytest

from repro.hw.sensitivity import (
    conclusions_robust,
    default_perturbations,
    run_sensitivity,
)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_sensitivity()

    def test_covers_all_perturbations(self, reports):
        assert len(reports) == len(default_perturbations())
        assert reports[0].label == "baseline"

    def test_lut_wins_under_every_perturbation(self, reports):
        assert all(r.lut_wins_w1_fp16 for r in reports)

    def test_elongated_optimum_stable(self, reports):
        for r in reports:
            m, n, k = r.lut_best_mnk
            assert k == 4
            assert n >= 8 * m

    def test_peak_k_stable(self, reports):
        for r in reports:
            assert r.int8_peak_k in (3, 4, 5)
            assert r.fp16_peak_k in (4, 5, 6)

    def test_conclusions_robust(self, reports):
        assert conclusions_robust(reports)

    def test_objective_ratio_always_large(self, reports):
        """Even the least favourable perturbation leaves a wide margin."""
        assert min(r.lut_vs_mac_objective_ratio for r in reports) > 10.0
