"""Tests pinning the tensor-core PPA shapes of Fig. 14 and Table 2."""

import pytest

from repro.datatypes.formats import FP16, FP8_E4M3, INT8, INT16
from repro.errors import HardwareModelError
from repro.hw.dotprod import DotProductKind
from repro.hw.dse import best_by_area_power, pareto_frontier, sweep_mnk
from repro.hw.tensor_core import TensorCoreConfig, tensor_core_cost
from repro.hw.unpu import UnpuConfig, unpu_ablation


class TestTensorCoreCost:
    def test_breakdown_sums_to_total(self):
        cfg = TensorCoreConfig(DotProductKind.LUT_TENSOR_CORE, 2, 64, 4, FP16, 1)
        cost = tensor_core_cost(cfg)
        total = sum(p.total_ge for p in cost.breakdown.values())
        assert total == pytest.approx(cost.cost.total_ge)

    def test_eq7_table_size_scaling(self):
        """Total table size = M * 2**(K-1) * LUT_BIT (Eq. 7)."""
        small = tensor_core_cost(
            TensorCoreConfig(DotProductKind.LUT_TENSOR_CORE, 2, 64, 4, FP16, 1)
        )
        big_m = tensor_core_cost(
            TensorCoreConfig(DotProductKind.LUT_TENSOR_CORE, 4, 32, 4, FP16, 1)
        )
        assert big_m.breakdown["table"].storage_ge == pytest.approx(
            2 * small.breakdown["table"].storage_ge
        )

    def test_eq8_weight_regs_scaling(self):
        """Grouped weight size = K * N * W_BIT (Eq. 8)."""
        w1 = tensor_core_cost(
            TensorCoreConfig(
                DotProductKind.LUT_TENSOR_CORE, 2, 64, 4, FP16, 1,
                iso_throughput=False,
            )
        )
        w2 = tensor_core_cost(
            TensorCoreConfig(
                DotProductKind.LUT_TENSOR_CORE, 2, 64, 4, FP16, 2,
                iso_throughput=False,
            )
        )
        assert w2.breakdown["weight_regs"].storage_ge == pytest.approx(
            2 * w1.breakdown["weight_regs"].storage_ge
        )

    def test_serial_replication_grows_mux(self):
        base = tensor_core_cost(
            TensorCoreConfig(DotProductKind.LUT_TENSOR_CORE, 2, 64, 4, FP16, 1)
        )
        serial = tensor_core_cost(
            TensorCoreConfig(DotProductKind.LUT_TENSOR_CORE, 2, 64, 4, FP16, 4)
        )
        assert serial.breakdown["mux"].logic_ge == pytest.approx(
            4 * base.breakdown["mux"].logic_ge
        )
        # But tables are shared across bit-plane replicas.
        assert serial.breakdown["table"].storage_ge == pytest.approx(
            base.breakdown["table"].storage_ge
        )

    def test_lut_k_capped(self):
        with pytest.raises(HardwareModelError):
            TensorCoreConfig(DotProductKind.LUT_TENSOR_CORE, 2, 4, 16, FP16, 1)

    def test_invalid_dims_rejected(self):
        with pytest.raises(HardwareModelError):
            TensorCoreConfig(DotProductKind.MAC, 0, 4, 16, FP16, 1)

    def test_wire_power_included(self):
        cfg = TensorCoreConfig(DotProductKind.LUT_TENSOR_CORE, 2, 64, 4, FP16, 1)
        cost = tensor_core_cost(cfg)
        assert cost.wire_power_mw > 0
        assert cost.power_mw > cost.wire_power_mw


class TestFig14Dse:
    def test_lut_optimum_is_m2n64k4(self):
        """The paper's headline DSE result for W1/A-FP16."""
        best = best_by_area_power(
            sweep_mnk(DotProductKind.LUT_TENSOR_CORE, FP16, 1)
        )
        assert best.mnk == (2, 64, 4)

    def test_lut_optimum_elongated_for_all_act_types(self):
        """N >> M with K=4 across activation formats."""
        for act in (FP16, FP8_E4M3, INT16, INT8):
            best = best_by_area_power(
                sweep_mnk(DotProductKind.LUT_TENSOR_CORE, act, 1)
            )
            m, n, k = best.mnk
            assert k == 4
            assert n >= 8 * m

    def test_mac_optimum_square(self):
        """Conventional tensor cores prefer square-ish tiles (like A100)."""
        best = best_by_area_power(sweep_mnk(DotProductKind.MAC, FP16, 1))
        m, n, k = best.mnk
        assert k >= 8
        assert max(m, n) <= 4 * min(m, n)

    def test_lut_dominates_mac_at_w1(self):
        """LUT best point beats MAC best point in both area and power."""
        for act in (FP16, FP8_E4M3, INT16, INT8):
            lut = best_by_area_power(
                sweep_mnk(DotProductKind.LUT_TENSOR_CORE, act, 1)
            )
            mac = best_by_area_power(sweep_mnk(DotProductKind.MAC, act, 1))
            assert lut.area_um2 < mac.area_um2
            assert lut.power_mw < mac.power_mw

    def test_w1_reduction_at_least_4x_fp16(self):
        """Paper: 4-6x power & area reduction with 1-bit weights."""
        lut = best_by_area_power(sweep_mnk(DotProductKind.LUT_TENSOR_CORE, FP16, 1))
        mac = best_by_area_power(sweep_mnk(DotProductKind.MAC, FP16, 1))
        assert mac.area_um2 / lut.area_um2 >= 4.0
        assert mac.power_mw / lut.power_mw >= 4.0

    def test_lut_advantage_shrinks_with_weight_bits(self):
        mac = best_by_area_power(sweep_mnk(DotProductKind.MAC, FP16, 1))
        ratios = []
        for wb in (1, 2, 4):
            lut = best_by_area_power(
                sweep_mnk(DotProductKind.LUT_TENSOR_CORE, FP16, wb)
            )
            ratios.append(mac.area_um2 / lut.area_um2)
        assert ratios[0] > ratios[1] > ratios[2] > 1.0

    def test_add_between_lut_and_mac_at_w1(self):
        lut = best_by_area_power(sweep_mnk(DotProductKind.LUT_TENSOR_CORE, FP16, 1))
        add = best_by_area_power(sweep_mnk(DotProductKind.ADD_SERIAL, FP16, 1))
        mac = best_by_area_power(sweep_mnk(DotProductKind.MAC, FP16, 1))
        assert lut.area_um2 * lut.power_mw < add.area_um2 * add.power_mw
        assert add.area_um2 * add.power_mw < mac.area_um2 * mac.power_mw


class TestPareto:
    def test_frontier_no_dominated_points(self):
        points = sweep_mnk(DotProductKind.LUT_TENSOR_CORE, FP16, 2)
        frontier = pareto_frontier(points)
        assert frontier
        for p in frontier:
            for q in points:
                dominates = (
                    q.area_um2 <= p.area_um2
                    and q.power_mw <= p.power_mw
                    and (q.area_um2 < p.area_um2 or q.power_mw < p.power_mw)
                )
                assert not dominates

    def test_frontier_sorted_by_area(self):
        frontier = pareto_frontier(
            sweep_mnk(DotProductKind.LUT_TENSOR_CORE, FP16, 2)
        )
        areas = [p.area_um2 for p in frontier]
        assert areas == sorted(areas)

    def test_best_point_on_frontier(self):
        points = sweep_mnk(DotProductKind.LUT_TENSOR_CORE, INT8, 1)
        best = best_by_area_power(points)
        frontier = pareto_frontier(points)
        assert any(p.mnk == best.mnk for p in frontier)

    def test_empty_sweep_rejected(self):
        with pytest.raises(HardwareModelError):
            best_by_area_power([])


class TestTable2Unpu:
    def test_ablation_ladder_monotone(self):
        rows = unpu_ablation()
        assert len(rows) == 4
        areas = [r.area_um2 for r in rows]
        assert areas == sorted(areas, reverse=True)

    def test_compute_intensity_near_paper(self):
        """Paper ladder: 1.0 / 1.317 / 1.351 / 1.440 (+-12% tolerance)."""
        rows = unpu_ablation()
        targets = [1.0, 1.317, 1.351, 1.440]
        for row, target in zip(rows, targets):
            assert row.normalized_compute_intensity == pytest.approx(
                target, rel=0.12
            )

    def test_final_improvement_band(self):
        rows = unpu_ablation()
        assert 1.30 <= rows[-1].normalized_compute_intensity <= 1.60
        assert 1.30 <= rows[-1].normalized_power_efficiency <= 1.70

    def test_absolute_area_order_of_magnitude(self):
        """Paper baseline: 17,272 um2; accept the same order."""
        rows = unpu_ablation()
        assert 8_000 <= rows[0].area_um2 <= 40_000

    def test_reinterpretation_is_biggest_step(self):
        rows = unpu_ablation()
        deltas = [
            rows[i].area_um2 - rows[i + 1].area_um2 for i in range(3)
        ]
        assert deltas[0] == max(deltas)

    def test_negation_requires_reinterpretation(self):
        with pytest.raises(HardwareModelError):
            UnpuConfig(weight_reinterpretation=False, negation_elimination=True)

    def test_labels(self):
        rows = unpu_ablation()
        assert rows[0].label == "UNPU (DSE Enabled)"
        assert rows[-1].label == "LUT Tensor Core (Proposed)"
