"""Tests for model configs and workload shapes."""

import pytest

from repro.errors import SimulationError
from repro.models.configs import (
    BITNET_3B,
    BLOOM_176B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    MODELS,
    OPT_175B,
    ModelConfig,
    model_by_name,
)
from repro.models.workloads import (
    FIG4_SHAPES,
    FIG15_SHAPE,
    GemmShape,
    layer_gemm_shapes,
)


class TestModelConfigs:
    def test_parameter_counts_near_nameplate(self):
        """Total params should be within ~10% of the model names."""
        assert OPT_175B.total_params == pytest.approx(175e9, rel=0.10)
        assert BLOOM_176B.total_params == pytest.approx(176e9, rel=0.10)
        assert LLAMA2_70B.total_params == pytest.approx(70e9, rel=0.10)
        assert LLAMA2_7B.total_params == pytest.approx(7e9, rel=0.10)
        assert BITNET_3B.total_params == pytest.approx(3.3e9, rel=0.15)

    def test_head_dims(self):
        assert LLAMA2_70B.head_dim == 128
        assert OPT_175B.head_dim == 128

    def test_gqa_kv_dim(self):
        assert LLAMA2_70B.kv_dim == 1024  # 8 kv heads x 128
        assert OPT_175B.kv_dim == OPT_175B.hidden  # MHA

    def test_invalid_configs_rejected(self):
        with pytest.raises(SimulationError):
            ModelConfig("bad", hidden=100, ffn=400, layers=2, heads=3,
                        kv_heads=3)
        with pytest.raises(SimulationError):
            ModelConfig("bad", hidden=128, ffn=512, layers=2, heads=8,
                        kv_heads=3)

    def test_lookup(self):
        assert model_by_name("OPT-175B") is OPT_175B
        with pytest.raises(SimulationError):
            model_by_name("gpt-5")
        assert len(MODELS) == 7

    def test_layer_flops_scaling(self):
        """FLOPs linear in tokens, attention part linear in context."""
        base = LLAMA2_13B.layer_flops(tokens=128, context=128)
        double_tokens = LLAMA2_13B.layer_flops(tokens=256, context=128)
        assert double_tokens == pytest.approx(2 * base, rel=1e-12)


class TestGemmShapes:
    def test_fig15_shape_is_llama13b_ffn(self):
        assert FIG15_SHAPE.m == 2048
        assert FIG15_SHAPE.n == 27648
        assert FIG15_SHAPE.k == 5120

    def test_fig4_shapes_from_llama70b(self):
        labels = [s.label for s in FIG4_SHAPES]
        assert labels == ["M0", "M1", "M2", "M3"]
        # qkv with GQA: 8192 + 2*1024 outputs; ffn down has K=28672.
        assert FIG4_SHAPES[0].n == 10240
        assert FIG4_SHAPES[3].k == 28672

    def test_with_batch(self):
        shape = FIG4_SHAPES[0].with_batch(1024)
        assert shape.m == 1024
        assert (shape.n, shape.k) == (FIG4_SHAPES[0].n, FIG4_SHAPES[0].k)

    def test_byte_accounting(self):
        shape = GemmShape(8, 16, 32)
        assert shape.weight_bytes(4) == 16 * 32 // 2
        assert shape.activation_bytes(16) == 8 * 32 * 2
        assert shape.output_bytes() == 8 * 16 * 2
        assert shape.flops == 2 * 8 * 16 * 32

    def test_invalid_shape(self):
        with pytest.raises(SimulationError):
            GemmShape(0, 1, 1)

    def test_layer_shapes_gated_vs_plain(self):
        gated = layer_gemm_shapes(LLAMA2_70B, 16)
        plain = layer_gemm_shapes(OPT_175B, 16)
        assert gated["ffn_up"].n == 2 * LLAMA2_70B.ffn
        assert plain["ffn_up"].n == OPT_175B.ffn
