"""SLO-aware scheduling: SloSpec budgets, the WaitingRequest wrapper,
deadline slack, EDF admission, and slack-ranked preemption."""

import math

import pytest

from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    Request,
    RuntimeConfig,
    ServingEngine,
    SloAwareAdmissionPolicy,
    SloAwarePreemptionPolicy,
    SloSpec,
    WaitingRequest,
    deadline_slack_ms,
    get_preemption_policy,
    get_scheduler,
)
from repro.runtime.scheduler import SchedulingContext

TINY = ModelConfig(
    "slo-tiny", hidden=32, ffn=64, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)


def _request(rid, ttft_ms=None, tpot_ms=None, max_new=4, priority=0):
    slo = None
    if ttft_ms is not None or tpot_ms is not None:
        slo = SloSpec(ttft_ms=ttft_ms, tpot_ms=tpot_ms)
    return Request(
        request_id=rid, prompt=(1, 2, 3), max_new_tokens=max_new,
        priority=priority, slo=slo,
    )


def _ctx():
    return SchedulingContext(
        free_slots=1, free_blocks=None, block_size=16, layers=2,
    )


class _FakeSeq:
    """The slice of an engine sequence the preemption policy reads."""

    def __init__(self, request, submit_time=0.0, observed_tpot_ms=0.0,
                 remaining=4):
        self.request = request
        self.submit_time = submit_time
        self.observed_tpot_ms = observed_tpot_ms
        self.remaining_tokens = remaining
        self.priority = request.priority


class TestSloSpec:
    def test_dict_round_trip(self):
        spec = SloSpec(ttft_ms=120.0, tpot_ms=8.5)
        assert SloSpec.from_dict(spec.to_dict()) == spec
        partial = SloSpec(ttft_ms=50.0)
        assert SloSpec.from_dict(partial.to_dict()) == partial
        assert partial.tpot_ms is None

    def test_request_dict_round_trip_carries_slo(self):
        request = _request("r", ttft_ms=100.0, tpot_ms=5.0)
        clone = Request.from_dict(request.to_dict())
        assert clone.slo == request.slo
        bare = Request.from_dict(_request("b").to_dict())
        assert bare.slo is None

    def test_registry_resolution(self):
        assert get_scheduler("slo-aware").name == "slo-aware"
        assert get_preemption_policy("slo-aware").name == "slo-aware"


class TestWaitingRequest:
    def test_delegates_request_attributes(self):
        request = _request("r", ttft_ms=10.0)
        entry = WaitingRequest(request, submitted_at=3.25)
        assert entry.request is request
        assert entry.submitted_at == 3.25
        assert entry.request_id == "r"
        assert entry.prompt == request.prompt
        assert entry.max_new_tokens == request.max_new_tokens
        assert entry.slo is request.slo

    def test_missing_attribute_still_raises(self):
        entry = WaitingRequest(_request("r"), submitted_at=0.0)
        with pytest.raises(AttributeError):
            entry.not_a_field


class TestDeadlineSlack:
    def test_no_slo_is_infinite(self):
        seq = _FakeSeq(_request("free"))
        assert deadline_slack_ms(seq, now=123.0) == math.inf
        empty = _FakeSeq(Request(
            "e", prompt=(1,), max_new_tokens=1, slo=SloSpec(),
        ))
        assert deadline_slack_ms(empty, now=0.0) == math.inf

    def test_slack_arithmetic(self):
        # budget 10 + 5*10 = 60ms; elapsed 100ms; owed 5*5 = 25ms.
        seq = _FakeSeq(
            _request("r", ttft_ms=10.0, tpot_ms=5.0, max_new=10),
            submit_time=0.9, observed_tpot_ms=5.0, remaining=5,
        )
        assert deadline_slack_ms(seq, now=1.0) == pytest.approx(-65.0)

    def test_falls_back_to_budget_tpot_before_first_measurement(self):
        # Nothing observed yet: remaining work priced at the budget
        # itself (presumed on-budget until measured otherwise).
        seq = _FakeSeq(
            _request("r", ttft_ms=1000.0, tpot_ms=10.0, max_new=10),
            submit_time=0.99, observed_tpot_ms=0.0, remaining=10,
        )
        # budget 1000 + 100 = 1100; elapsed 10; owed 10*10 = 100.
        assert deadline_slack_ms(seq, now=1.0) == pytest.approx(990.0)


class TestEdfAdmission:
    def test_earliest_deadline_first(self):
        policy = SloAwareAdmissionPolicy()
        waiting = [
            WaitingRequest(_request("late", ttft_ms=100.0), 0.0),
            WaitingRequest(_request("tight", ttft_ms=50.0), 0.0),
        ]
        assert policy.select(waiting, _ctx()) == 1
        # An earlier submit beats a larger budget.
        waiting = [
            WaitingRequest(_request("old", ttft_ms=100.0), 0.0),
            WaitingRequest(_request("new", ttft_ms=50.0), 0.1),
        ]
        assert policy.select(waiting, _ctx()) == 0

    def test_no_slo_sorts_last_and_ties_keep_arrival_order(self):
        policy = SloAwareAdmissionPolicy()
        waiting = [
            WaitingRequest(_request("free"), 0.0),
            WaitingRequest(_request("slo", ttft_ms=500.0), 0.0),
        ]
        assert policy.select(waiting, _ctx()) == 1
        # All best-effort: degrade to FIFO.
        waiting = [
            WaitingRequest(_request("a"), 0.0),
            WaitingRequest(_request("b"), 0.0),
        ]
        assert policy.select(waiting, _ctx()) == 0

    def test_bare_requests_order_by_budget_alone(self):
        # Policies must accept bare Requests (no submitted_at) — the
        # documented test/compat path.
        policy = SloAwareAdmissionPolicy()
        waiting = [
            _request("loose", ttft_ms=200.0),
            _request("tight", ttft_ms=20.0),
        ]
        assert policy.select(waiting, _ctx()) == 1


class TestSlackPreemption:
    def test_victim_ranking_tiers(self):
        policy = SloAwarePreemptionPolicy(clock=lambda: 1.0)
        active = [
            # slack 990 (headroom) — tier 1, after no-SLO.
            _FakeSeq(_request("roomy", ttft_ms=1000.0, tpot_ms=10.0,
                              max_new=10),
                     submit_time=0.99, remaining=10),
            # slack -65 (blown) — tier 0, first overall.
            _FakeSeq(_request("blown", ttft_ms=10.0, tpot_ms=5.0,
                              max_new=10),
                     submit_time=0.9, observed_tpot_ms=5.0, remaining=5),
            # no SLO: infinite slack leads tier 1.
            _FakeSeq(_request("free")),
            # slack 60 (tight) — last: preempting it hurts most.
            _FakeSeq(_request("tight", ttft_ms=50.0, tpot_ms=10.0,
                              max_new=4),
                     submit_time=0.99, observed_tpot_ms=10.0, remaining=2),
        ]
        order = policy.select_victims(active, _ctx())
        assert [active[i].request.request_id for i in order] == [
            "blown", "free", "roomy", "tight",
        ]

    def test_most_blown_goes_first_within_tier_zero(self):
        policy = SloAwarePreemptionPolicy(clock=lambda: 1.0)
        barely = _FakeSeq(
            _request("barely", ttft_ms=95.0, tpot_ms=0.0, max_new=1),
            submit_time=0.9, remaining=1,
        )   # slack -5
        badly = _FakeSeq(
            _request("badly", ttft_ms=10.0, tpot_ms=0.0, max_new=1),
            submit_time=0.9, remaining=1,
        )   # slack -90
        order = policy.select_victims([barely, badly], _ctx())
        assert [o for o in order] == [1, 0]

    def test_ties_break_by_priority_then_latest_admission(self):
        policy = SloAwarePreemptionPolicy(clock=lambda: 1.0)
        low = _FakeSeq(_request("low", priority=0))
        high = _FakeSeq(_request("high", priority=2))
        assert policy.select_victims([high, low], _ctx()) == [1, 0]
        # Equal priority and slack: the latest-admitted goes first.
        a = _FakeSeq(_request("a"))
        b = _FakeSeq(_request("b"))
        assert policy.select_victims([a, b], _ctx()) == [1, 0]


class TestEngineIntegration:
    def test_edf_jumps_deadline_request_ahead_of_best_effort(self):
        model = DecoderModel(
            TINY, RuntimeConfig(weight_bits=4, kv_bits=4, max_seq_len=32),
        )
        engine = ServingEngine(model, max_batch_size=1,
                               scheduler="slo-aware")
        engine.submit(_request("best-effort", max_new=2))
        engine.submit(_request("deadline", ttft_ms=5.0, max_new=2))
        results, _ = engine.run()
        assert [r.request_id for r in results] == [
            "deadline", "best-effort",
        ]

    def test_output_transparency_vs_fifo(self):
        """slo-aware reorders admissions, never token streams."""
        def streams(scheduler):
            model = DecoderModel(
                TINY, RuntimeConfig(weight_bits=4, kv_bits=4,
                                    max_seq_len=32),
            )
            engine = ServingEngine(model, max_batch_size=2,
                                   scheduler=scheduler,
                                   preemption=scheduler
                                   if scheduler == "slo-aware"
                                   else "priority-remaining")
            for i in range(4):
                engine.submit(Request(
                    f"r{i}", prompt=tuple(range(1 + i, 6 + i)),
                    max_new_tokens=6,
                    slo=SloSpec(ttft_ms=50.0 * (i + 1), tpot_ms=20.0)
                    if i % 2 else None,
                ))
            results, _ = engine.run()
            return {r.request_id: tuple(r.tokens) for r in results}

        assert streams("slo-aware") == streams("fifo")
