"""Engine-level speculative decoding fuzz: spec-on == spec-off.

Speculative decoding claims to be *output-invisible*: a draft model
proposes k tokens, the target scores all k+1 candidate rows in one
batched verify step, the longest agreeing prefix (plus the bonus token)
is accepted, and ``truncate_rows`` rolls the paged cache back over the
rejected tail. If verify parity, acceptance bookkeeping, and rollback
are all exact, the engine's token streams cannot depend on whether
speculation ran — for *any* draft, including one that disagrees on
every position.

This module pins that claim with a seeded random-schedule differential
fuzz (mirroring :mod:`tests.runtime.test_fused_parity`): random
admissions, shared prefixes, CoW divergence, bounded pools forcing
preemption, chunked prefill, and mixed greedy/top-k samplers, run
spec-on and spec-off through the full :class:`ServingEngine` on both
LUT backends — asserting bitwise identical streams — plus unit tests
for the spec-skip fallback, acceptance accounting, draft-cache
lifecycle, and per-request TPOT.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    Request,
    RuntimeConfig,
    SamplingParams,
    ServingEngine,
    SpeculativeConfig,
)
from repro.runtime.scheduler import worst_case_blocks

LUT_BACKENDS = ("lut-naive", "lut-blocked")

FUZZ = ModelConfig(
    "spec-fuzz", hidden=32, ffn=48, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)

#: Draft variants the fuzz rotates through. Output-identity must hold
#: for every one of them:
#: - inherit: the target verbatim (acceptance ~1 on LUT backends);
#: - self-spec: the target's weights on the reference backend with a
#:   float KV cache (the bench's high-acceptance configuration);
#: - hostile: different seed, so proposals are unrelated noise and
#:   nearly every step degenerates to rollback + bonus token.
SPEC_VARIANTS = (
    SpeculativeConfig(k=2),
    SpeculativeConfig(k=3, backend="reference", kv_bits=None),
    SpeculativeConfig(k=3, seed=999),
)


def _random_schedule(rng):
    """One random serving schedule: requests (shared prefixes, mixed
    samplers), block size, pool bound, chunked prefill, scheduler."""
    block_size = int(rng.choice([8, 16]))
    shared = [
        int(t)
        for t in rng.integers(0, FUZZ.vocab, size=int(rng.integers(6, 16)))
    ]
    requests = []
    for i in range(int(rng.integers(4, 8))):
        if rng.random() < 0.5:
            take = int(rng.integers(2, len(shared) + 1))
            prompt = tuple(shared[:take])
            if rng.random() < 0.5:
                prompt = prompt + tuple(
                    int(t)
                    for t in rng.integers(0, FUZZ.vocab,
                                          size=int(rng.integers(1, 6)))
                )
        else:
            prompt = tuple(
                int(t)
                for t in rng.integers(0, FUZZ.vocab,
                                      size=int(rng.integers(1, 13)))
            )
        top_k = None if rng.random() < 0.7 else int(rng.integers(1, 6))
        requests.append(Request(
            request_id=f"r{i}",
            prompt=prompt,
            max_new_tokens=int(rng.integers(4, 17)),
            sampling=SamplingParams(top_k=top_k, seed=i),
            priority=int(rng.integers(0, 3)),
        ))
    prefill_chunk = None if rng.random() < 0.5 else int(rng.choice([4, 8]))
    if rng.random() < 0.4:
        pool_blocks = None
        max_batch = int(rng.integers(2, 9))
    else:
        biggest = max(
            worst_case_blocks(len(r.prompt), r.max_new_tokens,
                              block_size, FUZZ.layers)
            for r in requests
        )
        total = sum(
            worst_case_blocks(len(r.prompt), r.max_new_tokens,
                              block_size, FUZZ.layers)
            for r in requests
        )
        prompts = sum(
            FUZZ.layers * -(-len(r.prompt) // block_size)
            for r in requests
        )
        lo = max(biggest, prompts)
        pool_blocks = int(rng.integers(lo, max(lo + 1, total)))
        max_batch = len(requests)
    return requests, block_size, pool_blocks, prefill_chunk, max_batch


def _run_engine(schedule, backend, spec, kv_bits=4):
    requests, block_size, pool_blocks, prefill_chunk, max_batch = schedule
    model = DecoderModel(FUZZ, RuntimeConfig(
        weight_bits=4, kv_bits=kv_bits, backend=backend, max_seq_len=96,
        kv_block_size=block_size, kv_pool_blocks=pool_blocks,
        prefill_chunk=prefill_chunk, speculative=spec,
    ))
    engine = ServingEngine(model, max_batch_size=max_batch)
    for request in requests:
        engine.submit(request)
    results, stats = engine.run()
    streams = {r.request_id: tuple(r.tokens) for r in results}
    return streams, stats, engine


class TestSpecEngineFuzz:
    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_random_schedules_streams_bit_identical(self, backend):
        """>= 20 random schedules across the LUT backends x 3 draft
        variants: spec-on token streams equal spec-off exactly, under
        shared prefixes, CoW, bounded pools, chunked prefill, and
        preemption."""
        preempted = shared = cow = drafted = skipped = 0
        for seed in (0, 2, 3, 4, 5, 6, 13, 15, 16, 17):
            schedule = _random_schedule(np.random.default_rng(seed))
            plain_streams, _, _ = _run_engine(schedule, backend, None)
            spec = SPEC_VARIANTS[seed % len(SPEC_VARIANTS)]
            spec_streams, stats, engine = _run_engine(
                schedule, backend, spec
            )
            assert spec_streams == plain_streams, (
                f"seed {seed}: speculative token streams diverged"
            )
            preempted += stats.preemptions
            pool_stats = engine.model.kv_pool.stats
            shared += pool_stats["shared"]
            cow += pool_stats["cow"]
            drafted += sum(t.drafted for t in stats.trace)
            skipped += sum(
                1 for t in stats.trace
                if t.drafted == 0 and t.active > 0 and not t.prefilling
            )
        # The generator must exercise the hard cases, or the equality
        # above proves nothing about them.
        assert preempted > 0, "no schedule triggered a preemption"
        assert shared > 0, "no schedule shared a prefix block"
        assert cow > 0, "no schedule diverged through copy-on-write"
        assert drafted > 0, "no schedule actually speculated"
        assert skipped > 0, "no schedule hit the spec-skip fallback"

    def test_reference_backend_streams_identical(self):
        """On ``reference`` the verify logits sit within 1e-9 of the
        sequential decode's; over these seeded schedules no argmax or
        top-k draw flips, so the streams match exactly too."""
        for seed in (2, 5, 7):
            schedule = _random_schedule(np.random.default_rng(seed))
            plain, _, _ = _run_engine(schedule, "reference", None)
            spec, _, _ = _run_engine(
                schedule, "reference", SpeculativeConfig(k=3)
            )
            assert spec == plain, f"seed {seed}: reference diverged"

    def test_float_kv_target_streams_identical(self):
        """kv_bits=None target (the bench's high-acceptance variant):
        spec-on == spec-off bitwise on lut-blocked."""
        for seed in (1, 4):
            schedule = _random_schedule(np.random.default_rng(seed))
            plain, _, _ = _run_engine(
                schedule, "lut-blocked", None, kv_bits=None
            )
            spec_cfg = SpeculativeConfig(
                k=4, backend="reference", kv_bits=None
            )
            spec, stats, _ = _run_engine(
                schedule, "lut-blocked", spec_cfg, kv_bits=None
            )
            assert spec == plain, f"seed {seed}: float-KV diverged"
            # Top-k-sampled requests legitimately depress acceptance
            # (the draft proposes greedily); just require the draft to
            # be right more often than chance.
            assert stats.acceptance_rate > 0.2


def _simple_engine(spec, pool_blocks=None, max_new=12, nreq=3,
                   max_batch=4, kv_bits=4):
    model = DecoderModel(FUZZ, RuntimeConfig(
        weight_bits=4, kv_bits=kv_bits, backend="lut-blocked",
        max_seq_len=96, kv_block_size=8, kv_pool_blocks=pool_blocks,
        speculative=spec,
    ))
    engine = ServingEngine(model, max_batch_size=max_batch)
    rng = np.random.default_rng(11)
    for i in range(nreq):
        engine.submit(Request(
            f"r{i}",
            prompt=tuple(int(t) for t in
                         rng.integers(0, FUZZ.vocab,
                                      size=int(rng.integers(3, 10)))),
            max_new_tokens=max_new,
        ))
    return engine


class TestSpecAccounting:
    def test_acceptance_and_trace_consistency(self):
        engine = _simple_engine(SpeculativeConfig(k=3))
        results, stats = engine.run()
        drafted = sum(t.drafted for t in stats.trace)
        accepted = sum(t.accepted for t in stats.trace)
        assert drafted > 0
        assert 0 <= accepted <= drafted
        assert stats.acceptance_rate == pytest.approx(accepted / drafted)
        # Per-request acceptance counters sum to the trace total.
        assert sum(r.spec_accepted for r in results) == accepted
        # Identical-config draft on a LUT backend agrees everywhere;
        # the only shortfall is length-cap truncation of final steps.
        assert stats.acceptance_rate > 0.8
        assert stats.mean_tokens_per_step > 1.0
        assert engine.model.stats["verify_steps"] == stats.decode_steps

    def test_spec_off_trace_has_zero_draft_columns(self):
        engine = _simple_engine(None)
        _, stats = engine.run()
        assert all(t.drafted == 0 and t.accepted == 0
                   for t in stats.trace)
        assert stats.acceptance_rate == 0.0

    def test_draft_pool_drains_after_run(self):
        """Every retirement and preemption frees the sequence's draft
        caches — after the queue drains no draft block stays in use."""
        engine = _simple_engine(SpeculativeConfig(k=3))
        engine.run()
        assert engine.draft_model is not None
        assert engine.draft_model.kv_pool.used_blocks == 0

    def test_draft_freed_on_preemption_and_streams_survive(self):
        """A pool tight enough to preempt mid-decode: the preempted
        sequence's draft caches are dropped, the resume rebuilds them
        by decode-path replay, and streams still match spec-off."""
        worst = worst_case_blocks(10, 14, 8, FUZZ.layers)
        spec_engine = _simple_engine(
            SpeculativeConfig(k=3), pool_blocks=worst + 4,
            max_new=14, nreq=4,
        )
        s_results, s_stats = spec_engine.run()
        plain_engine = _simple_engine(
            None, pool_blocks=worst + 4, max_new=14, nreq=4
        )
        p_results, _ = plain_engine.run()
        assert s_stats.preemptions > 0
        assert {r.request_id: r.tokens for r in s_results} == \
               {r.request_id: r.tokens for r in p_results}
        assert spec_engine.draft_model.kv_pool.used_blocks == 0

    def test_spec_skip_under_tight_pool_still_identical(self):
        """When free blocks cannot cover k+1 rows for every active
        sequence the engine falls back to plain decode for that step —
        visible as drafted=0 trace rows — without changing output."""
        worst = worst_case_blocks(10, 14, 8, FUZZ.layers)
        engine = _simple_engine(
            SpeculativeConfig(k=6), pool_blocks=worst + 2,
            max_new=14, nreq=4,
        )
        results, stats = engine.run()
        decode_rows = [t for t in stats.trace
                       if t.active > 0 and not t.prefilling]
        assert any(t.drafted == 0 for t in decode_rows)
        plain = _simple_engine(None, pool_blocks=worst + 2,
                               max_new=14, nreq=4)
        p_results, _ = plain.run()
        assert {r.request_id: r.tokens for r in results} == \
               {r.request_id: r.tokens for r in p_results}

    def test_tpot_fields_populated(self):
        engine = _simple_engine(SpeculativeConfig(k=3))
        results, stats = engine.run()
        multi = [r for r in results if len(r.tokens) > 1]
        assert multi
        assert all(r.tpot_ms >= 0.0 for r in multi)
        assert stats.tpot_p95 >= stats.tpot_p50 >= 0.0

    def test_speculative_config_validation(self):
        with pytest.raises(ServingError):
            SpeculativeConfig(k=0)
        with pytest.raises(ServingError):
            SpeculativeConfig(k=2, layers=0)
        with pytest.raises(ServingError):
            SpeculativeConfig(k=2, weight_bits=9)
        with pytest.raises(ServingError):
            SpeculativeConfig(k=2, kv_bits="bogus")
