"""Batched K/V append parity: one pool-level write == the per-sequence loop.

:func:`~repro.runtime.paging.batched_decode_append` claims that a
decode batch's appends — boundary allocations, copy-on-write clones,
the stacked quantize + plan build, and prefix-index maintenance — land
the pool and every cache in state *bit-identical* to the sequential
``cache.append`` loop. These tests pin the claim by replaying the same
scripted histories through both paths and diffing the complete pool
state: float slabs, quantized codes/scales, the flattened K-arena plan
columns, fill counters, free list, refcounts, prefix index, and stats.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.runtime.paging import (
    BlockAllocator,
    PagedLayerCache,
    batched_decode_append,
    fused_paged_decode_attention,
)

KV_HEADS, HEAD_DIM, BLOCK = 2, 8, 8

#: Pool arrays that must match bit for bit after any append path.
_POOL_ARRAYS = (
    "_k", "_v", "_fill", "_refcount",
    "_k_codes", "_k_scale", "_k_zp",
    "_ka_flat", "_ka_scale", "_ka_zero",
)


def _pool_pair(bits=4, **kwargs):
    return (
        BlockAllocator(KV_HEADS, HEAD_DIM, block_size=BLOCK, bits=bits,
                       **kwargs),
        BlockAllocator(KV_HEADS, HEAD_DIM, block_size=BLOCK, bits=bits,
                       **kwargs),
    )


def _assert_pools_identical(got: BlockAllocator, want: BlockAllocator):
    for name in _POOL_ARRAYS:
        a, b = getattr(got, name, None), getattr(want, name, None)
        if b is None:
            continue
        np.testing.assert_array_equal(a, b, err_msg=name)
    assert got._free == want._free
    assert got._block_key == want._block_key
    assert got._prefix_index == want._prefix_index
    assert got.stats["k_plan_cols"] == want.stats["k_plan_cols"]
    assert got.stats["allocated"] == want.stats["allocated"]
    assert got.stats["cow"] == want.stats["cow"]


def _assert_caches_identical(got, want):
    for a, b in zip(got, want):
        assert a.length == b.length
        assert a.block_ids == b.block_ids
        assert a._tokens == b._tokens
        assert a._chain == b._chain


def _grow(pool, lengths, seed=0, layer=None, track=False):
    """Deterministically grow one cache per length (shared rng draw
    order across both pools)."""
    rng = np.random.default_rng(seed)
    caches = []
    for length in lengths:
        cache = PagedLayerCache(pool, layer=layer)
        if length:
            kwargs = {}
            if track:
                kwargs["token_ids"] = [int(t) % 64 for t in range(length)]
            cache.append(
                rng.normal(size=(length, KV_HEADS, HEAD_DIM)),
                rng.normal(size=(length, KV_HEADS, HEAD_DIM)),
                **kwargs,
            )
        caches.append(cache)
    return caches


def _step_rows(nseq, seed):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(nseq, KV_HEADS, HEAD_DIM)),
        rng.normal(size=(nseq, KV_HEADS, HEAD_DIM)),
    )


def _sequential(caches, k_rows, v_rows, token_ids=None):
    for s, cache in enumerate(caches):
        kwargs = {}
        if token_ids is not None:
            kwargs["token_ids"] = [int(token_ids[s])]
        cache.append(k_rows[s], v_rows[s], **kwargs)


class TestBatchedAppendParity:
    @pytest.mark.parametrize("bits", [None, 2, 4])
    def test_mid_block_rows_bit_identical(self, bits):
        """No allocations: rows land inside existing trailing blocks."""
        pool_b, pool_s = _pool_pair(bits=bits)
        lengths = [1, 3, BLOCK - 1, BLOCK + 2]
        caches_b = _grow(pool_b, lengths, seed=1)
        caches_s = _grow(pool_s, lengths, seed=1)
        for step in range(3):
            k, v = _step_rows(len(lengths), seed=100 + step)
            batched_decode_append(caches_b, k, v)
            _sequential(caches_s, k, v)
            _assert_pools_identical(pool_b, pool_s)
            _assert_caches_identical(caches_b, caches_s)

    @pytest.mark.parametrize("bits", [None, 4])
    def test_boundary_allocations_bit_identical(self, bits):
        """Sequences sitting exactly at padded capacity allocate one
        block each — drawn from the free list in batch order, exactly
        like the sequential loop."""
        pool_b, pool_s = _pool_pair(bits=bits)
        lengths = [BLOCK, 2, 2 * BLOCK, BLOCK]
        caches_b = _grow(pool_b, lengths, seed=2)
        caches_s = _grow(pool_s, lengths, seed=2)
        k, v = _step_rows(len(lengths), seed=7)
        batched_decode_append(caches_b, k, v)
        _sequential(caches_s, k, v)
        _assert_pools_identical(pool_b, pool_s)
        _assert_caches_identical(caches_b, caches_s)

    def test_freed_block_reuse_bit_identical(self):
        """Boundary allocations that must recycle scrubbed blocks draw
        the same ids in the same order as the sequential loop."""
        pool_b, pool_s = _pool_pair(num_blocks=8, prefix_cache_blocks=0)
        for pool in (pool_b, pool_s):
            victim = PagedLayerCache(pool)
            victim.append(np.zeros((2 * BLOCK, KV_HEADS, HEAD_DIM)),
                          np.zeros((2 * BLOCK, KV_HEADS, HEAD_DIM)))
            victim.release()
        lengths = [BLOCK, BLOCK]
        caches_b = _grow(pool_b, lengths, seed=3)
        caches_s = _grow(pool_s, lengths, seed=3)
        k, v = _step_rows(2, seed=11)
        batched_decode_append(caches_b, k, v)
        _sequential(caches_s, k, v)
        _assert_pools_identical(pool_b, pool_s)
        assert pool_b.stats["reused"] == pool_s.stats["reused"] > 0

    def test_cow_divergence_bit_identical(self):
        """A fork holding a shared trailing block copy-on-writes it
        before the row lands — same clone source/destination as the
        sequential path."""
        pool_b, pool_s = _pool_pair()
        tokens = list(range(12))
        setups = []
        for pool in (pool_b, pool_s):
            rng = np.random.default_rng(4)
            donor = PagedLayerCache(pool, layer=0)
            donor.append(rng.normal(size=(12, KV_HEADS, HEAD_DIM)),
                         rng.normal(size=(12, KV_HEADS, HEAD_DIM)),
                         token_ids=tokens)
            chain = pool.match_prefix(0, tokens)
            assert chain
            covered = sum(fill for _, fill in chain)
            fork = PagedLayerCache(pool, layer=0)
            fork.adopt_prefix(chain, tokens[:covered])
            assert pool.stats["shared"] > 0
            setups.append([donor, fork])
        k, v = _step_rows(2, seed=13)
        ids = np.array([21, 22])
        batched_decode_append(setups[0], k, v, token_ids=ids)
        _sequential(setups[1], k, v, token_ids=ids)
        assert pool_b.stats["cow"] > 0
        _assert_pools_identical(pool_b, pool_s)
        _assert_caches_identical(setups[0], setups[1])

    def test_prefix_index_maintenance_matches(self):
        """Layer-tagged caches fed token ids register the same prefix
        keys, so a later sequence adopts identically grown tables."""
        pool_b, pool_s = _pool_pair()
        lengths = [BLOCK - 1, BLOCK]
        caches_b = _grow(pool_b, lengths, seed=5, layer=0, track=True)
        caches_s = _grow(pool_s, lengths, seed=5, layer=0, track=True)
        for step in range(3):
            k, v = _step_rows(2, seed=40 + step)
            ids = np.array([step + 1, step + 2])
            batched_decode_append(caches_b, k, v, token_ids=ids)
            _sequential(caches_s, k, v, token_ids=ids)
        _assert_pools_identical(pool_b, pool_s)
        _assert_caches_identical(caches_b, caches_s)
        probe = caches_b[1]._tokens
        assert pool_b.match_prefix(0, probe) == pool_s.match_prefix(0, probe)

    def test_multi_step_decode_attention_parity(self):
        """End to end: several batched steps, then fused attention over
        the batched pool equals attention over the sequential pool."""
        pool_b, pool_s = _pool_pair()
        lengths = [3, BLOCK, 2 * BLOCK - 1]
        caches_b = _grow(pool_b, lengths, seed=6)
        caches_s = _grow(pool_s, lengths, seed=6)
        for step in range(2 * BLOCK):
            k, v = _step_rows(3, seed=200 + step)
            batched_decode_append(caches_b, k, v)
            _sequential(caches_s, k, v)
        _assert_pools_identical(pool_b, pool_s)
        rng = np.random.default_rng(9)
        q = rng.normal(size=(3, KV_HEADS * 2, HEAD_DIM))
        np.testing.assert_array_equal(
            fused_paged_decode_attention(q, caches_b, repeat=2,
                                         backend="lut-blocked"),
            fused_paged_decode_attention(q, caches_s, repeat=2,
                                         backend="lut-blocked"),
        )


class TestBatchedAppendValidation:
    def test_empty_batch_is_noop(self):
        batched_decode_append([], np.zeros((0,)), np.zeros((0,)))

    def test_rejects_mixed_pools(self):
        pool_a, pool_b = _pool_pair()
        caches = [_grow(pool_a, [2], seed=0)[0],
                  _grow(pool_b, [2], seed=0)[0]]
        k, v = _step_rows(2, seed=0)
        with pytest.raises(ServingError, match="shared block pool"):
            batched_decode_append(caches, k, v)

    def test_rejects_bad_shapes_and_ids(self):
        pool, _ = _pool_pair()
        caches = _grow(pool, [2, 3], seed=0)
        k, v = _step_rows(2, seed=0)
        with pytest.raises(ServingError, match="shape"):
            batched_decode_append(caches, k[:1], v[:1])
        with pytest.raises(ServingError, match="token ids"):
            batched_decode_append(caches, k, v, token_ids=[1, 2, 3])

    def test_rejects_released_cache(self):
        pool, _ = _pool_pair()
        caches = _grow(pool, [2], seed=0)
        caches[0].release()
        k, v = _step_rows(1, seed=0)
        with pytest.raises(ServingError, match="released"):
            batched_decode_append(caches, k, v)

    def test_append_rows_rejects_duplicates_shared_and_overflow(self):
        pool, _ = _pool_pair()
        cache = _grow(pool, [2], seed=0)[0]
        bid = cache.block_ids[-1]
        row = np.zeros((1, KV_HEADS, HEAD_DIM))
        two = np.zeros((2, KV_HEADS, HEAD_DIM))
        with pytest.raises(ServingError, match="distinct"):
            pool.append_rows([bid, bid], two, two)
        with pytest.raises(ServingError, match="shape"):
            pool.append_rows([bid], two, two)
        full = _grow(pool, [BLOCK], seed=1)[0]
        with pytest.raises(ServingError, match="overflow"):
            pool.append_rows([full.block_ids[-1]], row, row)
        shared_pool, _ = _pool_pair()
        donor = PagedLayerCache(shared_pool, layer=0)
        tokens = list(range(BLOCK))
        donor.append(np.zeros((BLOCK, KV_HEADS, HEAD_DIM)),
                     np.zeros((BLOCK, KV_HEADS, HEAD_DIM)),
                     token_ids=tokens)
        fork = PagedLayerCache(shared_pool, layer=0)
        chain = shared_pool.match_prefix(0, tokens)
        fork.adopt_prefix(chain, tokens)
        with pytest.raises(ServingError, match="copy-on-write"):
            shared_pool.append_rows([fork.block_ids[-1]], row, row)
