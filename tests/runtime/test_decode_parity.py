"""Decode parity: incremental KV-cached decode == full-sequence forward.

The acceptance test of the serving runtime: for the same prompt, running
prefill once and then token-by-token KV-cached decode steps must produce
the same logits as one full-sequence forward pass — on every registered
mpGEMM kernel backend. This is what licenses the engine to never re-run
a full forward during generation.
"""

import numpy as np
import pytest

from repro.models.configs import ModelConfig
from repro.runtime import DecoderModel, RuntimeConfig

BACKENDS = ("reference", "lut-naive", "lut-blocked")

#: Grouped-query attention and a gated FFN exercise every projection
#: shape; head_dim = 8 keeps the LUT group constraint (multiple of 4).
GQA_GATED = ModelConfig(
    "parity-gqa", hidden=32, ffn=64, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)
MHA_RELU = ModelConfig(
    "parity-mha", hidden=32, ffn=48, layers=2, heads=2, kv_heads=2,
    vocab=64,
)


def _decode_all(model, prompt, split):
    """Prefill ``prompt[:split]`` then decode the rest; stack the logits."""
    caches = model.new_caches()
    logits = model.prefill(prompt[:split], caches)
    outs = [logits[-1]]
    for token in prompt[split:]:
        outs.append(model.decode_step(int(token), caches))
    return np.stack(outs)


class TestDecodeParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("config", [GQA_GATED, MHA_RELU],
                             ids=lambda c: c.name)
    def test_incremental_matches_full_forward(self, backend, config):
        model = DecoderModel(
            config,
            RuntimeConfig(
                weight_bits=4, kv_bits=None, backend=backend, max_seq_len=32,
            ),
        )
        rng = np.random.default_rng(11)
        prompt = rng.integers(0, config.vocab, size=13)
        full = model.forward_full(prompt)
        incremental = _decode_all(model, prompt, split=4)
        np.testing.assert_allclose(incremental, full[3:], atol=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parity_holds_for_fp_weights(self, backend):
        """weight_bits=None bypasses the kernel seam; parity still holds."""
        model = DecoderModel(
            GQA_GATED,
            RuntimeConfig(
                weight_bits=None, kv_bits=None, backend=backend,
                max_seq_len=32,
            ),
        )
        prompt = np.arange(10) % GQA_GATED.vocab
        full = model.forward_full(prompt)
        incremental = _decode_all(model, prompt, split=1)
        np.testing.assert_allclose(incremental, full, atol=1e-9)

    def test_chunked_prefill_matches_single_prefill(self):
        model = DecoderModel(
            GQA_GATED, RuntimeConfig(weight_bits=4, max_seq_len=32)
        )
        prompt = np.random.default_rng(2).integers(0, 64, size=12)
        full = model.forward_full(prompt)
        caches = model.new_caches()
        model.prefill(prompt[:5], caches)
        chunk2 = model.prefill(prompt[5:], caches)
        np.testing.assert_allclose(chunk2, full[5:], atol=1e-9)

    def test_decode_never_reruns_prefill(self):
        """The instrumentation the cost claim rests on: decoding adds
        decode steps and context-sized attention work, no prefill
        tokens."""
        model = DecoderModel(
            GQA_GATED, RuntimeConfig(weight_bits=4, max_seq_len=32)
        )
        prompt = np.arange(8)
        caches = model.new_caches()
        model.prefill(prompt, caches)
        assert model.stats["prefill_tokens"] == 8
        before = dict(model.stats)
        for i, token in enumerate((1, 2, 3)):
            model.decode_step(token, caches)
            # Attention context at decode step i is prompt + i + 1 tokens,
            # per layer: cost scales with the cache, linearly.
            expected = sum(8 + j + 1 for j in range(i + 1))
            assert model.stats["attn_context_tokens"] == (
                before["attn_context_tokens"]
                + expected * GQA_GATED.layers
            )
        assert model.stats["prefill_tokens"] == before["prefill_tokens"]
        assert model.stats["decode_steps"] == before["decode_steps"] + 3


class TestQuantizedKvDecode:
    def test_lut_backends_bit_identical(self):
        outs = {}
        for backend in ("lut-naive", "lut-blocked"):
            model = DecoderModel(
                GQA_GATED,
                RuntimeConfig(
                    weight_bits=4, kv_bits=4, backend=backend, max_seq_len=32,
                ),
            )
            caches = model.new_caches()
            model.prefill(np.array([1, 5, 9, 2]), caches)
            outs[backend] = np.stack(
                [model.decode_step(t, caches) for t in (7, 3, 11)]
            )
        np.testing.assert_array_equal(outs["lut-naive"], outs["lut-blocked"])

    def test_lut_backends_bit_identical_across_block_boundaries(self):
        """Same bit-identity contract with a small block size, so the
        decode crosses several paged-KV block boundaries."""
        outs = {}
        for backend in ("lut-naive", "lut-blocked"):
            model = DecoderModel(
                GQA_GATED,
                RuntimeConfig(
                    weight_bits=4, kv_bits=4, backend=backend,
                    max_seq_len=32, kv_block_size=8,
                ),
            )
            caches = model.new_caches()
            model.prefill(np.arange(6), caches)
            outs[backend] = np.stack(
                [model.decode_step(t % 13, caches) for t in range(14)]
            )
            assert len(caches[0].block_ids) == 3  # 20 tokens / block 8
        np.testing.assert_array_equal(outs["lut-naive"], outs["lut-blocked"])

    def test_quantized_kv_tracks_float_kv(self):
        """INT8 KV decode stays close to the float-cache decode."""
        logits = {}
        for kv_bits in (None, 8):
            model = DecoderModel(
                GQA_GATED,
                RuntimeConfig(weight_bits=4, kv_bits=kv_bits, max_seq_len=32),
            )
            caches = model.new_caches()
            model.prefill(np.array([3, 1, 4, 1, 5]), caches)
            logits[kv_bits] = model.decode_step(9, caches)
        err = np.abs(logits[8] - logits[None]).max()
        scale = np.abs(logits[None]).max()
        assert err < 0.05 * scale

    def test_unaligned_context_lengths_decode(self):
        """Every context length (aligned or not) must decode: the padded
        cache + context_valid masking handles arbitrary lengths."""
        model = DecoderModel(
            GQA_GATED,
            RuntimeConfig(weight_bits=4, kv_bits=4, max_seq_len=32),
        )
        caches = model.new_caches()
        model.prefill(np.array([2, 7]), caches)   # context 2: padded to 4
        for i, token in enumerate((1, 2, 3, 4, 5)):
            logits = model.decode_step(token, caches)
            assert logits.shape == (GQA_GATED.vocab,)
            assert np.all(np.isfinite(logits))
            assert caches[0].length == 3 + i
