"""Speculative decoding parity: batched verify vs sequential decode.

``fused_paged_verify_attention`` must reproduce, for every candidate
row, the attention output a sequential decode step at that position
would have produced — bit-for-bit on the LUT backends (per-column K
plans and per-row zero-masked trailing V requantization make the verify
row a function of its causal prefix only), 1e-9 on reference and on
float-KV pools (batched BLAS/einsum padding associates differently in
the last ulp).
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime.model import DecoderModel, RuntimeConfig
from repro.runtime.paging import (
    BlockAllocator,
    PagedLayerCache,
    fused_paged_decode_attention,
    fused_paged_verify_attention,
)

LUT_BACKENDS = ("lut-naive", "lut-blocked")
KV_HEADS = 2
HEAD_DIM = 8
REPEAT = 2
HEADS = KV_HEADS * REPEAT


def _fill_cache(pool, rng, length):
    cache = PagedLayerCache(pool)
    if length:
        cache.append(
            rng.normal(size=(length, KV_HEADS, HEAD_DIM)),
            rng.normal(size=(length, KV_HEADS, HEAD_DIM)),
        )
    return cache


def _scenario(seed, bits, block_size=8):
    """Two mirrored (pool, caches, rows, queries) worlds: one for the
    batched verify, one replayed sequentially."""
    rng = np.random.default_rng(seed)
    b = int(rng.integers(1, 5))
    t = int(rng.integers(1, 6))
    base = [int(rng.integers(1, 3 * block_size)) for _ in range(b)]
    row_state = rng.bit_generator.state

    def build():
        r = np.random.default_rng()
        r.bit_generator.state = row_state
        pool = BlockAllocator(
            KV_HEADS, HEAD_DIM, block_size=block_size, bits=bits
        )
        caches = [_fill_cache(pool, r, length) for length in base]
        k_new = r.normal(size=(b, t, KV_HEADS, HEAD_DIM))
        v_new = r.normal(size=(b, t, KV_HEADS, HEAD_DIM))
        queries = r.normal(size=(b, t, HEADS, HEAD_DIM))
        return pool, caches, k_new, v_new, queries

    return base, build


def _sequential_reference(caches, k_new, v_new, queries, backend):
    """T fused decode steps: append row j everywhere, attend row j."""
    t = queries.shape[1]
    outs = []
    for j in range(t):
        for i, cache in enumerate(caches):
            cache.append(k_new[i, j], v_new[i, j])
        outs.append(
            fused_paged_decode_attention(
                queries[:, j], caches, repeat=REPEAT, backend=backend
            )
        )
    return np.stack(outs, axis=1)  # (B, T, heads, head_dim)


class TestVerifyAttentionParity:
    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_bitwise_identical_to_sequential_decode_lut(self, backend):
        for seed in range(8):
            base, build = _scenario(seed, bits=4)
            pool, caches, k_new, v_new, queries = build()
            for i, cache in enumerate(caches):
                cache.append(k_new[i], v_new[i])
            got = fused_paged_verify_attention(
                queries, caches, base, repeat=REPEAT, backend=backend
            )
            _, s_caches, sk, sv, sq = build()
            expect = _sequential_reference(s_caches, sk, sv, sq, backend)
            np.testing.assert_array_equal(got, expect)

    def test_reference_backend_within_1e9(self):
        for seed in range(6):
            base, build = _scenario(seed, bits=4)
            pool, caches, k_new, v_new, queries = build()
            for i, cache in enumerate(caches):
                cache.append(k_new[i], v_new[i])
            got = fused_paged_verify_attention(
                queries, caches, base, repeat=REPEAT, backend="reference"
            )
            _, s_caches, sk, sv, sq = build()
            expect = _sequential_reference(
                s_caches, sk, sv, sq, "reference"
            )
            np.testing.assert_allclose(got, expect, atol=1e-9, rtol=0)

    def test_float_kv_within_1e9(self):
        for seed in range(6):
            base, build = _scenario(seed, bits=None)
            pool, caches, k_new, v_new, queries = build()
            for i, cache in enumerate(caches):
                cache.append(k_new[i], v_new[i])
            got = fused_paged_verify_attention(
                queries, caches, base, repeat=REPEAT
            )
            _, s_caches, sk, sv, sq = build()
            expect = _sequential_reference(s_caches, sk, sv, sq, None)
            np.testing.assert_allclose(got, expect, atol=1e-9, rtol=0)

    def test_single_candidate_matches_decode_exactly(self):
        # T=1 verify is just a fused decode step in verify clothing.
        base, build = _scenario(3, bits=4)
        pool, caches, k_new, v_new, queries = build()
        k1, v1, q1 = k_new[:, :1], v_new[:, :1], queries[:, :1]
        for i, cache in enumerate(caches):
            cache.append(k1[i], v1[i])
        got = fused_paged_verify_attention(
            q1, caches, base, repeat=REPEAT, backend="lut-blocked"
        )
        _, s_caches, sk, sv, sq = build()
        expect = _sequential_reference(
            s_caches, k1, v1, q1, "lut-blocked"
        )
        np.testing.assert_array_equal(got, expect)

    def test_length_mismatch_rejected(self):
        base, build = _scenario(0, bits=4)
        pool, caches, k_new, v_new, queries = build()
        with pytest.raises(ServingError):
            fused_paged_verify_attention(
                queries, caches, base, repeat=REPEAT
            )


MODEL_CFG = ModelConfig(
    "spec-fuzz",
    hidden=32,
    ffn=48,
    layers=2,
    heads=4,
    kv_heads=2,
    vocab=64,
    gated_ffn=True,
)


def _make_model(backend, kv_bits=4):
    rt = RuntimeConfig(
        weight_bits=4,
        kv_bits=kv_bits,
        backend=backend,
        kv_block_size=8,
        max_seq_len=96,
    )
    return DecoderModel(MODEL_CFG, rt)


def _prefilled(model, prompts):
    caches = [model.new_caches() for _ in prompts]
    for prompt, cs in zip(prompts, caches):
        model.prefill(prompt, cs, share=False)
    return caches


class TestVerifyBatchParity:
    """``DecoderModel.verify_batch`` vs T sequential ``decode_batch``
    steps on identically-seeded twin models."""

    def _worlds(self, seed):
        rng = np.random.default_rng(seed)
        b = int(rng.integers(1, 4))
        t = int(rng.integers(2, 5))
        prompts = [
            rng.integers(0, MODEL_CFG.vocab, size=int(rng.integers(2, 20)))
            for _ in range(b)
        ]
        cands = rng.integers(0, MODEL_CFG.vocab, size=(b, t))
        return prompts, cands

    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_bitwise_vs_sequential_decode_lut(self, backend):
        for seed in range(4):
            prompts, cands = self._worlds(seed)
            spec = _make_model(backend)
            sc = _prefilled(spec, prompts)
            got = spec.verify_batch(cands, sc)
            plain = _make_model(backend)
            pc = _prefilled(plain, prompts)
            rows = [
                plain.decode_batch(cands[:, j], pc)
                for j in range(cands.shape[1])
            ]
            np.testing.assert_array_equal(got, np.stack(rows, axis=1))

    @pytest.mark.parametrize("kv_bits", [4, None])
    def test_reference_and_float_kv_within_1e9(self, kv_bits):
        prompts, cands = self._worlds(9)
        spec = _make_model("reference", kv_bits=kv_bits)
        sc = _prefilled(spec, prompts)
        got = spec.verify_batch(cands, sc)
        plain = _make_model("reference", kv_bits=kv_bits)
        pc = _prefilled(plain, prompts)
        rows = [
            plain.decode_batch(cands[:, j], pc)
            for j in range(cands.shape[1])
        ]
        np.testing.assert_allclose(
            got, np.stack(rows, axis=1), atol=1e-9, rtol=0
        )

    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_rollback_then_decode_matches_plain(self, backend):
        # Accept m of the T candidates, truncate the rest, keep
        # decoding: the continuation must be bitwise the run that only
        # ever decoded the m accepted tokens.
        rng = np.random.default_rng(21)
        for trial in range(3):
            prompts, cands = self._worlds(30 + trial)
            b, t = cands.shape
            m = int(rng.integers(1, t + 1))
            extra = rng.integers(0, MODEL_CFG.vocab, size=(3, b))

            spec = _make_model(backend)
            sc = _prefilled(spec, prompts)
            spec.verify_batch(cands, sc)
            for caches in sc:
                for cache in caches:
                    cache.truncate_rows(t - m)
            got = [spec.decode_batch(extra[j], sc) for j in range(3)]

            plain = _make_model(backend)
            pc = _prefilled(plain, prompts)
            for j in range(m):
                plain.decode_batch(cands[:, j], pc)
            expect = [plain.decode_batch(extra[j], pc) for j in range(3)]
            for g, e in zip(got, expect):
                np.testing.assert_array_equal(g, e)
            for caches_s, caches_p in zip(sc, pc):
                assert caches_s[0].length == caches_p[0].length

    def test_over_long_candidates_rejected(self):
        model = _make_model("lut-blocked")
        caches = _prefilled(model, [np.arange(2, dtype=np.int64)])
        too_long = model.runtime.max_seq_len - caches[0][0].length + 1
        cands = np.zeros((1, too_long), dtype=np.int64)
        with pytest.raises(ServingError):
            model.verify_batch(cands, caches)
