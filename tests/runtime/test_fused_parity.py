"""Differential parity/fuzz harness for the batch-fused decode path.

The fused decode attention
(:func:`~repro.runtime.paging.fused_paged_decode_attention`) claims to
be bit-identical to the per-sequence per-block path on the LUT backends
at *any* batch composition, and 1e-9-close on ``reference`` (whose
batched BLAS/einsum reductions differ in the last ulp). This module
pins that claim three ways:

- a seeded random-schedule **engine fuzz**: random admissions, prompt
  lengths, shared prefixes, samplers, pool bounds (forcing
  preemptions), run through the full :class:`ServingEngine` twice —
  fused vs. the unfused oracle — asserting identical token streams;
- a **kernel-level parity matrix** over block sizes × GQA ratios ×
  partial trailing fills × backends, including freed-block-reuse and
  CoW-divergence block-table states;
- a **dense cross-check**: the fused path at batch 1 against the
  contiguous :class:`LayerKvCache` + ``lut_decode_attention`` recipe.
"""

import numpy as np
import pytest

from repro.lut.attention import float_decode_attention, lut_decode_attention
from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    LayerKvCache,
    Request,
    RuntimeConfig,
    SamplingParams,
    ServingEngine,
)
from repro.runtime.paging import (
    BlockAllocator,
    PagedLayerCache,
    fused_paged_decode_attention,
    paged_decode_attention,
)
from repro.runtime.scheduler import worst_case_blocks

LUT_BACKENDS = ("lut-naive", "lut-blocked")
BACKENDS = LUT_BACKENDS + ("reference",)

FUZZ = ModelConfig(
    "fuzz", hidden=32, ffn=48, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)

#: Seeds per LUT backend; 2 backends x this many schedules >= 25 random
#: schedules through the differential engine harness.
FUZZ_SEEDS = range(13)


def _random_schedule(rng):
    """One random serving schedule: requests (with shared prefixes and
    mixed samplers), a block size, a pool bound, and a scheduler.

    Bounded-pool schedules keep ``max_batch >= len(requests)`` and a
    pool that covers every prompt at once plus the biggest single
    request's worst case: under FIFO a prefill that doesn't fit is a
    hard error (the engine's relief valve only guards the *decode*),
    so pressure must come from decode growth — which is exactly where
    preemption lives.
    """
    block_size = int(rng.choice([8, 16]))
    shared = [
        int(t)
        for t in rng.integers(0, FUZZ.vocab, size=int(rng.integers(6, 16)))
    ]
    requests = []
    for i in range(int(rng.integers(4, 8))):
        if rng.random() < 0.5:  # shared-prefix family
            take = int(rng.integers(2, len(shared) + 1))
            prompt = tuple(shared[:take])
            if rng.random() < 0.5:   # else: a pure nested prefix — the
                # longer sibling adopts the shorter one's live partial
                # trailing block and copy-on-writes past it
                prompt = prompt + tuple(
                    int(t)
                    for t in rng.integers(0, FUZZ.vocab,
                                          size=int(rng.integers(1, 6)))
                )
        else:
            prompt = tuple(
                int(t)
                for t in rng.integers(0, FUZZ.vocab,
                                      size=int(rng.integers(1, 13)))
            )
        top_k = None if rng.random() < 0.7 else int(rng.integers(1, 6))
        requests.append(Request(
            request_id=f"r{i}",
            prompt=prompt,
            max_new_tokens=int(rng.integers(4, 17)),
            sampling=SamplingParams(top_k=top_k, seed=i),
            priority=int(rng.integers(0, 3)),
        ))
    if rng.random() < 0.4:
        pool_blocks = None            # unbounded pool
        scheduler = str(rng.choice(["fifo", "sjf", "memory-aware"]))
        max_batch = int(rng.integers(2, 9))
    else:
        biggest = max(
            worst_case_blocks(len(r.prompt), r.max_new_tokens,
                              block_size, FUZZ.layers)
            for r in requests
        )
        total = sum(
            worst_case_blocks(len(r.prompt), r.max_new_tokens,
                              block_size, FUZZ.layers)
            for r in requests
        )
        prompts = sum(
            FUZZ.layers * -(-len(r.prompt) // block_size)
            for r in requests
        )
        lo = max(biggest, prompts)
        pool_blocks = int(rng.integers(lo, max(lo + 1, total)))
        scheduler = "fifo"
        max_batch = len(requests)
    return requests, block_size, pool_blocks, scheduler, max_batch


def _run_engine(schedule, backend, fused):
    requests, block_size, pool_blocks, scheduler, max_batch = schedule
    model = DecoderModel(FUZZ, RuntimeConfig(
        weight_bits=4, kv_bits=4, backend=backend, max_seq_len=96,
        kv_block_size=block_size, kv_pool_blocks=pool_blocks,
        fused_decode=fused,
    ))
    engine = ServingEngine(
        model, max_batch_size=max_batch, scheduler=scheduler
    )
    for request in requests:
        engine.submit(request)
    results, stats = engine.run()
    streams = {r.request_id: tuple(r.tokens) for r in results}
    return streams, stats, model


class TestEngineFuzz:
    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_random_schedules_token_streams_bit_identical(self, backend):
        """>= 25 random schedules across the two LUT backends: the fused
        engine's token streams equal the unfused oracle's exactly, under
        admission churn, shared prefixes, CoW divergence, bounded pools
        and preemptions."""
        preempted = shared = cow = 0
        for seed in FUZZ_SEEDS:
            schedule = _random_schedule(np.random.default_rng(seed))
            fused_streams, fused_stats, fused_model = _run_engine(
                schedule, backend, fused=True
            )
            oracle_streams, _, _ = _run_engine(
                schedule, backend, fused=False
            )
            assert fused_streams == oracle_streams, (
                f"seed {seed}: fused token streams diverged"
            )
            preempted += fused_stats.preemptions
            pool_stats = fused_model.kv_pool.stats
            shared += pool_stats["shared"]
            cow += pool_stats["cow"]
        # The schedule generator must actually exercise the hard cases,
        # or the equality above proves nothing about them.
        assert preempted > 0, "no schedule triggered a preemption"
        assert shared > 0, "no schedule shared a prefix block"
        assert cow > 0, "no schedule diverged through copy-on-write"

    def test_random_batches_reference_within_1e9(self):
        """On ``reference``, fused and unfused decode logits agree to
        1e-9 (token streams are not compared — a last-ulp flip could
        legally change an argmax). Both models are driven with the same
        token inputs so the comparison is step-by-step."""
        rng = np.random.default_rng(99)
        for trial in range(6):
            rt = dict(
                weight_bits=4, kv_bits=4, backend="reference",
                max_seq_len=64, kv_block_size=int(rng.choice([8, 16])),
            )
            fused = DecoderModel(FUZZ, RuntimeConfig(**rt))
            oracle = DecoderModel(
                FUZZ, RuntimeConfig(fused_decode=False, **rt)
            )
            nseq = int(rng.integers(1, 6))
            caches_f = [fused.new_caches() for _ in range(nseq)]
            caches_o = [oracle.new_caches() for _ in range(nseq)]
            for s in range(nseq):
                prompt = rng.integers(
                    0, FUZZ.vocab, size=int(rng.integers(1, 24))
                )
                fused.prefill(prompt, caches_f[s])
                oracle.prefill(prompt, caches_o[s])
            for _ in range(int(rng.integers(2, 10))):
                tokens = rng.integers(0, FUZZ.vocab, size=nseq)
                got = fused.decode_batch(tokens, caches_f)
                want = oracle.decode_batch(tokens, caches_o)
                np.testing.assert_allclose(
                    got, want, atol=1e-9, err_msg=f"trial {trial}"
                )


def _stacked_unfused(queries, caches, repeat, backend):
    return np.stack([
        paged_decode_attention(queries[i], cache, repeat=repeat,
                               backend=backend)
        for i, cache in enumerate(caches)
    ])


def _assert_parity(got, want, backend, msg=""):
    if backend == "reference":
        np.testing.assert_allclose(got, want, atol=1e-9, err_msg=msg)
    else:
        np.testing.assert_array_equal(got, want, err_msg=msg)


class TestFusedKernelParityMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "block_size,head_dim,kv_heads,repeat",
        [
            (8, 8, 1, 1),       # MHA, minimal block
            (8, 8, 2, 2),       # GQA 2:1
            (16, 8, 1, 4),      # GQA 4:1
            (16, 16, 2, 2),     # grouped K quantization (head_dim 16)
            (32, 8, 3, 2),      # wide blocks, odd kv_heads
        ],
    )
    def test_ragged_batch_matches_per_sequence(
        self, backend, block_size, head_dim, kv_heads, repeat
    ):
        """Ragged lengths with full and partial trailing blocks: the
        fused batch equals B per-sequence calls."""
        rng = np.random.default_rng(
            block_size * 1000 + head_dim * 10 + kv_heads
        )
        pool = BlockAllocator(
            kv_heads, head_dim, block_size=block_size, bits=4
        )
        lengths = [
            1,                       # single row
            block_size - 1,          # partial block
            block_size,              # exactly full
            2 * block_size + 3,      # full + partial tail
            3 * block_size,          # all full
        ]
        caches = []
        for length in lengths:
            cache = PagedLayerCache(pool)
            cache.append(
                rng.normal(size=(length, kv_heads, head_dim)),
                rng.normal(size=(length, kv_heads, head_dim)),
            )
            caches.append(cache)
        queries = rng.normal(
            size=(len(caches), kv_heads * repeat, head_dim)
        )
        got = fused_paged_decode_attention(
            queries, caches, repeat=repeat, backend=backend
        )
        want = _stacked_unfused(queries, caches, repeat, backend)
        _assert_parity(got, want, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kv_bits", [2, 4, 8])
    def test_kv_bit_widths(self, backend, kv_bits):
        rng = np.random.default_rng(kv_bits)
        pool = BlockAllocator(2, 8, block_size=8, bits=kv_bits)
        caches = []
        for length in (3, 8, 13):
            cache = PagedLayerCache(pool)
            cache.append(
                rng.normal(size=(length, 2, 8)),
                rng.normal(size=(length, 2, 8)),
            )
            caches.append(cache)
        queries = rng.normal(size=(3, 4, 8))
        got = fused_paged_decode_attention(
            queries, caches, repeat=2, backend=backend
        )
        want = _stacked_unfused(queries, caches, 2, backend)
        _assert_parity(got, want, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_growth_across_block_boundaries(self, backend):
        """Interleave appends and fused/unfused comparisons so trailing
        blocks fill, freeze, and new blocks open mid-stream."""
        rng = np.random.default_rng(5)
        pool = BlockAllocator(2, 8, block_size=8, bits=4)
        caches = [PagedLayerCache(pool) for _ in range(3)]
        for cache in caches:
            cache.append(
                rng.normal(size=(2, 2, 8)), rng.normal(size=(2, 2, 8))
            )
        for step in range(20):
            grower = caches[step % len(caches)]
            grower.append(
                rng.normal(size=(2, 8)), rng.normal(size=(2, 8))
            )
            queries = rng.normal(size=(3, 4, 8))
            got = fused_paged_decode_attention(
                queries, caches, repeat=2, backend=backend
            )
            want = _stacked_unfused(queries, caches, 2, backend)
            _assert_parity(got, want, backend, msg=f"step {step}")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cow_divergence_through_fused_path(self, backend):
        """Two sequences share prefix blocks, then diverge: the append
        copy-on-writes the shared trailing block, and the fused batch
        over [donor, fork] still matches per-sequence decode."""
        rng = np.random.default_rng(17)
        pool = BlockAllocator(2, 8, block_size=8, bits=4)
        donor = PagedLayerCache(pool, layer=0)
        tokens = [int(t) for t in rng.integers(0, 64, size=12)]
        donor.append(
            rng.normal(size=(12, 2, 8)), rng.normal(size=(12, 2, 8)),
            token_ids=tokens,
        )
        chain = pool.match_prefix(0, tokens)
        assert chain, "prefix index must cover the donor's blocks"
        covered = sum(fill for _, fill in chain)
        fork = PagedLayerCache(pool, layer=0)
        fork.adopt_prefix(chain, tokens[:covered])
        assert pool.stats["shared"] > 0
        # Divergence: the fork appends its own rows (CoW on the shared
        # partial trailing block), the donor keeps growing privately.
        fork.append(
            rng.normal(size=(3, 2, 8)), rng.normal(size=(3, 2, 8)),
            token_ids=[1, 2, 3],
        )
        assert pool.stats["cow"] > 0
        donor.append(
            rng.normal(size=(2, 2, 8)), rng.normal(size=(2, 2, 8)),
            token_ids=[4, 5],
        )
        caches = [donor, fork]
        queries = rng.normal(size=(2, 4, 8))
        got = fused_paged_decode_attention(
            queries, caches, repeat=2, backend=backend
        )
        want = _stacked_unfused(queries, caches, 2, backend)
        _assert_parity(got, want, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_freed_block_reuse_through_fused_path(self, backend):
        """A released sequence's scrubbed blocks serve a new sequence:
        no V-arena or plan state leaks from the previous occupant."""
        rng = np.random.default_rng(23)
        pool = BlockAllocator(2, 8, block_size=8, bits=4, num_blocks=4,
                              prefix_cache_blocks=0)
        first = PagedLayerCache(pool)
        first.append(
            rng.normal(size=(20, 2, 8)), rng.normal(size=(20, 2, 8))
        )
        queries = rng.normal(size=(1, 4, 8))
        fused_paged_decode_attention(
            queries, [first], repeat=2, backend=backend
        )  # populate arenas for the first occupant
        reused_ids = list(first.block_ids)
        first.release()
        k2 = rng.normal(size=(18, 2, 8))
        v2 = rng.normal(size=(18, 2, 8))
        second = PagedLayerCache(pool)
        second.append(k2, v2)
        assert set(second.block_ids) <= set(reused_ids)
        q2 = rng.normal(size=(1, 4, 8))
        got = fused_paged_decode_attention(
            q2, [second], repeat=2, backend=backend
        )
        # Oracle: the same rows in a fresh pool never touched before.
        fresh_pool = BlockAllocator(2, 8, block_size=8, bits=4)
        fresh = PagedLayerCache(fresh_pool)
        fresh.append(k2, v2)
        want = fused_paged_decode_attention(
            q2, [fresh], repeat=2, backend=backend
        )
        np.testing.assert_array_equal(got, want)

    def test_batch_composition_invariance(self):
        """A sequence's fused output does not depend on which other
        sequences share the batch — the property that makes continuous
        batching (and preemption) output-transparent."""
        rng = np.random.default_rng(31)
        pool = BlockAllocator(2, 8, block_size=8, bits=4)
        caches = []
        for length in (4, 9, 17, 24):
            cache = PagedLayerCache(pool)
            cache.append(
                rng.normal(size=(length, 2, 8)),
                rng.normal(size=(length, 2, 8)),
            )
            caches.append(cache)
        queries = rng.normal(size=(4, 4, 8))
        full = fused_paged_decode_attention(
            queries, caches, repeat=2, backend="lut-blocked"
        )
        solo = np.concatenate([
            fused_paged_decode_attention(
                queries[i:i + 1], caches[i:i + 1], repeat=2,
                backend="lut-blocked",
            )
            for i in range(4)
        ])
        np.testing.assert_array_equal(full, solo)
        pair = fused_paged_decode_attention(
            queries[1:3], caches[1:3], repeat=2, backend="lut-blocked"
        )
        np.testing.assert_array_equal(full[1:3], pair)

    def test_single_block_matches_contiguous_dense_cache(self):
        """Dense cross-check through the *fused* path: within one block
        the fused recipe coincides with the contiguous LayerKvCache +
        lut_decode_attention computation bit for bit."""
        rng = np.random.default_rng(7)
        k = rng.normal(size=(13, 2, 16))
        v = rng.normal(size=(13, 2, 16))
        query = rng.normal(size=(2, 16))
        pool = BlockAllocator(2, 16, block_size=16, bits=4)
        paged = PagedLayerCache(pool)
        dense = LayerKvCache(2, 16, bits=4)
        paged.append(k, v)
        dense.append(k, v)
        got = fused_paged_decode_attention(
            query[None], [paged], backend="lut-blocked"
        )[0]
        qc, valid = dense.quantized()
        want = lut_decode_attention(
            query, qc, backend="lut-blocked", context_valid=valid
        )
        np.testing.assert_array_equal(got, want)

    def test_validation(self):
        from repro.errors import LutError, ServingError

        with pytest.raises(ServingError):
            fused_paged_decode_attention(np.zeros((0, 2, 8)), [])
        float_pool = BlockAllocator(2, 8, block_size=8)
        cache = PagedLayerCache(float_pool)
        # A float pool is served by the float fused branch now — but an
        # empty cache is still unservable.
        with pytest.raises(ServingError):
            fused_paged_decode_attention(np.zeros((1, 2, 8)), [cache])
        pool = BlockAllocator(2, 8, block_size=8, bits=4)
        empty = PagedLayerCache(pool)
        with pytest.raises(ServingError):
            fused_paged_decode_attention(np.zeros((1, 2, 8)), [empty])
        full = PagedLayerCache(pool)
        full.append(np.zeros((2, 8)), np.zeros((2, 8)))
        with pytest.raises(LutError):
            fused_paged_decode_attention(np.zeros((1, 3, 8)), [full])
        other_pool = BlockAllocator(2, 8, block_size=8, bits=4)
        other = PagedLayerCache(other_pool)
        other.append(np.zeros((2, 8)), np.zeros((2, 8)))
        with pytest.raises(ServingError):
            fused_paged_decode_attention(
                np.zeros((2, 2, 8)), [full, other]
            )


class TestFloatKvFused:
    """The float branch: ``kv_bits=None`` pools no longer fall back to
    per-sequence decode — the fused batch gathers the float slabs and
    runs grouped einsums, 1e-9-close to the per-head gemv reference and
    bitwise invariant to batch composition."""

    def _grown(self, lengths, seed):
        rng = np.random.default_rng(seed)
        pool = BlockAllocator(2, 8, block_size=8)
        caches = []
        for length in lengths:
            cache = PagedLayerCache(pool)
            cache.append(
                rng.normal(size=(length, 2, 8)),
                rng.normal(size=(length, 2, 8)),
            )
            caches.append(cache)
        return pool, caches

    @pytest.mark.parametrize("repeat", [1, 2])
    def test_matches_per_sequence_float_reference(self, repeat):
        """Ragged float batch vs B calls of the contiguous-view gemv
        path (the unfused decode's float oracle)."""
        lengths = [1, 7, 8, 19, 24]
        _, caches = self._grown(lengths, seed=41)
        rng = np.random.default_rng(42)
        queries = rng.normal(size=(len(caches), 2 * repeat, 8))
        got = fused_paged_decode_attention(queries, caches, repeat=repeat)
        want = np.stack([
            float_decode_attention(
                queries[i], cache.k_view(), cache.v_view(), repeat=repeat
            )
            for i, cache in enumerate(caches)
        ])
        np.testing.assert_allclose(got, want, atol=1e-9)

    def test_batch_composition_invariance(self):
        """A sequence's float fused output is bitwise independent of
        its batch neighbours (padded columns are exact zeros that never
        enter a reduction)."""
        lengths = [4, 9, 17, 24]
        _, caches = self._grown(lengths, seed=43)
        rng = np.random.default_rng(44)
        queries = rng.normal(size=(4, 4, 8))
        full = fused_paged_decode_attention(queries, caches, repeat=2)
        solo = np.concatenate([
            fused_paged_decode_attention(
                queries[i:i + 1], caches[i:i + 1], repeat=2
            )
            for i in range(4)
        ])
        np.testing.assert_array_equal(full, solo)
        pair = fused_paged_decode_attention(
            queries[1:3], caches[1:3], repeat=2
        )
        np.testing.assert_array_equal(full[1:3], pair)

    def test_growth_across_block_boundaries(self):
        lengths = [2, 2, 2]
        _, caches = self._grown(lengths, seed=45)
        rng = np.random.default_rng(46)
        for step in range(20):
            grower = caches[step % len(caches)]
            grower.append(
                rng.normal(size=(2, 8)), rng.normal(size=(2, 8))
            )
            queries = rng.normal(size=(3, 4, 8))
            got = fused_paged_decode_attention(queries, caches, repeat=2)
            want = np.stack([
                float_decode_attention(
                    queries[i], c.k_view(), c.v_view(), repeat=2
                )
                for i, c in enumerate(caches)
            ])
            np.testing.assert_allclose(
                got, want, atol=1e-9, err_msg=f"step {step}"
            )

    def test_engine_float_kv_fused_logits_match_unfused(self):
        """Model-level differential drive with kv_bits=None: the fused
        engine's decode logits track the unfused oracle at 1e-9 over
        mixed prefill lengths and many steps."""
        rng = np.random.default_rng(47)
        rt = dict(
            weight_bits=4, kv_bits=None, backend="lut-blocked",
            max_seq_len=64, kv_block_size=8,
        )
        fused = DecoderModel(FUZZ, RuntimeConfig(**rt))
        oracle = DecoderModel(FUZZ, RuntimeConfig(fused_decode=False, **rt))
        assert fused.runtime.fused_decode
        nseq = 4
        caches_f = [fused.new_caches() for _ in range(nseq)]
        caches_o = [oracle.new_caches() for _ in range(nseq)]
        for s in range(nseq):
            prompt = rng.integers(0, FUZZ.vocab, size=int(rng.integers(1, 24)))
            fused.prefill(prompt, caches_f[s])
            oracle.prefill(prompt, caches_o[s])
        for _ in range(12):
            tokens = rng.integers(0, FUZZ.vocab, size=nseq)
            got = fused.decode_batch(tokens, caches_f)
            want = oracle.decode_batch(tokens, caches_o)
            np.testing.assert_allclose(got, want, atol=1e-9)
