"""Property fuzz for the KV rollback: ``append`` → ``truncate_rows``
round-trips leave the pool bit-equal to one that never appended.

Two pools are driven through an *identical* seeded history — multi-cache
appends with token tracking, prefix adoption (shared blocks + CoW),
releases (parked and scrubbed blocks, freed-block reuse). Then the test
pool appends ``kept + dropped`` extra rows to a victim cache and rolls
``dropped`` back, while the oracle pool appends only ``kept``. Every
piece of pool state — float slabs, K codes/scales, K/V plan arenas,
fill, refcounts, free-list *order*, prefix index, parked set, stats —
must match bit-for-bit, and both pools must keep evolving identically
afterwards. This is the invariant speculative decoding's rejected-draft
rollback stands on.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.runtime.paging import BlockAllocator, PagedLayerCache

KV_HEADS = 2
HEAD_DIM = 8
BLOCK = 8
SEEDS = range(10)

#: Wall-clock timers are excluded from the bit-equality diff; every
#: counting stat must restore exactly.
TIMER_STATS = ("k_plan_s", "v_quant_s")


def _make_pool(bits):
    return BlockAllocator(
        KV_HEADS, HEAD_DIM, block_size=BLOCK, num_blocks=64, bits=bits
    )


def _rows(rng, t):
    return (
        rng.normal(size=(t, KV_HEADS, HEAD_DIM)),
        rng.normal(size=(t, KV_HEADS, HEAD_DIM)),
    )


def assert_pools_bit_equal(a: BlockAllocator, b: BlockAllocator) -> None:
    assert a.capacity == b.capacity
    names = a._FLOAT_ARRAYS + (a._QUANT_ARRAYS if a.bits is not None else ())
    for name in names:
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )
    assert a._free == b._free, "free-list order must restore exactly"
    assert a._in_use == b._in_use
    assert a._ever_used == b._ever_used
    assert a._alloc_first_use == b._alloc_first_use
    np.testing.assert_array_equal(a._fill, b._fill)
    np.testing.assert_array_equal(a._refcount, b._refcount)
    assert a._prefix_index == b._prefix_index
    assert a._block_key == b._block_key
    assert a._block_tokens == b._block_tokens
    assert list(a._cached_free) == list(b._cached_free), "LRU park order"
    for key in a.stats:
        if key in TIMER_STATS:
            continue
        assert a.stats[key] == b.stats[key], f"stats[{key!r}]"


def assert_lazy_state_equal(a: BlockAllocator, b: BlockAllocator) -> None:
    """Materialize the lazy per-block plans/caches on both pools and
    compare contents (dict *presence* may differ — rollback drops
    entries the oracle still holds; they must rebuild bit-identically).
    Mutates plan-work stats, so call after the stats diff."""
    if a.bits is None:
        return
    for bid in sorted(a._in_use | set(a._cached_free)):
        for pa, pb in zip(a.k_plans(bid), b.k_plans(bid)):
            np.testing.assert_array_equal(pa.dequantized, pb.dequantized)
            np.testing.assert_array_equal(pa.scale_gn, pb.scale_gn)
            np.testing.assert_array_equal(pa.zero_gn, pb.zero_gn)
        qa, pla = a.v_quantized(bid)
        qb, plb = b.v_quantized(bid)
        for wa, wb in zip(qa, qb):
            np.testing.assert_array_equal(wa.codes, wb.codes)
            np.testing.assert_array_equal(wa.scale, wb.scale)
            np.testing.assert_array_equal(wa.zero_point, wb.zero_point)
        for pa, pb in zip(pla, plb):
            np.testing.assert_array_equal(pa.dequantized, pb.dequantized)


def assert_caches_equal(a: PagedLayerCache, b: PagedLayerCache) -> None:
    assert a.block_ids == b.block_ids
    assert a.length == b.length
    assert a._tokens == b._tokens
    assert a._chain == b._chain


class _MirroredPools:
    """Drive two pools through one op stream; burst+rollback on `test`
    only, `kept`-row append on `oracle`."""

    def __init__(self, bits, seed):
        self.rng = np.random.default_rng(seed)
        self.test = _make_pool(bits)
        self.oracle = _make_pool(bits)
        self.caches: list[tuple[PagedLayerCache, PagedLayerCache]] = []
        self.next_token = 0

    def new_cache(self, layer=0):
        pair = (
            PagedLayerCache(self.test, layer=layer),
            PagedLayerCache(self.oracle, layer=layer),
        )
        self.caches.append(pair)
        return pair

    def append(self, pair, t, tracked=True):
        state = self.rng.bit_generator.state
        tokens = np.arange(self.next_token, self.next_token + t)
        self.next_token += t
        for cache in pair:
            rng = np.random.default_rng()
            rng.bit_generator.state = state
            k, v = _rows(rng, t)
            cache.append(k, v, token_ids=tokens if tracked else None)

    def adopt_clone(self, pair, upto):
        """New cache pair adopting the first *upto* tokens of *pair* —
        produces shared blocks (and CoW on the next append)."""
        src_test, _ = pair
        tokens = src_test._tokens[:upto]
        chain_t = self.test.match_prefix(0, tokens)
        chain_o = self.oracle.match_prefix(0, tokens)
        covered = sum(f for _, f in chain_t)
        assert covered == sum(f for _, f in chain_o)
        if covered == 0:
            return None
        new_t, new_o = self.new_cache()
        new_t.adopt_prefix(chain_t, tokens[:covered])
        new_o.adopt_prefix(chain_o, tokens[:covered])
        return (new_t, new_o)

    def release(self, pair):
        pair[0].release()
        pair[1].release()
        self.caches.remove(pair)

    def common_history(self, steps=8):
        for _ in range(steps):
            roll = self.rng.random()
            if roll < 0.5 or not self.caches:
                if len(self.caches) < 4:
                    pair = self.new_cache()
                    self.append(pair, int(self.rng.integers(1, 2 * BLOCK)))
                else:
                    pair = self.caches[
                        int(self.rng.integers(len(self.caches)))
                    ]
                    self.append(pair, int(self.rng.integers(1, BLOCK)))
            elif roll < 0.7 and len(self.caches) > 1:
                self.release(
                    self.caches[int(self.rng.integers(len(self.caches)))]
                )
            else:
                src = self.caches[int(self.rng.integers(len(self.caches)))]
                if src[0].length > 1:
                    upto = int(self.rng.integers(1, src[0].length + 1))
                    self.adopt_clone(src, upto)

    def burst_and_rollback(self):
        """The property under test, on a random victim."""
        candidates = [p for p in self.caches if p[0].length >= 1]
        if not candidates:
            pair = self.new_cache()
            self.append(pair, int(self.rng.integers(1, BLOCK)))
            candidates = [pair]
        victim_t, victim_o = candidates[
            int(self.rng.integers(len(candidates)))
        ]
        trailing = victim_t.block_ids[-1]
        cow_pending = (
            self.test.refcount(trailing) > 1
            and victim_t.length % BLOCK != 0
        )
        kept = int(self.rng.integers(1 if cow_pending else 0, 4))
        dropped = int(self.rng.integers(1, 2 * BLOCK))
        # Keep the round-trip within current storage: a burst that grew
        # the pool (or evicted a parked block) is not undoable and the
        # engine's speculative step guards headroom the same way.
        need = -(-(victim_t.length % BLOCK + kept + dropped) // BLOCK)
        assert len(self.test._free) >= need

        state = self.rng.bit_generator.state
        tokens = np.arange(self.next_token, self.next_token + kept + dropped)
        self.next_token += kept + dropped
        rng_t = np.random.default_rng()
        rng_t.bit_generator.state = state
        k, v = _rows(rng_t, kept + dropped)
        row_by_row = self.rng.random() < 0.5
        if row_by_row:
            for i in range(kept + dropped):
                victim_t.append(k[i], v[i], token_ids=tokens[i: i + 1])
        else:
            victim_t.append(k, v, token_ids=tokens)
        victim_t.truncate_rows(dropped)
        if kept:
            victim_o.append(k[:kept], v[:kept], token_ids=tokens[:kept])
        return victim_t, victim_o


@pytest.mark.parametrize("bits", [4, None], ids=["int4", "float"])
class TestTruncateRoundTripFuzz:
    def test_pool_bit_equal_to_never_appended(self, bits):
        for seed in SEEDS:
            world = _MirroredPools(bits, seed)
            world.common_history()
            vt, vo = world.burst_and_rollback()
            assert_caches_equal(vt, vo)
            assert_pools_bit_equal(world.test, world.oracle)

    def test_pools_keep_evolving_identically_after_rollback(self, bits):
        for seed in SEEDS:
            world = _MirroredPools(bits, seed)
            world.common_history(steps=5)
            world.burst_and_rollback()
            world.common_history(steps=5)
            world.burst_and_rollback()
            assert_pools_bit_equal(world.test, world.oracle)
            for ct, co in world.caches:
                assert_caches_equal(ct, co)
            assert_lazy_state_equal(world.test, world.oracle)


class TestTruncateContracts:
    def test_full_rollback_restores_virgin_pool(self):
        pool = _make_pool(4)
        virgin = _make_pool(4)
        cache = PagedLayerCache(pool, layer=0)
        rng = np.random.default_rng(0)
        k, v = _rows(rng, 3 * BLOCK - 2)
        cache.append(k, v, token_ids=np.arange(3 * BLOCK - 2))
        cache.truncate_rows(3 * BLOCK - 2)
        assert cache.length == 0 and cache.block_ids == []
        assert_pools_bit_equal(pool, virgin)

    def test_partial_block_truncate_restores_registration(self):
        pool = _make_pool(4)
        cache = PagedLayerCache(pool, layer=0)
        rng = np.random.default_rng(1)
        k, v = _rows(rng, 5)
        cache.append(k, v, token_ids=np.arange(5))
        key_before = dict(pool._block_key)
        index_before = dict(pool._prefix_index)
        k2, v2 = _rows(rng, 2)
        cache.append(k2, v2, token_ids=np.arange(5, 7))
        cache.truncate_rows(2)
        assert pool._block_key == key_before
        assert pool._prefix_index == index_before
        # The restored entry is adoptable again.
        assert pool.match_prefix(0, list(range(5)))

    def test_truncate_more_than_length_rejected(self):
        pool = _make_pool(4)
        cache = PagedLayerCache(pool)
        k, v = _rows(np.random.default_rng(2), 3)
        cache.append(k, v)
        with pytest.raises(ServingError):
            cache.truncate_rows(4)
        with pytest.raises(ServingError):
            cache.truncate_rows(-1)
        cache.truncate_rows(0)  # no-op
        assert cache.length == 3

    def test_shared_trailing_block_refused(self):
        pool = _make_pool(4)
        a = PagedLayerCache(pool, layer=0)
        rng = np.random.default_rng(3)
        k, v = _rows(rng, 5)
        a.append(k, v, token_ids=np.arange(5))
        chain = pool.match_prefix(0, list(range(5)))
        b = PagedLayerCache(pool, layer=0)
        b.adopt_prefix(chain, list(range(5)))
        with pytest.raises(ServingError):
            a.truncate_rows(1)

    def test_pool_level_truncate_validation(self):
        pool = _make_pool(4)
        bid = pool.allocate()
        k, v = _rows(np.random.default_rng(4), 3)
        pool.write_rows(bid, k, v)
        with pytest.raises(ServingError):
            pool.truncate_rows(bid, 4)
        with pytest.raises(ServingError):
            pool.truncate_rows(bid, -1)
        with pytest.raises(ServingError):
            pool.truncate_rows(99, 0)

    def test_append_rows_then_truncate_round_trip(self):
        # The batched-append path (one row into each of several
        # distinct blocks) rolls back the same way.
        pool = _make_pool(4)
        virgin = _make_pool(4)
        rng = np.random.default_rng(5)
        bids = [pool.allocate() for _ in range(3)]
        vids = [virgin.allocate() for _ in range(3)]
        k, v = _rows(rng, 3)
        seed_k, seed_v = _rows(rng, 3)
        pool.write_rows(bids[0], seed_k, seed_v)
        virgin.write_rows(vids[0], seed_k, seed_v)
        pool.append_rows(bids, k, v)
        for bid in bids:
            pool.truncate_rows(bid, int(pool._fill[bid]) - 1)
        assert_pools_bit_equal(pool, virgin)
