"""Swap-to-host preemption: spill/restore is output-invisible.

A preempted sequence whose cached context clears
``RuntimeConfig.swap_threshold_tokens`` serializes its KV blocks
(float slabs, quant codes, fill metadata) instead of collapsing to a
recompute-on-resume record; resumption restores the slabs into fresh
pool blocks and runs **one** decode step. If the spill format captures
exactly the state copy-on-write clones (frozen K plans rebuild
lazily), the restored engine cannot be distinguished from the
unpreempted one — so token streams must be bit-identical to both the
unpreempted run and the recompute-on-resume path on the
batch-invariant LUT backends.

Pinned here: a seeded random-schedule differential fuzz with forced
preemptions (swap vs recompute vs untouched), threshold gating,
mid-prefill exclusion, the pool-pressure fallback to recompute, spill
accounting, the block serialize/restore round-trip itself, and the
swap-aware resume-headroom arithmetic.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    PagedLayerCache,
    Request,
    RuntimeConfig,
    SamplingParams,
    ServingEngine,
)
from repro.runtime.paging import BlockAllocator, spill_nbytes
from repro.runtime.scheduler import resume_blocks_needed, worst_case_blocks

LUT_BACKENDS = ("lut-naive", "lut-blocked")

FUZZ = ModelConfig(
    "swap-fuzz", hidden=32, ffn=48, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)


def _random_requests(rng):
    shared = [
        int(t)
        for t in rng.integers(0, FUZZ.vocab, size=int(rng.integers(6, 16)))
    ]
    requests = []
    for i in range(int(rng.integers(3, 7))):
        if rng.random() < 0.5:
            take = int(rng.integers(2, len(shared) + 1))
            prompt = tuple(shared[:take])
            if rng.random() < 0.5:
                prompt = prompt + tuple(
                    int(t)
                    for t in rng.integers(0, FUZZ.vocab,
                                          size=int(rng.integers(1, 6)))
                )
        else:
            prompt = tuple(
                int(t)
                for t in rng.integers(0, FUZZ.vocab,
                                      size=int(rng.integers(1, 13)))
            )
        top_k = None if rng.random() < 0.6 else int(rng.integers(1, 6))
        requests.append(Request(
            request_id=f"r{i}",
            prompt=prompt,
            max_new_tokens=int(rng.integers(4, 17)),
            sampling=SamplingParams(top_k=top_k, seed=i),
            priority=int(rng.integers(0, 3)),
        ))
    return requests


def _run_engine(requests, backend, *, kv_bits=4, swap_threshold=None,
                preempt_steps=(), pool_blocks=64, block_size=8):
    """Run one engine, force-preempting an active sequence at each
    step index in *preempt_steps* (the engine-internal seam the fuzz
    uses to make eviction deterministic)."""
    model = DecoderModel(FUZZ, RuntimeConfig(
        weight_bits=4, kv_bits=kv_bits, backend=backend, max_seq_len=96,
        kv_block_size=block_size, kv_pool_blocks=pool_blocks,
        prefix_sharing=True, swap_threshold_tokens=swap_threshold,
    ))
    engine = ServingEngine(model, max_batch_size=len(requests))
    for request in requests:
        engine.submit(request)
    step = 0
    while engine.has_work:
        engine.step()
        step += 1
        if step in preempt_steps and engine.active:
            engine._preempt(engine.active[0])
    results, stats = engine.run()
    return {r.request_id: tuple(r.tokens) for r in results}, stats, engine


class TestSwapFuzz:
    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_swap_resume_streams_bit_identical(self, backend):
        """Random schedules with forced preemptions: unpreempted ==
        recompute-on-resume == swap-resume, under prefix sharing and
        bounded pools. The generator must actually exercise swaps."""
        swaps = swap_resumes = shared = 0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            requests = _random_requests(rng)
            preempt_steps = set(
                int(s) for s in rng.integers(2, 14,
                                             size=int(rng.integers(1, 4)))
            )
            base, _, _ = _run_engine(requests, backend)
            rec, rec_stats, _ = _run_engine(
                requests, backend, preempt_steps=preempt_steps
            )
            swp, swp_stats, engine = _run_engine(
                requests, backend, swap_threshold=1,
                preempt_steps=preempt_steps,
            )
            assert rec == base, f"seed {seed}: recompute diverged"
            assert swp == base, f"seed {seed}: swap-resume diverged"
            assert rec_stats.swaps == 0
            swaps += swp_stats.swaps
            swap_resumes += swp_stats.swap_resumes
            shared += engine.model.kv_pool.stats["shared"]
        assert swaps > 0, "no schedule spilled a sequence"
        assert swap_resumes > 0, "no schedule resumed from a spill"
        assert shared > 0, "no schedule shared a prefix block"

    def test_float_kv_swap_identical(self):
        """kv_bits=None: the spill carries only the float slabs and
        restore still round-trips exactly."""
        requests = _random_requests(np.random.default_rng(3))
        base, _, _ = _run_engine(requests, "lut-blocked", kv_bits=None)
        swp, stats, _ = _run_engine(
            requests, "lut-blocked", kv_bits=None, swap_threshold=1,
            preempt_steps={3, 7},
        )
        assert swp == base
        assert stats.swaps > 0


class TestSwapGating:
    def test_threshold_gates_short_contexts(self):
        """Contexts below the threshold keep recompute-on-resume."""
        requests = _random_requests(np.random.default_rng(1))
        _, stats, _ = _run_engine(
            requests, "lut-naive", swap_threshold=10_000,
            preempt_steps={3, 6},
        )
        assert stats.preemptions > 0
        assert stats.swaps == 0
        assert stats.swap_resumes == 0

    def test_default_is_off(self):
        requests = _random_requests(np.random.default_rng(2))
        _, stats, _ = _run_engine(
            requests, "lut-naive", preempt_steps={4}
        )
        assert stats.preemptions > 0
        assert stats.swaps == 0

    def test_mid_prefill_never_swaps(self):
        """A sequence evicted before its first generated token has no
        decode state to preserve — it must not spill."""
        model = DecoderModel(FUZZ, RuntimeConfig(
            weight_bits=4, kv_bits=8, backend="lut-naive", max_seq_len=96,
            kv_block_size=8, prefill_chunk=4, swap_threshold_tokens=1,
        ))
        engine = ServingEngine(model, max_batch_size=2)
        engine.submit(Request(
            "long", tuple(range(1, 33)), max_new_tokens=4,
            sampling=SamplingParams(seed=0),
        ))
        engine.step()  # one prefill chunk: mid-prefill, nothing sampled
        assert engine.prefilling
        engine._preempt(engine.prefilling[0])
        assert engine._swaps == 0
        assert engine.preempted[0].swap_record is None
        results, stats = engine.run()
        assert results[0].finish_reason == "length"
        assert stats.swaps == 0

    def test_swap_accounting(self):
        """swaps/swap_resumes/swap_bytes reach EngineStats and the
        spill size matches the serialized payloads."""
        requests = _random_requests(np.random.default_rng(4))
        _, stats, _ = _run_engine(
            requests, "lut-naive", swap_threshold=1, preempt_steps={5}
        )
        assert stats.swaps >= 1
        assert stats.swap_resumes >= 1
        assert stats.swap_bytes > 0
        assert stats.resumes >= stats.swap_resumes


class TestSwapFallback:
    def test_restore_failure_falls_back_to_recompute(self, monkeypatch):
        """A restore the pool cannot host (ServingError) must release
        what it rebuilt and drop to recompute-on-resume — still
        bit-identical, never an engine error."""
        requests = _random_requests(np.random.default_rng(6))
        base, _, _ = _run_engine(requests, "lut-naive")

        original = PagedLayerCache.restore.__func__
        calls = {"n": 0}

        def failing_restore(cls, pool, payload):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ServingError("injected: pool cannot host restore")
            return original(cls, pool, payload)

        monkeypatch.setattr(
            PagedLayerCache, "restore", classmethod(failing_restore)
        )
        swp, stats, engine = _run_engine(
            requests, "lut-naive", swap_threshold=1, preempt_steps={4, 8}
        )
        assert calls["n"] > 0, "fallback path never exercised"
        assert swp == base
        assert stats.swaps > stats.swap_resumes, (
            "the failed restore must not count as a swap resume"
        )
        pool = engine.model.kv_pool
        assert pool.used_blocks == 0, "fallback leaked pool blocks"


class TestBlockSerde:
    def _pool_and_cache(self, kv_bits=8):
        pool = BlockAllocator(
            kv_heads=2, head_dim=8, block_size=4, num_blocks=32,
            bits=kv_bits,
        )
        cache = PagedLayerCache(pool, layer=0)
        rng = np.random.default_rng(0)
        for t in range(10):
            cache.append(
                rng.standard_normal((1, 2, 8)),
                rng.standard_normal((1, 2, 8)),
                token_ids=[t],
            )
        return pool, cache

    def test_round_trip_restores_attention_state(self):
        pool, cache = self._pool_and_cache()
        payload = cache.serialize()
        assert spill_nbytes(payload) > 0
        restored = PagedLayerCache.restore(pool, payload)
        assert restored.length == cache.length
        np.testing.assert_array_equal(restored.k_view(), cache.k_view())
        np.testing.assert_array_equal(restored.v_view(), cache.v_view())
        assert restored.block_ids != cache.block_ids
        for orig, new in zip(cache.block_ids, restored.block_ids):
            for name in pool._QUANT_ARRAYS:
                np.testing.assert_array_equal(
                    getattr(pool, name)[orig], getattr(pool, name)[new],
                    err_msg=name,
                )

    def test_restore_reindexes_prefix_chain(self):
        """Restored full blocks re-enter the prefix index, so later
        prompts can adopt a restored sequence's prefix — even in a
        pool that never saw the original appends."""
        pool, cache = self._pool_and_cache()
        payload = cache.serialize()
        other = BlockAllocator(
            kv_heads=2, head_dim=8, block_size=4, num_blocks=32, bits=8,
        )
        restored = PagedLayerCache.restore(other, payload)
        match = other.match_prefix(0, list(range(10)))
        assert match, "restored chain is not matchable"
        assert match[0][0] in restored.block_ids
        covered = sum(fill for _bid, fill in match)
        assert covered == 10

    def test_failed_restore_leaks_nothing(self):
        pool, cache = self._pool_and_cache()
        payload = cache.serialize()
        cache.release()
        small = BlockAllocator(
            kv_heads=2, head_dim=8, block_size=4, num_blocks=1, bits=8,
            prefix_cache_blocks=0,
        )
        with pytest.raises(ServingError):
            PagedLayerCache.restore(small, payload)
        assert small.used_blocks == 0
        assert small.free_blocks == 1

    def test_serialize_released_cache_raises(self):
        pool, cache = self._pool_and_cache()
        cache.release()
        with pytest.raises(ServingError):
            cache.serialize()

    def test_float_pool_round_trip(self):
        pool, cache = self._pool_and_cache(kv_bits=None)
        restored = PagedLayerCache.restore(pool, cache.serialize())
        np.testing.assert_array_equal(restored.k_view(), cache.k_view())
        np.testing.assert_array_equal(restored.v_view(), cache.v_view())


class TestResumeHeadroom:
    def test_swapped_resume_is_undiscounted(self):
        needed = worst_case_blocks(20, 10, 8, 2)
        assert resume_blocks_needed(20, 10, 8, 2, live_shareable=3) == (
            needed - 3
        )
        assert resume_blocks_needed(
            20, 10, 8, 2, live_shareable=3, swapped=True
        ) == needed

    def test_discount_never_goes_negative(self):
        assert resume_blocks_needed(2, 1, 8, 1, live_shareable=99) == 0
