"""Trace-driven workloads: seeded generation, JSON round-trip, arrival
processes, budget resolution, replay determinism, SLO evaluation."""

import json
from dataclasses import dataclass

import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    ARRIVALS,
    DecoderModel,
    RuntimeConfig,
    ServingEngine,
    SloClass,
    Trace,
    WorkloadSpec,
    evaluate_slo,
    generate_trace,
    replay_trace,
)

TINY = ModelConfig(
    "wl-tiny", hidden=32, ffn=64, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)

INTERACTIVE = SloClass(
    "interactive", weight=3.0, priority=2,
    ttft_budget_steps=10.0, tpot_budget_steps=6.0,
    prompt_mu=1.6, prompt_sigma=0.4, prompt_min=2, prompt_max=8,
    output_buckets=(2, 4), output_zipf_a=1.2,
)
BATCH = SloClass(
    "batch", weight=1.0, priority=0,
    prompt_mu=2.2, prompt_sigma=0.3, prompt_min=4, prompt_max=12,
    output_buckets=(4, 8), output_zipf_a=1.0,
)


def _spec(**kwargs):
    defaults = dict(
        name="wl-test", classes=(INTERACTIVE, BATCH),
        arrival="poisson", rate_rps=4.0, duration_s=3.0,
        tenants=2, vocab=TINY.vocab, max_total_tokens=20,
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestValidation:
    def test_unknown_arrival_rejected(self):
        with pytest.raises(ServingError):
            _spec(arrival="lognormal")
        assert set(ARRIVALS) == {"poisson", "burst"}

    def test_empty_classes_rejected(self):
        with pytest.raises(ServingError):
            _spec(classes=())

    def test_bad_class_parameters_rejected(self):
        with pytest.raises(ServingError):
            SloClass("zero-weight", weight=0.0)
        with pytest.raises(ServingError):
            SloClass("no-buckets", output_buckets=())
        with pytest.raises(ServingError):
            SloClass("bad-bounds", prompt_min=9, prompt_max=4)

    def test_bad_burst_parameters_rejected(self):
        with pytest.raises(ServingError):
            _spec(arrival="burst", burst_rate_rps=0.0)
        with pytest.raises(ServingError):
            _spec(arrival="burst", on_s=0.0)
        with pytest.raises(ServingError):
            _spec(tenants=0)


class TestGeneration:
    def test_same_seed_same_trace(self):
        spec = _spec()
        assert generate_trace(spec, 7) == generate_trace(spec, 7)
        assert generate_trace(spec, 7) != generate_trace(spec, 8)

    def test_entries_well_formed(self):
        spec = _spec()
        trace = generate_trace(spec, 11)
        assert trace.entries, "a 4 rps x 3 s trace must not be empty"
        arrivals = [e.arrival_s for e in trace.entries]
        assert arrivals == sorted(arrivals)
        assert all(0.0 < a < spec.duration_s for a in arrivals)
        ids = [e.request_id for e in trace.entries]
        assert len(set(ids)) == len(ids)
        seeds = [e.seed for e in trace.entries]
        assert len(set(seeds)) == len(seeds)
        classes = {c.name: c for c in spec.classes}
        for entry in trace.entries:
            cls = classes[entry.slo_class]
            assert 0 <= entry.tenant < spec.tenants
            assert len(entry.prompt) <= cls.prompt_max
            assert entry.max_new_tokens in cls.output_buckets
            assert (
                len(entry.prompt) + entry.max_new_tokens
                <= spec.max_total_tokens
            )
            assert all(0 <= t < spec.vocab for t in entry.prompt)
            assert entry.priority == cls.priority

    def test_zero_rate_poisson_is_empty(self):
        trace = generate_trace(_spec(rate_rps=0.0), 3)
        assert trace.entries == ()

    def test_weighted_class_mix(self):
        # 3:1 weights over a long trace: interactive must dominate.
        trace = generate_trace(_spec(duration_s=30.0), 5)
        kinds = [e.slo_class for e in trace.entries]
        assert kinds.count("interactive") > kinds.count("batch")

    def test_burst_arrivals_concentrate_in_on_windows(self):
        spec = _spec(
            arrival="burst", rate_rps=1.0, burst_rate_rps=20.0,
            on_s=1.0, off_s=2.0, duration_s=12.0,
        )
        trace = generate_trace(spec, 9)
        cycle = spec.on_s + spec.off_s
        on = sum(
            1 for e in trace.entries if e.arrival_s % cycle < spec.on_s
        )
        off = len(trace.entries) - on
        # On-windows are 1/3 of the time at 20x the rate.
        assert on > 2 * max(1, off)
        assert generate_trace(spec, 9) == trace


class TestJsonRoundTrip:
    def test_trace_round_trips_bit_for_bit(self):
        trace = generate_trace(_spec(arrival="burst"), 13)
        clone = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert clone == trace
        assert clone.spec == trace.spec
        assert clone.entries == trace.entries

    def test_class_and_spec_round_trip(self):
        assert SloClass.from_dict(INTERACTIVE.to_dict()) == INTERACTIVE
        assert SloClass.from_dict(BATCH.to_dict()) == BATCH
        spec = _spec()
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec


class TestBudgetResolution:
    def test_budgets_scale_with_step_ms(self):
        slo = INTERACTIVE.slo(step_ms=2.5)
        assert slo.ttft_ms == pytest.approx(25.0)
        assert slo.tpot_ms == pytest.approx(15.0)

    def test_unresolved_and_best_effort_are_none(self):
        assert INTERACTIVE.slo(None) is None
        assert BATCH.slo(2.5) is None

    def test_requests_carry_resolved_slos(self):
        trace = generate_trace(_spec(), 17)
        resolved = trace.requests(step_ms=2.0)
        for entry, request in zip(trace.entries, resolved):
            assert request.request_id == entry.request_id
            assert request.prompt == entry.prompt
            if entry.slo_class == "interactive":
                assert request.slo.ttft_ms == pytest.approx(20.0)
            else:
                assert request.slo is None
        # step_ms=None: every request best-effort (baseline replay).
        assert all(r.slo is None for r in trace.requests(None))


@dataclass
class _FakeResult:
    request_id: str
    tokens: tuple
    first_token_ms: float
    tpot_ms: float


def _fake_results(trace, ttft_ms=1.0, tpot_ms=1.0):
    return [
        _FakeResult(e.request_id, tuple(range(e.max_new_tokens)),
                    ttft_ms, tpot_ms)
        for e in trace.entries
    ]


class TestEvaluateSlo:
    def test_missing_results_raise(self):
        trace = generate_trace(_spec(), 19)
        with pytest.raises(ServingError):
            evaluate_slo(trace, _fake_results(trace)[:-1], step_ms=1.0)

    def test_on_budget_requests_earn_goodput_best_effort_never_does(self):
        trace = generate_trace(_spec(), 19)
        report = evaluate_slo(trace, _fake_results(trace), step_ms=1.0)
        interactive = report["classes"]["interactive"]
        batch = report["classes"]["batch"]
        assert interactive["met"] == interactive["requests"]
        assert batch["met"] == 0 and batch["goodput_tokens"] == 0
        assert report["goodput_tokens"] == interactive["goodput_tokens"]
        assert report["total_tokens"] > report["goodput_tokens"] > 0
        assert 0.0 < report["goodput_fraction"] < 1.0

    def test_blown_ttft_loses_goodput(self):
        trace = generate_trace(_spec(), 19)
        # interactive TTFT budget = 10 steps x 1 ms; 50 ms blows it.
        report = evaluate_slo(
            trace, _fake_results(trace, ttft_ms=50.0), step_ms=1.0,
        )
        assert report["goodput_tokens"] == 0
        assert report["classes"]["interactive"]["met"] == 0

    def test_percentiles_and_fairness_reported(self):
        trace = generate_trace(_spec(), 19)
        report = evaluate_slo(trace, _fake_results(trace), step_ms=1.0)
        ttft = report["classes"]["interactive"]["ttft_ms"]
        assert ttft["p50"] == ttft["p95"] == ttft["p99"] == 1.0
        fairness = report["fairness"]
        per_tenant = fairness["per_tenant_tokens"]
        assert set(per_tenant) == {"0", "1"}
        counts = list(per_tenant.values())
        assert fairness["max_min_ratio"] == pytest.approx(
            max(counts) / max(1, min(counts))
        )


class TestEngineReplay:
    def _engine(self, scheduler="fifo"):
        model = DecoderModel(
            TINY, RuntimeConfig(weight_bits=4, kv_bits=4, max_seq_len=32),
        )
        return ServingEngine(model, max_batch_size=2, scheduler=scheduler)

    def test_replay_is_deterministic_and_scheduler_transparent(self):
        trace = generate_trace(
            _spec(rate_rps=3.0, duration_s=2.0), 23,
        )

        def streams(scheduler):
            results, _ = replay_trace(
                self._engine(scheduler), trace, steps_per_s=10.0,
                step_ms=1.0,
            )
            assert len(results) == len(trace.entries)
            return {r.request_id: tuple(r.tokens) for r in results}

        first = streams("fifo")
        assert streams("fifo") == first          # replay x2 bit-identical
        assert streams("slo-aware") == first     # policy transparent

    def test_feed_paces_submissions_by_virtual_clock(self):
        trace = generate_trace(_spec(rate_rps=2.0, duration_s=2.0), 29)
        engine = self._engine()
        results, stats = replay_trace(
            engine, trace, steps_per_s=50.0, step_ms=1.0,
        )
        # Open loop: arrivals spread over the run, so the engine must
        # have stepped at least as far as the last arrival's step.
        last_step = int(trace.entries[-1].arrival_s * 50.0)
        assert stats.decode_steps + stats.preemptions >= 1
        assert len(results) == len(trace.entries)
        assert last_step > 0
