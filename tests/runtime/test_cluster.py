"""Cluster-level parity: N routed workers == one engine, bit for bit.

The router's design invariant is that placement is output-invisible:
every worker is an identically-configured, identically-seeded engine,
the LUT backends are batch-invariant, and preemption/sharing/swap/
speculation are individually output-transparent — so a request's token
stream cannot depend on which replica runs it or what else shares that
replica. Pinned here with a seeded random-schedule differential fuzz
(every routing policy x worker counts x transports, bounded pools with
swap thresholds, speculative decoding), plus the async streaming
surface (incremental iteration, backpressure, duplicate/oversize
rejection), the worker-handle event protocol, and the wire-format
serde round-trips.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    AsyncRouter,
    DecoderModel,
    InlineWorkerHandle,
    Request,
    RequestResult,
    RuntimeConfig,
    SamplingParams,
    ServingEngine,
    SpeculativeConfig,
)

FUZZ = ModelConfig(
    "cluster-fuzz", hidden=32, ffn=48, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)

POLICIES = ("round-robin", "least-loaded", "prefix-aware")


def _random_requests(rng, n_lo=4, n_hi=9):
    shared = [
        int(t)
        for t in rng.integers(0, FUZZ.vocab, size=int(rng.integers(6, 16)))
    ]
    requests = []
    for i in range(int(rng.integers(n_lo, n_hi))):
        if rng.random() < 0.5:
            take = int(rng.integers(2, len(shared) + 1))
            prompt = tuple(shared[:take])
            if rng.random() < 0.5:
                prompt = prompt + tuple(
                    int(t)
                    for t in rng.integers(0, FUZZ.vocab,
                                          size=int(rng.integers(1, 6)))
                )
        else:
            prompt = tuple(
                int(t)
                for t in rng.integers(0, FUZZ.vocab,
                                      size=int(rng.integers(1, 13)))
            )
        top_k = None if rng.random() < 0.6 else int(rng.integers(1, 6))
        requests.append(Request(
            request_id=f"r{i}",
            prompt=prompt,
            max_new_tokens=int(rng.integers(4, 17)),
            sampling=SamplingParams(top_k=top_k, seed=i),
            priority=int(rng.integers(0, 3)),
        ))
    return requests


def _factory(backend="lut-naive", *, pool_blocks=None, swap=None,
             spec=None, max_batch=4):
    def make():
        model = DecoderModel(FUZZ, RuntimeConfig(
            weight_bits=4, kv_bits=4, backend=backend, max_seq_len=96,
            kv_block_size=8, kv_pool_blocks=pool_blocks,
            prefix_sharing=True, swap_threshold_tokens=swap,
            speculative=spec,
        ))
        return ServingEngine(model, max_batch_size=max_batch)
    return make


def _single_engine_streams(factory, requests):
    engine = factory()
    for request in requests:
        engine.submit(request)
    results, _ = engine.run()
    return {r.request_id: tuple(r.tokens) for r in results}


class TestClusterParityFuzz:
    @pytest.mark.parametrize("backend", ("lut-naive", "lut-blocked"))
    def test_routed_streams_match_single_engine(self, backend):
        """Random schedules x policies x worker counts: identical
        per-request token streams, inline transport (deterministic)."""
        for seed in range(5):
            rng = np.random.default_rng(seed)
            requests = _random_requests(rng)
            factory = _factory(backend)
            base = _single_engine_streams(factory, requests)
            policy = POLICIES[seed % len(POLICIES)]
            workers = int(rng.integers(1, 4))
            router = AsyncRouter(factory, workers=workers, routing=policy)
            results = router.run_sync(requests)
            got = {r.request_id: tuple(r.tokens) for r in results}
            assert got == base, (seed, policy, workers)
            assert router.stats().requests == len(requests)
            router.close()

    def test_parity_under_pressure_swap_and_spec(self):
        """Forced worker-side evictions (recompute *and* swap resume,
        ``swap_threshold_tokens=1``) plus speculative decoding still
        cannot change routed streams — preemption is output-transparent
        per worker, so the unpreempted single engine stays the oracle."""

        async def routed(requests, factory, policy, preempt_steps):
            router = AsyncRouter(factory, workers=2, routing=policy)
            streams = [await router.submit(r) for r in requests]
            step = 0
            while router.pending:
                await router._advance()
                step += 1
                if step in preempt_steps:
                    for handle in router.handles:
                        if handle.engine.active:
                            handle.engine._preempt(
                                handle.engine.active[0]
                            )
            for stream in streams:
                async for _token in stream:
                    pass
            stats = router.stats()
            router.close()
            return {
                s.request_id: tuple(s.result.tokens) for s in streams
            }, stats

        preemptions = swaps = 0
        for seed in (1, 3, 5, 7):
            rng = np.random.default_rng(seed)
            requests = _random_requests(rng)
            spec = SpeculativeConfig(k=2) if seed % 2 else None
            factory = _factory(
                "lut-blocked", pool_blocks=64, swap=1, spec=spec,
                max_batch=4,
            )
            base = _single_engine_streams(factory, requests)
            got, stats = asyncio.run(routed(
                requests, factory, POLICIES[seed % len(POLICIES)],
                {3, 6, 9},
            ))
            assert got == base, seed
            preemptions += stats.preemptions
            swaps += stats.swaps
        assert preemptions > 0, "no schedule forced an eviction"
        assert swaps > 0, "no schedule spilled a sequence"

    def test_thread_transport_matches_inline(self):
        """Thread scheduling may reorder events, never token content."""
        rng = np.random.default_rng(9)
        requests = _random_requests(rng)
        factory = _factory("lut-naive")
        base = _single_engine_streams(factory, requests)
        router = AsyncRouter(factory, workers=3, routing="prefix-aware",
                             transport="thread")
        try:
            results = router.run_sync(requests)
        finally:
            router.close()
        assert {r.request_id: tuple(r.tokens) for r in results} == base

    def test_prefix_aware_shares_more_than_round_robin(self):
        """On a shared-prefix workload, locality-aware placement must
        allocate strictly fewer pool blocks cluster-wide."""
        rng = np.random.default_rng(0)
        prefix = tuple(int(t) for t in rng.integers(0, FUZZ.vocab, 24))
        requests = [
            Request(f"s{i}",
                    prefix + tuple(
                        int(t) for t in rng.integers(0, FUZZ.vocab, 3)
                    ),
                    max_new_tokens=6,
                    sampling=SamplingParams(seed=i))
            for i in range(8)
        ]
        allocated = {}
        for policy in ("round-robin", "prefix-aware"):
            router = AsyncRouter(_factory("lut-naive"), workers=2,
                                 routing=policy)
            router.run_sync(requests)
            allocated[policy] = router.stats().blocks_allocated
            router.close()
        assert allocated["prefix-aware"] < allocated["round-robin"]


class TestAsyncSurface:
    def test_tokens_stream_incrementally(self):
        """Tokens must be observable before the request finishes."""

        async def scenario():
            router = AsyncRouter(_factory(), workers=1)
            request = Request("r0", (1, 2, 3), max_new_tokens=8,
                              sampling=SamplingParams(seed=0))
            stream = await router.submit(request)
            first = await stream.__anext__()
            assert stream.result is None, (
                "first token must arrive before completion"
            )
            rest = [t async for t in stream]
            assert stream.result is not None
            assert [first] + rest == stream.result.tokens
            router.close()

        asyncio.run(scenario())

    def test_backpressure_bounds_inflight(self):
        async def scenario():
            router = AsyncRouter(_factory(), workers=2, max_pending=2)
            requests = _random_requests(np.random.default_rng(2))
            peak = 0

            async def one(request):
                nonlocal peak
                stream = await router.submit(request)
                peak = max(peak, router.pending)
                async for _token in stream:
                    pass
                return stream.result

            results = await asyncio.gather(*(one(r) for r in requests))
            assert all(r is not None for r in results)
            assert peak <= 2
            router.close()

        asyncio.run(scenario())

    def test_run_sync_preserves_request_order(self):
        requests = _random_requests(np.random.default_rng(4))
        router = AsyncRouter(_factory(), workers=2)
        results = router.run_sync(requests)
        assert [r.request_id for r in results] == [
            r.request_id for r in requests
        ]
        router.close()

    def test_duplicate_id_rejected(self):
        async def scenario():
            router = AsyncRouter(_factory(), workers=2)
            request = Request("dup", (1, 2), max_new_tokens=2,
                              sampling=SamplingParams(seed=0))
            stream = await router.submit(request)
            with pytest.raises(ServingError, match="duplicate"):
                await router.submit(request)
            async for _token in stream:
                pass
            router.close()

        asyncio.run(scenario())

    def test_submit_after_close_rejected(self):
        router = AsyncRouter(_factory(), workers=1)
        router.close()
        with pytest.raises(ServingError, match="closed"):
            asyncio.run(router.submit(
                Request("r", (1,), max_new_tokens=1,
                        sampling=SamplingParams(seed=0))
            ))

    def test_constructor_validation(self):
        with pytest.raises(ServingError):
            AsyncRouter(_factory(), workers=0)
        with pytest.raises(ServingError):
            AsyncRouter(_factory(), workers=1, max_pending=0)
        with pytest.raises(ServingError):
            AsyncRouter(_factory(), workers=1, transport="carrier-pigeon")
        with pytest.raises(ServingError, match="unknown routing"):
            AsyncRouter(_factory(), workers=1, routing="best-fit")

    def test_oversize_request_error_reaches_stream(self):
        """An invalid submission surfaces as the request's own failure
        on the thread transport (inline raises synchronously)."""
        router = AsyncRouter(_factory(), workers=1)
        big = Request("big", tuple(range(1, 50)), max_new_tokens=90,
                      sampling=SamplingParams(seed=0))
        with pytest.raises(ServingError, match="max_seq_len"):
            router.run_sync([big])
        router.close()

        async def scenario():
            threaded = AsyncRouter(_factory(), workers=1,
                                   transport="thread")
            stream = await threaded.submit(big)
            with pytest.raises(ServingError, match="max_seq_len"):
                async for _token in stream:
                    pass
            threaded.close()

        asyncio.run(scenario())


class TestWorkerHandleProtocol:
    def test_inline_event_stream(self):
        handle = InlineWorkerHandle(_factory()())
        request = Request("r0", (1, 2, 3), max_new_tokens=4,
                          sampling=SamplingParams(seed=0))
        handle.submit(request.to_dict())
        events = []
        while not handle.idle():
            handle.pump()
            events.extend(handle.drain())
        kinds = [e["type"] for e in events]
        assert kinds.count("done") == 1
        assert kinds[-1] == "done"
        tokens = [e["token"] for e in events if e["type"] == "token"]
        result = RequestResult.from_dict(events[-1]["result"])
        assert tokens == result.tokens
        assert handle.summary()["requests"] == 1

    def test_inline_streams_survive_preemption(self):
        """A preempted sequence keeps its generated prefix; emitted
        token counts must never regress or duplicate."""
        engine = _factory(pool_blocks=64)()
        handle = InlineWorkerHandle(engine)
        request = Request("r0", (1, 2, 3), max_new_tokens=8,
                          sampling=SamplingParams(seed=0))
        handle.submit(request.to_dict())
        events = []
        steps = 0
        while not handle.idle():
            handle.pump()
            steps += 1
            if steps == 3 and engine.active:
                engine._preempt(engine.active[0])
            events.extend(handle.drain())
        tokens = [e["token"] for e in events if e["type"] == "token"]
        done = [e for e in events if e["type"] == "done"]
        assert tokens == RequestResult.from_dict(done[0]["result"]).tokens


class TestWireSerde:
    def test_sampling_round_trip(self):
        for params in (
            SamplingParams(),
            SamplingParams(top_k=5, temperature=0.7, seed=42),
        ):
            data = json.loads(json.dumps(params.to_dict()))
            assert SamplingParams.from_dict(data) == params

    def test_request_round_trip(self):
        request = Request(
            "req-1", (3, 1, 4, 1, 5), max_new_tokens=7,
            sampling=SamplingParams(top_k=2, temperature=1.5, seed=9),
            eos_token_id=0, priority=2,
        )
        data = json.loads(json.dumps(request.to_dict()))
        back = Request.from_dict(data)
        assert back == request
        assert isinstance(back.prompt, tuple)

    def test_request_result_round_trip(self):
        result = RequestResult(
            request_id="req-1", prompt=(1, 2, 3), tokens=[4, 5, 6],
            finish_reason="length", prefill_ms=1.5, first_token_ms=2.5,
            latency_ms=10.0, decode_steps=3, preemptions=1,
            tpot_ms=3.75, spec_accepted=2,
        )
        data = json.loads(json.dumps(result.to_dict()))
        back = RequestResult.from_dict(data)
        assert back == result
        assert isinstance(back.prompt, tuple)

    def test_engine_results_round_trip(self):
        engine = _factory()()
        engine.submit(Request("r0", (1, 2, 3), max_new_tokens=5,
                              sampling=SamplingParams(seed=0)))
        results, _ = engine.run()
        data = json.loads(json.dumps(results[0].to_dict()))
        assert RequestResult.from_dict(data) == results[0]
