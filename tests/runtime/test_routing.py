"""Routing policies, the shadow prefix index, and pool eviction seams.

The router predicts prefix-cache locality from token ids alone: a
:class:`ShadowPrefixIndex` mirrors each worker's *reachable* block
chains using the same chained-sha256 digests as the worker pool's
prefix index, maintained purely from placement records. Pinned here:
digest equivalence with :meth:`BlockAllocator.match_prefix` coverage,
full-block-only mirroring, bounded capacity under both eviction
policies, each placement policy's decision rule, and the
:data:`PREFIX_EVICTION_POLICIES` seam on the pool itself.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.runtime import (
    Request,
    SamplingParams,
)
from repro.runtime.paging import (
    PREFIX_EVICTION_POLICIES,
    BlockAllocator,
    LfuEvictionPolicy,
    LruEvictionPolicy,
    PagedLayerCache,
    get_prefix_eviction_policy,
)
from repro.runtime.routing import (
    ROUTING_POLICIES,
    LeastLoadedPolicy,
    PrefixAwarePolicy,
    RoundRobinPolicy,
    RoutingContext,
    ShadowPrefixIndex,
    get_routing_policy,
)


def _request(rid, prompt, priority=0):
    return Request(
        request_id=rid, prompt=tuple(prompt), max_new_tokens=4,
        sampling=SamplingParams(seed=0), priority=priority,
    )


class TestShadowPrefixIndex:
    def test_match_counts_full_block_coverage(self):
        shadow = ShadowPrefixIndex(block_size=4)
        shadow.record(range(10))  # 2 full blocks + partial tail
        assert shadow.match(range(10)) == 8
        assert shadow.match(range(8)) == 8
        assert shadow.match(range(4)) == 4
        assert shadow.match(range(3)) == 0  # partial: never mirrored
        assert shadow.match([9, 9, 9, 9]) == 0

    def test_chain_is_history_pinned(self):
        """A block's digest chains its predecessor: the same segment
        after a different history must not match."""
        shadow = ShadowPrefixIndex(block_size=4)
        shadow.record([1, 2, 3, 4, 5, 6, 7, 8])
        assert shadow.match([9, 9, 9, 9, 5, 6, 7, 8]) == 0

    def test_agrees_with_pool_match_prefix(self):
        """Shadow coverage equals the full-block part of what the real
        pool would match for the same recorded prompt."""
        pool = BlockAllocator(kv_heads=2, head_dim=8, block_size=4)
        cache = PagedLayerCache(pool, layer=0)
        rng = np.random.default_rng(0)
        prompt = list(range(11))
        for t in prompt:
            cache.append(rng.standard_normal((1, 2, 8)),
                         rng.standard_normal((1, 2, 8)), token_ids=[t])
        shadow = ShadowPrefixIndex(block_size=4)
        shadow.record(prompt)
        matched = pool.match_prefix(0, prompt)
        full = sum(
            fill for _bid, fill in matched if fill == pool.block_size
        )
        assert shadow.match(prompt) == full == 8

    def test_capacity_bounds_lru(self):
        shadow = ShadowPrefixIndex(block_size=4, capacity=2)
        shadow.record(range(8))        # chain A: 2 keys
        shadow.record([9] * 8)         # chain B evicts A entirely
        assert len(shadow) == 2
        assert shadow.match(range(8)) == 0
        assert shadow.match([9] * 8) == 8

    def test_match_keeps_chains_warm(self):
        shadow = ShadowPrefixIndex(block_size=4, capacity=3)
        shadow.record(range(8))        # A1, A2
        assert shadow.match(range(8)) == 8  # re-touch A
        shadow.record([9] * 4)         # B1: capacity evicts coldest
        assert shadow.match(range(8)) == 8, "touched chain was evicted"

    def test_lfu_eviction_protects_hot_keys(self):
        shadow = ShadowPrefixIndex(block_size=4, capacity=2,
                                   eviction="lfu")
        shadow.record([1] * 4)
        for _ in range(3):
            assert shadow.match([1] * 4) == 4  # hot
        shadow.record([2] * 4)         # cold
        shadow.record([3] * 4)         # evicts the cold key, not the hot
        assert shadow.match([1] * 4) == 4
        assert shadow.match([2] * 4) == 0

    def test_validation(self):
        with pytest.raises(ServingError):
            ShadowPrefixIndex(block_size=0)
        with pytest.raises(ServingError):
            ShadowPrefixIndex(block_size=4, capacity=0)
        with pytest.raises(ServingError):
            ShadowPrefixIndex(block_size=4, eviction="nope")


def _context(loads, shadows=None, block_size=4):
    if shadows is None:
        shadows = [ShadowPrefixIndex(block_size) for _ in loads]
    return RoutingContext(loads=tuple(loads), shadows=tuple(shadows))


class TestPolicies:
    def test_round_robin_rotates(self):
        policy = RoundRobinPolicy()
        context = _context([0, 0, 0])
        request = _request("r", [1, 2])
        assert [policy.place(request, context) for _ in range(5)] == [
            0, 1, 2, 0, 1,
        ]

    def test_least_loaded_picks_minimum(self):
        policy = LeastLoadedPolicy()
        assert policy.place(_request("r", [1]), _context([3, 1, 2])) == 1
        # Ties break to the lowest index.
        assert policy.place(_request("r", [1]), _context([2, 1, 1])) == 1

    def test_prefix_aware_follows_longest_chain(self):
        shadows = [ShadowPrefixIndex(4) for _ in range(3)]
        shadows[2].record(range(12))
        shadows[1].record(range(4))
        policy = PrefixAwarePolicy()
        context = _context([5, 0, 9], shadows)
        # Worker 2 covers 8 tokens of this prompt, worker 1 only 4 —
        # locality beats load.
        assert policy.place(_request("r", range(10)), context) == 2

    def test_prefix_aware_cold_prompt_falls_back_to_load(self):
        policy = PrefixAwarePolicy()
        context = _context([2, 0, 1])
        assert policy.place(_request("r", [50, 51, 52, 53]), context) == 1

    def test_prefix_aware_ties_break_by_load(self):
        shadows = [ShadowPrefixIndex(4) for _ in range(2)]
        shadows[0].record(range(4))
        shadows[1].record(range(4))
        policy = PrefixAwarePolicy()
        context = _context([3, 1], shadows)
        assert policy.place(_request("r", range(4)), context) == 1

    def test_registry(self):
        for name in ("round-robin", "least-loaded", "prefix-aware"):
            assert name in ROUTING_POLICIES
            assert get_routing_policy(name).name == name
        instance = RoundRobinPolicy()
        assert get_routing_policy(instance) is instance
        with pytest.raises(ServingError, match="unknown routing"):
            get_routing_policy("best-fit")
        with pytest.raises(ServingError):
            get_routing_policy(object())


class TestPoolEvictionSeam:
    def test_registry_and_resolver(self):
        assert set(PREFIX_EVICTION_POLICIES) == {"lru", "lfu"}
        assert isinstance(get_prefix_eviction_policy("lru"),
                          LruEvictionPolicy)
        assert isinstance(get_prefix_eviction_policy("lfu"),
                          LfuEvictionPolicy)
        instance = LfuEvictionPolicy()
        assert get_prefix_eviction_policy(instance) is instance
        with pytest.raises(ServingError, match="unknown prefix eviction"):
            get_prefix_eviction_policy("mru")
        with pytest.raises(ServingError):
            get_prefix_eviction_policy(42)

    def test_lru_victim_is_insertion_order(self):
        policy = LruEvictionPolicy()
        parked = {"a": None, "b": None, "c": None}
        assert policy.select_victim(parked) == "a"

    def test_lfu_victim_is_least_used(self):
        policy = LfuEvictionPolicy()
        parked = {"a": None, "b": None, "c": None}
        policy.record_use("a")
        policy.record_use("a")
        policy.record_use("c")
        assert policy.select_victim(parked) == "b"
        policy.forget("a")  # forgotten => count resets to zero
        assert policy.select_victim(parked) == "a"

    def _fill_and_park(self, allocator):
        """Park two indexed single-block chains, returning their ids."""
        ids = {}
        for name, tokens in (("x", [1, 2, 3, 4]), ("y", [5, 6, 7, 8])):
            cache = PagedLayerCache(allocator, layer=0)
            rng = np.random.default_rng(0)
            for t in tokens:
                cache.append(rng.standard_normal((1, 2, 8)),
                             rng.standard_normal((1, 2, 8)),
                             token_ids=[t])
            ids[name] = cache.block_ids[0]
            cache.release()
        return ids

    def test_lfu_pool_keeps_adopted_blocks(self):
        """Under reclaim pressure the lfu pool evicts the never-adopted
        parked block while lru would evict the older one."""
        for eviction, survivor in (("lru", [5, 6, 7, 8]),
                                   ("lfu", [1, 2, 3, 4])):
            allocator = BlockAllocator(
                kv_heads=2, head_dim=8, block_size=4, num_blocks=2,
                prefix_eviction=eviction,
            )
            ids = self._fill_and_park(allocator)
            if eviction == "lfu":
                # Make chain x hot: adopt and release it once.
                match = allocator.match_prefix(0, [1, 2, 3, 4])
                assert match and match[0][0] == ids["x"]
                allocator.adopt(ids["x"])
                allocator.free(ids["x"])
            # Pool is full of parked blocks; a fresh allocation must
            # reclaim one of them — the policy's victim.
            allocator.allocate()
            assert allocator.match_prefix(0, survivor), (eviction, survivor)

    def test_engine_accepts_lfu(self):
        from repro.models.configs import ModelConfig
        from repro.runtime import DecoderModel, RuntimeConfig, ServingEngine

        cfg = ModelConfig("lfu-smoke", hidden=32, ffn=48, layers=2,
                          heads=4, kv_heads=2, vocab=64, gated_ffn=True)
        model = DecoderModel(cfg, RuntimeConfig(
            weight_bits=4, kv_bits=8, backend="lut-naive", max_seq_len=64,
            kv_pool_blocks=32, prefix_eviction="lfu",
        ))
        assert model.kv_pool.eviction.name == "lfu"
        engine = ServingEngine(model)
        engine.submit(_request("r0", [1, 2, 3]))
        results, _ = engine.run()
        assert results[0].tokens
        with pytest.raises(ServingError):
            DecoderModel(cfg, RuntimeConfig(
                weight_bits=4, prefix_eviction="mru",
            ))
