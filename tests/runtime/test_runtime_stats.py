"""percentiles: the shared runtime stats helper's pinned edge behavior.

Every latency/occupancy percentile in the runtime and the serving
bench dispatches through :func:`repro.runtime.stats.percentiles`; its
empty- and one-element behavior is a compatibility contract (an empty
trace reports zeros, never raises) pinned here.
"""

import numpy as np

from repro.runtime import percentiles


class TestPercentiles:
    def test_empty_input_returns_zero_per_quantile(self):
        assert percentiles([], (50, 95, 99)) == (0.0, 0.0, 0.0)
        assert percentiles((), (50,)) == (0.0,)
        assert percentiles([], ()) == ()

    def test_single_element_returns_it_for_every_quantile(self):
        assert percentiles([7.5], (0, 50, 99, 100)) == (7.5, 7.5, 7.5, 7.5)

    def test_matches_numpy_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 10.0, 100.0]
        got = percentiles(values, (50, 95, 99))
        want = tuple(
            float(np.percentile(values, q)) for q in (50, 95, 99)
        )
        assert got == want

    def test_accepts_generators_and_arrays(self):
        values = [3.0, 1.0, 2.0]
        assert percentiles(iter(values), (50,)) == (2.0,)
        assert percentiles(np.array(values), (50,)) == (2.0,)

    def test_one_result_per_requested_quantile(self):
        qs = (10, 25, 50, 75, 90)
        result = percentiles([1.0, 2.0], qs)
        assert len(result) == len(qs)
        assert all(isinstance(v, float) for v in result)
        # Monotone in q for a fixed sample.
        assert list(result) == sorted(result)
