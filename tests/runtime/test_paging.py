"""Paged KV allocation: pool lifecycle, incremental plan extension,
bit-exact parity with from-scratch dense computation, block reuse."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.kernels import build_weight_plan, get_backend
from repro.lut.attention import MASKED_SCORE, lut_decode_attention
from repro.lut.mpgemm import LutMpGemmConfig, precompute_tables
from repro.models.configs import ModelConfig
from repro.numerics import softmax
from repro.quant.weight import quantize_weights
from repro.runtime import DecoderModel, RuntimeConfig
from repro.runtime.kv import LayerKvCache
from repro.runtime.paging import (
    BlockAllocator,
    PagedLayerCache,
    paged_decode_attention,
)

BACKENDS = ("reference", "lut-naive", "lut-blocked")

TINY = ModelConfig(
    "paging-tiny", hidden=32, ffn=64, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)


class TestBlockAllocator:
    def test_allocate_free_reuse(self):
        pool = BlockAllocator(2, 8, block_size=8, num_blocks=3)
        ids = [pool.allocate() for _ in range(3)]
        assert len(set(ids)) == 3
        assert pool.free_blocks == 0 and pool.used_blocks == 3
        with pytest.raises(ServingError):
            pool.allocate()
        pool.free(ids[1])
        assert pool.free_blocks == 1
        again = pool.allocate()
        assert again == ids[1]
        assert pool.stats["reused"] == 1

    def test_unbounded_pool_grows(self):
        pool = BlockAllocator(1, 4, block_size=4)
        start = pool.capacity
        ids = [pool.allocate() for _ in range(start * 2 + 1)]
        assert pool.capacity > start
        assert len(set(ids)) == len(ids)
        assert pool.free_blocks is None

    def test_double_free_rejected(self):
        pool = BlockAllocator(1, 4, block_size=4, num_blocks=2)
        bid = pool.allocate()
        pool.free(bid)
        with pytest.raises(ServingError):
            pool.free(bid)

    def test_validation(self):
        with pytest.raises(ServingError):
            BlockAllocator(0, 8)
        with pytest.raises(ServingError):
            BlockAllocator(2, 8, block_size=6, lut_k=4)
        with pytest.raises(ServingError):
            BlockAllocator(2, 8, bits=12)
        with pytest.raises(ServingError):
            BlockAllocator(2, 8, num_blocks=0)

    def test_blocks_for_tokens(self):
        pool = BlockAllocator(2, 8, block_size=16)
        assert pool.blocks_for_tokens(0) == 0
        assert pool.blocks_for_tokens(1) == 1
        assert pool.blocks_for_tokens(16) == 1
        assert pool.blocks_for_tokens(17) == 2


class TestPagedLayerCache:
    def test_views_match_contiguous_cache(self):
        pool = BlockAllocator(2, 8, block_size=4)
        paged = PagedLayerCache(pool)
        dense = LayerKvCache(2, 8)
        rng = np.random.default_rng(0)
        k = rng.normal(size=(11, 2, 8))
        v = rng.normal(size=(11, 2, 8))
        paged.append(k[:5], v[:5])       # bulk across block boundary
        dense.append(k[:5], v[:5])
        for i in range(5, 11):
            paged.append(k[i], v[i])
            dense.append(k[i], v[i])
        assert paged.length == 11
        assert len(paged.block_ids) == 3
        np.testing.assert_array_equal(paged.k_view(), dense.k_view())
        np.testing.assert_array_equal(paged.v_view(), dense.v_view())

    def test_release_returns_blocks_and_is_idempotent(self):
        pool = BlockAllocator(2, 8, block_size=4, num_blocks=4)
        cache = PagedLayerCache(pool)
        cache.append(np.zeros((9, 2, 8)), np.zeros((9, 2, 8)))
        assert pool.used_blocks == 3
        cache.release()
        cache.release()
        assert pool.used_blocks == 0
        with pytest.raises(ServingError):
            cache.append(np.zeros((2, 8)), np.zeros((2, 8)))

    def test_shape_validation(self):
        cache = PagedLayerCache(BlockAllocator(2, 8, block_size=4))
        with pytest.raises(ServingError):
            cache.append(np.zeros((2, 4)), np.zeros((2, 4)))
        with pytest.raises(ServingError):
            cache.append(np.zeros((2, 8)), np.zeros((3, 8)))

    def test_memory_bytes(self):
        pool = BlockAllocator(2, 8, block_size=16, bits=4)
        cache = PagedLayerCache(pool)
        cache.append(np.zeros((17, 2, 8)), np.zeros((17, 2, 8)))
        entries = 2 * 2 * 32 * 8      # K+V, heads, 2 blocks, head_dim
        assert cache.memory_bytes() == (entries * 4 + 7) // 8
        fpool = BlockAllocator(2, 8, block_size=16)
        fcache = PagedLayerCache(fpool)
        fcache.append(np.zeros((3, 2, 8)), np.zeros((3, 2, 8)))
        assert fcache.memory_bytes() == 2 * 2 * 16 * 8 * 8


def reference_paged_attention(
    k_hist, v_hist, query, *, bits, block_size, lut_k, backend, repeat=1,
    full_k_plan=True,
):
    """From-scratch dense recomputation of the paged decode recipe.

    Everything is quantized and planned in one shot (no incremental
    extension, no caching): with ``full_k_plan`` the scores come from
    ONE full-context K plan — pinning the paged path's per-block
    score decomposition against a dense matmul, valid bit-for-bit on
    the LUT backends whose reduction order is pinned per output column
    — otherwise from per-block scratch-built plans (the reference
    backend's BLAS GEMM may associate differently across matmul
    shapes, a 1-ulp effect the LUT kernels by construction don't
    have). V slabs are quantized from scratch per padded block and the
    context partials accumulate in block order. The paged incremental
    path must match this bit for bit.
    """
    kv_heads, length, head_dim = k_hist.shape
    nblocks = -(-length // block_size)
    ctx_pad = nblocks * block_size
    config = LutMpGemmConfig(k=lut_k, backend=backend)
    kernel = get_backend(backend)
    k_group = 16 if head_dim % 16 == 0 else None
    v_group = 16 if block_size % 16 == 0 else None
    inv_sqrt_d = 1.0 / np.sqrt(head_dim)
    v_pad = np.zeros((kv_heads, ctx_pad, head_dim))
    v_pad[:, :length] = v_hist
    out = np.zeros((kv_heads * repeat, head_dim))

    def quantize_k(rows):
        if k_group:
            return quantize_weights(rows, bits, axis=1, group_size=k_group)
        return quantize_weights(rows, bits, axis=0)

    for qh in range(kv_heads * repeat):
        h = qh // repeat
        q_row = query[qh][None]
        table = (
            precompute_tables(q_row, config) if kernel.needs_table else None
        )
        scores = np.full(ctx_pad, MASKED_SCORE)
        if full_k_plan:
            plan = build_weight_plan(quantize_k(k_hist[h]), lut_k)
            scores[:length] = (
                kernel.execute(plan, config, q_row, table)[0] * inv_sqrt_d
            )
        else:
            for b in range(nblocks):
                lo = b * block_size
                hi = min(lo + block_size, length)
                plan = build_weight_plan(quantize_k(k_hist[h, lo:hi]), lut_k)
                scores[lo:hi] = (
                    kernel.execute(plan, config, q_row, table)[0] * inv_sqrt_d
                )
        probs = softmax(scores)
        acc = None
        for b in range(nblocks):
            v_t = v_pad[h, b * block_size:(b + 1) * block_size].T
            if v_group:
                vq = quantize_weights(
                    v_t, bits, axis=1, group_size=v_group
                )
            else:
                vq = quantize_weights(v_t, bits, axis=0)
            p_seg = probs[b * block_size:(b + 1) * block_size][None]
            p_table = (
                precompute_tables(p_seg, config)
                if kernel.needs_table else None
            )
            part = kernel.execute(build_weight_plan(vq, lut_k), config,
                                  p_seg, p_table)[0]
            acc = part if acc is None else acc + part
        out[qh] = acc
    return out


class TestPagedDecodeParity:
    """Incremental paged attention == from-scratch dense computation."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("head_dim,block_size", [(8, 8), (16, 16)],
                             ids=("per-row", "grouped"))
    def test_incremental_equals_scratch_at_every_length(
        self, backend, head_dim, block_size
    ):
        """Grow a paged cache token by token, attending between appends
        (so plans are built once and *extended* afterwards), and pin the
        output bit-for-bit against a from-scratch recomputation at
        every context length across three block boundaries."""
        kv_heads, bits, repeat = 2, 4, 2
        rng = np.random.default_rng(head_dim)
        total = 2 * block_size + 5
        k = rng.normal(size=(total, kv_heads, head_dim))
        v = rng.normal(size=(total, kv_heads, head_dim))
        query = rng.normal(size=(kv_heads * repeat, head_dim))
        pool = BlockAllocator(
            kv_heads, head_dim, block_size=block_size, bits=bits
        )
        cache = PagedLayerCache(pool)
        cache.append(k[:5], v[:5])        # prefill chunk
        for t in range(5, total + 1):
            got = paged_decode_attention(
                query, cache, repeat=repeat, backend=backend
            )
            want = reference_paged_attention(
                k[:t].transpose(1, 0, 2), v[:t].transpose(1, 0, 2), query,
                bits=bits, block_size=block_size, lut_k=4,
                backend=backend, repeat=repeat,
                # LUT kernels reduce per output column in pinned order,
                # so their per-block scores equal a full-context plan's
                # bit for bit; BLAS (reference) may not — compare it
                # against scratch per-block plans instead.
                full_k_plan=backend != "reference",
            )
            np.testing.assert_array_equal(got, want, err_msg=f"length {t}")
            if t < total:
                cache.append(k[t], v[t])

    def test_single_block_matches_contiguous_cache_exactly(self):
        """Within one 16-token block the paged recipe coincides with the
        contiguous LayerKvCache + lut_decode_attention path bit for bit
        (same padding, same V grouping, single context matmul)."""
        rng = np.random.default_rng(7)
        k = rng.normal(size=(13, 2, 16))
        v = rng.normal(size=(13, 2, 16))
        query = rng.normal(size=(2, 16))
        pool = BlockAllocator(2, 16, block_size=16, bits=4)
        paged = PagedLayerCache(pool)
        dense = LayerKvCache(2, 16, bits=4)
        paged.append(k, v)
        dense.append(k, v)
        got = paged_decode_attention(query, paged, backend="lut-blocked")
        qc, valid = dense.quantized()
        want = lut_decode_attention(
            query, qc, backend="lut-blocked", context_valid=valid
        )
        np.testing.assert_array_equal(got, want)

    def test_lut_backends_bit_identical_multi_block(self):
        rng = np.random.default_rng(9)
        k = rng.normal(size=(21, 2, 8))
        v = rng.normal(size=(21, 2, 8))
        query = rng.normal(size=(4, 8))
        outs = {}
        for backend in ("lut-naive", "lut-blocked"):
            pool = BlockAllocator(2, 8, block_size=8, bits=4)
            cache = PagedLayerCache(pool)
            cache.append(k, v)
            outs[backend] = paged_decode_attention(
                query, cache, repeat=2, backend=backend
            )
        np.testing.assert_array_equal(outs["lut-naive"], outs["lut-blocked"])

    def test_requires_quantized_pool_and_tokens(self):
        cache = PagedLayerCache(BlockAllocator(2, 8, block_size=8))
        with pytest.raises(ServingError):
            paged_decode_attention(np.zeros((2, 8)), cache)
        qcache = PagedLayerCache(BlockAllocator(2, 8, block_size=8, bits=4))
        with pytest.raises(ServingError):
            paged_decode_attention(np.zeros((2, 8)), qcache)


class TestPlanWorkIsFlat:
    def test_per_step_plan_columns_constant_in_context(self):
        """The tentpole invariant: after the first materialization, every
        decode step builds/extends exactly one K-plan column per KV head
        per layer and requantizes exactly one trailing V block per layer
        — independent of how long the context has grown."""
        model = DecoderModel(
            TINY,
            RuntimeConfig(weight_bits=4, kv_bits=4, max_seq_len=64,
                          kv_block_size=16),
        )
        caches = model.new_caches()
        model.prefill(np.arange(8), caches)
        model.decode_step(1, caches)      # first step builds the plans
        pool = model.kv_pool
        expected_k = TINY.layers * TINY.kv_heads
        expected_v = TINY.layers * TINY.kv_heads * pool.block_size
        for step in range(40):
            before_k = pool.stats["k_plan_cols"]
            before_v = pool.stats["v_quant_cols"]
            model.decode_step(step % TINY.vocab, caches)
            assert pool.stats["k_plan_cols"] - before_k == expected_k, (
                f"step {step}: K-plan work grew with context"
            )
            assert pool.stats["v_quant_cols"] - before_v == expected_v, (
                f"step {step}: V-quant work grew with context"
            )

    def test_full_blocks_freeze_their_plans(self):
        pool = BlockAllocator(1, 8, block_size=8, bits=4)
        cache = PagedLayerCache(pool)
        rng = np.random.default_rng(3)
        cache.append(rng.normal(size=(8, 1, 8)), rng.normal(size=(8, 1, 8)))
        query = rng.normal(size=(1, 8))
        paged_decode_attention(query, cache, backend="lut-blocked")
        first_bid = cache.block_ids[0]
        frozen_plan = pool.k_plans(first_bid)[0]
        frozen_v = pool.v_quantized(first_bid)
        cache.append(rng.normal(size=(5, 1, 8)), rng.normal(size=(5, 1, 8)))
        paged_decode_attention(query, cache, backend="lut-blocked")
        assert pool.k_plans(first_bid)[0] is frozen_plan
        assert pool.v_quantized(first_bid)[0] is frozen_v[0]


class TestBlockReuse:
    def test_freed_blocks_reused_without_state_leakage(self):
        """Satellite: a completed request's blocks serve the next request
        with exact-logit fidelity — the scrubbed pool state leaks
        nothing from the previous occupant."""
        rt = RuntimeConfig(
            weight_bits=4, kv_bits=4, max_seq_len=32, kv_block_size=16,
            kv_pool_blocks=TINY.layers,   # exactly one sequence fits
        )
        prompt_a = np.arange(10)
        prompt_b = (np.arange(9) * 3) % TINY.vocab

        def run_request(model, prompt, steps):
            caches = model.new_caches()
            logits = [model.prefill(prompt, caches)[-1]]
            for t in range(steps):
                logits.append(model.decode_step(t + 1, caches))
            ids = {bid for c in caches for bid in c.block_ids}
            return np.stack(logits), caches, ids

        model = DecoderModel(TINY, rt)
        _, caches_a, ids_a = run_request(model, prompt_a, steps=5)
        model.free_caches(caches_a)
        logits_b, caches_b, ids_b = run_request(model, prompt_b, steps=5)
        assert ids_b == ids_a                  # the pool forced reuse
        assert model.kv_pool.stats["reused"] >= len(ids_a)

        fresh = DecoderModel(TINY, rt)         # same seed, same weights
        logits_fresh, _, _ = run_request(fresh, prompt_b, steps=5)
        np.testing.assert_array_equal(logits_b, logits_fresh)

    def test_bounded_pool_exhaustion_raises(self):
        model = DecoderModel(
            TINY,
            RuntimeConfig(weight_bits=4, kv_bits=4, max_seq_len=32,
                          kv_block_size=16, kv_pool_blocks=TINY.layers),
        )
        caches = model.new_caches()
        model.prefill(np.arange(4), caches)
        other = model.new_caches()
        with pytest.raises(ServingError):
            model.prefill(np.arange(4), other)
