"""Copy-on-write prefix sharing: refcounts, the prefix index,
adoption parity, CoW divergence, recently-freed reuse, and the
allocator refcount invariants under random op interleavings."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    Request,
    RuntimeConfig,
    ServingEngine,
)
from repro.runtime.paging import BlockAllocator, PagedLayerCache

BACKENDS = ("reference", "lut-naive", "lut-blocked")

TINY = ModelConfig(
    "share-tiny", hidden=32, ffn=64, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)


def _row(token: int, kv_heads: int = 2, head_dim: int = 8) -> np.ndarray:
    """Deterministic K/V row per token id: identical tokens always carry
    identical content, the property real prefills have and the prefix
    index relies on."""
    base = np.cos((token + 1) * np.arange(1, kv_heads * head_dim + 1))
    return base.reshape(kv_heads, head_dim)


def _fill_cache(cache: PagedLayerCache, tokens) -> None:
    rows = np.stack([_row(t) for t in tokens])
    cache.append(rows, 0.5 * rows, token_ids=list(tokens))


class TestRefcounts:
    def test_allocate_share_free_lifecycle(self):
        pool = BlockAllocator(2, 8, block_size=8, bits=4, num_blocks=4)
        bid = pool.allocate()
        assert pool.refcount(bid) == 1
        pool._refcount[bid] = 1  # sanity: direct state matches accessor
        pool.adopt(bid)
        assert pool.refcount(bid) == 2
        assert pool.shared_in_use == 1
        pool.free(bid)
        assert pool.refcount(bid) == 1
        assert bid in pool._in_use          # still held: not scrubbed
        pool.free(bid)
        assert pool.refcount(bid) == 0
        assert bid not in pool._in_use

    def test_free_never_scrubs_shared_block(self):
        """The satellite invariant: releasing one holder of a shared
        block must leave its contents, plans and V cache untouched."""
        pool = BlockAllocator(2, 8, block_size=4, bits=4)
        cache_a = PagedLayerCache(pool, layer=0)
        _fill_cache(cache_a, [3, 1, 4, 1])          # one full block
        bid = cache_a.block_ids[0]
        before_k = pool._k[bid].copy()
        before_codes = pool._k_codes[bid].copy()
        cache_b = PagedLayerCache(pool, layer=0)
        chain = pool.match_prefix(0, [3, 1, 4, 1])
        assert chain == [(bid, 4)]
        cache_b.adopt_prefix(chain, [3, 1, 4, 1])
        cache_a.release()                            # one holder leaves
        assert pool.refcount(bid) == 1
        np.testing.assert_array_equal(pool._k[bid], before_k)
        np.testing.assert_array_equal(pool._k_codes[bid], before_codes)
        np.testing.assert_array_equal(
            cache_b.k_view()[0], np.stack([_row(t)[0] for t in (3, 1, 4, 1)])
        )

    def test_write_into_shared_block_rejected_at_pool_layer(self):
        pool = BlockAllocator(2, 8, block_size=8, bits=4)
        cache = PagedLayerCache(pool, layer=0)
        _fill_cache(cache, [1, 2, 3])
        bid = cache.block_ids[0]
        pool.adopt(bid)
        with pytest.raises(ServingError):
            pool.write_rows(bid, _row(4)[None], _row(4)[None])
        pool.free(bid)

    def test_double_free_still_rejected(self):
        pool = BlockAllocator(1, 4, block_size=4, num_blocks=2)
        bid = pool.allocate()
        pool.free(bid)
        with pytest.raises(ServingError):
            pool.free(bid)


class TestPrefixIndex:
    def test_full_block_chain_then_partial_tail(self):
        pool = BlockAllocator(2, 8, block_size=4, bits=4)
        cache = PagedLayerCache(pool, layer=0)
        tokens = [7, 1, 2, 9, 5, 6, 3, 8, 11, 12]   # 2 full + fill-2 tail
        _fill_cache(cache, tokens)
        chain = pool.match_prefix(0, tokens)
        assert [fill for _, fill in chain] == [4, 4, 2]
        assert [bid for bid, _ in chain] == cache.block_ids
        # A shorter query stops at full blocks only: the partial tail
        # matches only at its exact current content.
        assert [f for _, f in pool.match_prefix(0, tokens[:9])] == [4, 4]
        # Diverging content does not match past the divergence point.
        assert [f for _, f in pool.match_prefix(0, tokens[:5] + [60, 61])] == [4]
        # Other layers see nothing.
        assert pool.match_prefix(1, tokens) == []

    def test_append_updates_partial_entry(self):
        """A partial trailing block's index entry must always describe
        its exact current rows — stale entries would hand out blocks
        whose fill disagrees with the matched token count."""
        pool = BlockAllocator(2, 8, block_size=4, bits=4)
        cache = PagedLayerCache(pool, layer=0)
        _fill_cache(cache, [1, 2])
        assert [f for _, f in pool.match_prefix(0, [1, 2])] == [2]
        _fill_cache(cache, [3])
        assert pool.match_prefix(0, [1, 2]) == []
        assert [f for _, f in pool.match_prefix(0, [1, 2, 3])] == [3]

    def test_recently_freed_blocks_parked_and_resurrected(self):
        pool = BlockAllocator(2, 8, block_size=4, bits=4, num_blocks=4)
        cache = PagedLayerCache(pool, layer=0)
        _fill_cache(cache, [5, 6, 7, 8, 1])          # 1 full + partial
        full_bid = cache.block_ids[0]
        cache.release()
        # Full indexed block parked; partial scrubbed straight to free.
        assert pool.cached_free_blocks == 1
        assert pool.used_blocks == 0
        chain = pool.match_prefix(0, [5, 6, 7, 8, 9])
        assert chain == [(full_bid, 4)]
        other = PagedLayerCache(pool, layer=0)
        other.adopt_prefix(chain, [5, 6, 7, 8])
        assert pool.cached_free_blocks == 0
        assert pool.refcount(full_bid) == 1
        np.testing.assert_array_equal(
            other.k_view(), np.stack([_row(t) for t in (5, 6, 7, 8)]).transpose(1, 0, 2)
        )
        other.release()

    def test_bounded_pool_evicts_cached_free_lru(self):
        """Parked blocks are capacity, not a leak: when a bounded pool
        runs out of virgin blocks the least-recently-parked cached-free
        block is reclaimed (and unindexed) instead of raising."""
        pool = BlockAllocator(2, 8, block_size=4, bits=4, num_blocks=2)
        a = PagedLayerCache(pool, layer=0)
        _fill_cache(a, [1, 2, 3, 4])
        b = PagedLayerCache(pool, layer=0)
        _fill_cache(b, [9, 8, 7, 6])
        a.release()
        b.release()
        assert pool.cached_free_blocks == 2
        fresh = PagedLayerCache(pool, layer=0)
        _fill_cache(fresh, [11, 12, 13, 14])         # evicts a's block
        assert pool.stats["evicted"] == 1
        assert pool.match_prefix(0, [1, 2, 3, 4]) == []
        assert [f for _, f in pool.match_prefix(0, [9, 8, 7, 6])] == [4]
        fresh.release()

    def test_pool_exhaustion_message_still_raised_when_nothing_cached(self):
        pool = BlockAllocator(2, 8, block_size=4, num_blocks=1)
        pool.allocate()
        with pytest.raises(ServingError):
            pool.allocate()

    def test_prefix_cache_bounded_even_on_unbounded_pool(self):
        """The parked set is capped (LRU) independently of the pool
        bound — an unbounded pool must not retain every distinct
        prompt's blocks forever."""
        pool = BlockAllocator(2, 8, block_size=4, bits=4,
                              prefix_cache_blocks=2)
        for i in range(4):
            cache = PagedLayerCache(pool, layer=0)
            _fill_cache(cache, [i * 10 + d for d in range(4)])
            cache.release()
        assert pool.cached_free_blocks == 2          # capped, not 4
        assert pool.stats["evicted"] == 2
        # The survivors are the most recently parked prompts.
        assert pool.match_prefix(0, [0, 1, 2, 3]) == []
        assert [f for _, f in pool.match_prefix(0, [30, 31, 32, 33])] == [4]

    def test_prefix_cache_zero_disables_parking(self):
        pool = BlockAllocator(2, 8, block_size=4, bits=4,
                              prefix_cache_blocks=0)
        cache = PagedLayerCache(pool, layer=0)
        _fill_cache(cache, [1, 2, 3, 4])
        cache.release()
        assert pool.cached_free_blocks == 0
        assert pool.match_prefix(0, [1, 2, 3, 4]) == []


class TestCopyOnWrite:
    def test_append_into_shared_partial_block_cows(self):
        pool = BlockAllocator(2, 8, block_size=8, bits=4)
        a = PagedLayerCache(pool, layer=0)
        _fill_cache(a, [1, 2, 3])
        shared_bid = a.block_ids[0]
        b = PagedLayerCache(pool, layer=0)
        chain = pool.match_prefix(0, [1, 2, 3])
        b.adopt_prefix(chain, [1, 2, 3])
        assert pool.refcount(shared_bid) == 2
        _fill_cache(b, [50])                          # diverge -> CoW
        assert pool.stats["cow"] == 1
        assert b.block_ids[0] != shared_bid
        assert pool.refcount(shared_bid) == 1         # a keeps the original
        assert pool.refcount(b.block_ids[0]) == 1
        # Both sequences see exactly their own histories.
        np.testing.assert_array_equal(
            a.k_view(), np.stack([_row(t) for t in (1, 2, 3)]).transpose(1, 0, 2)
        )
        np.testing.assert_array_equal(
            b.k_view(), np.stack([_row(t) for t in (1, 2, 3, 50)]).transpose(1, 0, 2)
        )
        # The original holder can keep appending without another CoW.
        _fill_cache(a, [60])
        assert pool.stats["cow"] == 1
        a.release()
        b.release()

    def test_adoption_requires_empty_cache(self):
        pool = BlockAllocator(2, 8, block_size=4, bits=4)
        a = PagedLayerCache(pool, layer=0)
        _fill_cache(a, [1, 2, 3, 4])
        chain = pool.match_prefix(0, [1, 2, 3, 4])
        b = PagedLayerCache(pool, layer=0)
        _fill_cache(b, [9])
        with pytest.raises(ServingError):
            b.adopt_prefix(chain, [1, 2, 3, 4])


def _from_scratch_reference(rt_kwargs, prompt, chunk_at, decode_tokens):
    """Independent from-scratch dense computation of *prompt* + decodes.

    Nothing is shared or adopted — every row is recomputed on a fresh
    model. The prefill is chunked at the adoption boundary so the
    suffix rows see the same mpGEMM batch shapes as the shared run.
    """
    fresh = DecoderModel(TINY, RuntimeConfig(**rt_kwargs))
    caches = fresh.new_caches()
    if chunk_at:
        fresh.prefill(np.array(prompt[:chunk_at]), caches)
    logits = [fresh.prefill(np.array(prompt[chunk_at:]), caches)[-1]]
    for token in decode_tokens:
        logits.append(fresh.decode_step(token, caches))
    fresh.free_caches(caches)
    return np.stack(logits)


def _assert_parity(backend, got, want):
    """Bit-identical on the reduction-order-pinned LUT backends; the
    `reference` backend's BLAS GEMMs may associate differently across
    batch shapes (a donor's K/V rows were produced at the donor's
    prompt shape), so it is pinned at the runtime's established 1e-9
    — the same split the PR 3/4 decode-parity suites use."""
    if backend == "reference":
        np.testing.assert_allclose(got, want, atol=1e-9)
    else:
        np.testing.assert_array_equal(got, want)


class TestSharedAttentionBitParity:
    """Bit-identity on ALL three backends at the attention level: an
    adopted/CoW-split block table holds the same bytes as a privately
    built one, so paged decode attention over it must match the
    from-scratch dense recomputation bit for bit (the same
    `reference_paged_attention` recipe PR 4 pins private tables on)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_adopted_and_cow_tables_decode_bit_identical(self, backend):
        from tests.runtime.test_paging import reference_paged_attention

        from repro.runtime.paging import paged_decode_attention

        kv_heads, head_dim, block_size, bits = 2, 8, 8, 4
        rng = np.random.default_rng(42)
        pool = BlockAllocator(
            kv_heads, head_dim, block_size=block_size, bits=bits
        )
        donor_tokens = [int(t) for t in rng.integers(0, 64, 11)]
        donor = PagedLayerCache(pool, layer=0)
        _fill_cache(donor, donor_tokens)
        # Adopt one full block + the partial tail, then diverge (CoW).
        adopter = PagedLayerCache(pool, layer=0)
        chain = pool.match_prefix(0, donor_tokens)
        adopter.adopt_prefix(chain, donor_tokens)
        extra = [int(t) for t in rng.integers(0, 64, 3)]
        _fill_cache(adopter, extra)
        assert pool.stats["cow"] == 1
        tokens = donor_tokens + extra
        k_hist = np.stack([_row(t) for t in tokens]).transpose(1, 0, 2)
        v_hist = 0.5 * k_hist
        query = rng.normal(size=(kv_heads * 2, head_dim))
        got = paged_decode_attention(
            query, adopter, repeat=2, backend=backend
        )
        want = reference_paged_attention(
            k_hist, v_hist, query, bits=bits, block_size=block_size,
            lut_k=4, backend=backend, repeat=2,
            full_k_plan=backend != "reference",
        )
        np.testing.assert_array_equal(got, want)
        # The donor's view is equally untouched by the split.
        got_donor = paged_decode_attention(
            query, donor, repeat=2, backend=backend
        )
        want_donor = reference_paged_attention(
            k_hist[:, :len(donor_tokens)], v_hist[:, :len(donor_tokens)],
            query, bits=bits, block_size=block_size, lut_k=4,
            backend=backend, repeat=2,
            full_k_plan=backend != "reference",
        )
        np.testing.assert_array_equal(got_donor, want_donor)


class TestSharedPrefixDecodeParity:
    """Model-level acceptance bar: shared-prefix prefill + decode must
    reproduce an independent from-scratch computation on every
    registered backend (bit-identical on the LUT backends)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shared_decode_matches_from_scratch(self, backend):
        rt = dict(
            weight_bits=4, kv_bits=4, backend=backend, max_seq_len=96,
        )
        common = tuple(int(t) for t in (np.arange(37) * 5) % TINY.vocab)
        prompt_a = common + (1, 2, 3)
        prompt_b = common + (9, 8)

        model = DecoderModel(TINY, RuntimeConfig(**rt))
        caches_a = model.new_caches()
        model.prefill(np.array(prompt_a), caches_a)
        model.decode_step(5, caches_a)               # donor stays live
        caches_b = model.new_caches()
        logits_b = [model.prefill(np.array(prompt_b), caches_b)[-1]]
        shared = model.stats["shared_prefix_tokens"]
        assert shared >= 32                          # two full blocks
        assert model.kv_pool.stats["shared"] > 0     # adoption happened
        for t in (5, 6, 7):
            logits_b.append(model.decode_step(t, caches_b))

        want = _from_scratch_reference(rt, prompt_b, shared, (5, 6, 7))
        _assert_parity(backend, np.stack(logits_b), want)
        model.free_caches(caches_a)
        model.free_caches(caches_b)

    def test_shared_prefill_matches_unchunked_on_lut_backend(self):
        """On the reduction-order-pinned LUT backends the shared run is
        bit-identical even to an *unchunked* fresh prefill."""
        rt = dict(
            weight_bits=4, kv_bits=4, backend="lut-blocked", max_seq_len=96,
        )
        common = tuple(int(t) for t in (np.arange(35) * 5) % TINY.vocab)
        prompt_b = common + (9, 8)
        model = DecoderModel(TINY, RuntimeConfig(**rt))
        caches_a = model.new_caches()
        model.prefill(np.array(common + (1,)), caches_a)
        caches_b = model.new_caches()
        got = [model.prefill(np.array(prompt_b), caches_b)[-1]]
        assert model.stats["shared_prefix_tokens"] >= 32
        got.append(model.decode_step(3, caches_b))
        want = _from_scratch_reference(rt, prompt_b, 0, (3,))
        np.testing.assert_array_equal(np.stack(got), want)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cow_divergence_matches_from_scratch(self, backend):
        """Two prompts diverging inside a shared partial block: the
        adopter copy-on-writes at its first computed token, and both
        decode to their from-scratch references."""
        rt = dict(
            weight_bits=4, kv_bits=4, backend=backend, max_seq_len=64,
        )
        base = tuple(int(t) for t in (np.arange(10) * 3) % TINY.vocab)
        prompt_b = base + (21, 22)

        model = DecoderModel(TINY, RuntimeConfig(**rt))
        caches_a = model.new_caches()
        model.prefill(np.array(base), caches_a)      # partial-block donor
        caches_b = model.new_caches()
        model.prefill(np.array(prompt_b), caches_b)
        shared = model.stats["shared_prefix_tokens"]
        assert shared == len(base)
        assert model.kv_pool.stats["cow"] > 0        # partial share split
        out_b = np.stack(
            [model.decode_step(t, caches_b) for t in (3, 4)]
        )
        out_a = np.stack(
            [model.decode_step(t, caches_a) for t in (3, 4)]
        )

        want_b = _from_scratch_reference(rt, prompt_b, shared, (3, 4))
        _assert_parity(backend, out_b, want_b[1:])
        want_a = _from_scratch_reference(rt, base, 0, (3, 4))
        _assert_parity(backend, out_a, want_a[1:])

    def test_float_kv_sharing_bit_identical(self):
        """Sharing also holds on the float-KV decode path (no plans).

        The linears are pinned to the batch-invariant blocked backend —
        this test covers the KV mode, not the kernel matrix (the
        backend sweep above covers that)."""
        rt = dict(
            weight_bits=4, kv_bits=None, backend="lut-blocked",
            max_seq_len=96,
        )
        common = tuple(int(t) for t in (np.arange(33) * 7) % TINY.vocab)
        model = DecoderModel(TINY, RuntimeConfig(**rt))
        caches_a = model.new_caches()
        model.prefill(np.array(common + (2,)), caches_a)
        caches_b = model.new_caches()
        model.prefill(np.array(common + (11, 12)), caches_b)
        assert model.kv_pool.stats["shared"] > 0
        got = model.decode_step(9, caches_b)
        fresh = DecoderModel(TINY, RuntimeConfig(**rt))
        caches_f = fresh.new_caches()
        fresh.prefill(np.array(common + (11, 12)), caches_f)
        want = fresh.decode_step(9, caches_f)
        np.testing.assert_array_equal(got, want)

    def test_sharing_disabled_runs_private(self):
        rt = dict(
            weight_bits=4, kv_bits=4, max_seq_len=96, prefix_sharing=False,
        )
        common = tuple(int(t) for t in np.arange(34) % TINY.vocab)
        model = DecoderModel(TINY, RuntimeConfig(**rt))
        caches_a = model.new_caches()
        model.prefill(np.array(common + (1,)), caches_a)
        caches_b = model.new_caches()
        logits = model.prefill(np.array(common + (2,)), caches_b)
        assert logits.shape[0] == len(common) + 1    # everything computed
        assert model.kv_pool.stats["shared"] == 0
        assert model.shareable_blocks(common + (2,)) == 0


class TestBlocksSaved:
    def test_shared_engine_allocates_strictly_fewer_blocks(self):
        """The perf-guard criterion: serving N common-prefix requests
        with sharing allocates strictly fewer pool blocks than the
        no-sharing baseline, with identical outputs."""
        common = tuple(int(t) for t in (np.arange(36) * 11) % TINY.vocab)
        requests = [
            Request(
                request_id=f"r{i}",
                prompt=common + (i + 1, i + 2),
                max_new_tokens=4,
            )
            for i in range(4)
        ]

        def serve(prefix_sharing):
            model = DecoderModel(
                TINY,
                RuntimeConfig(
                    weight_bits=4, kv_bits=4, max_seq_len=96,
                    prefix_sharing=prefix_sharing,
                ),
            )
            engine = ServingEngine(model, max_batch_size=4)
            for request in requests:
                engine.submit(request)
            results, stats = engine.run()
            tokens = {r.request_id: r.tokens for r in results}
            return tokens, model.kv_pool.stats, stats

        shared_tokens, shared_pool, shared_stats = serve(True)
        private_tokens, private_pool, _ = serve(False)
        assert shared_tokens == private_tokens       # exact outputs
        assert shared_pool["allocated"] < private_pool["allocated"]
        assert shared_pool["shared"] > 0
        assert shared_stats.shared_block_ratio > 0.0
        assert any(t.kv_blocks_shared > 0 for t in shared_stats.trace)


class TestSubmitSharingDiscount:
    COMMON = tuple(int(t) for t in (np.arange(32) * 3) % TINY.vocab)
    RT = dict(
        weight_bits=4, kv_bits=4, max_seq_len=96, kv_block_size=16,
        kv_pool_blocks=8,
    )

    def _seed(self):
        """A long-running donor holding the common prefix live."""
        return Request(
            "seed", prompt=self.COMMON + (63,), max_new_tokens=16,
        )

    def test_submit_accounts_for_live_shareable_blocks(self):
        """Satellite bugfix: a prompt whose worst case exceeds the pool
        only because of blocks live sequences already hold must be
        admitted (and still be rejected cold)."""
        # Worst case: 49 + 40 - 1 = 88 tokens -> 6 blocks x 2 layers =
        # 12 > 8: rejected against the private footprint.
        big = Request(
            "big", prompt=self.COMMON + tuple(range(17)),
            max_new_tokens=40,
        )
        cold = ServingEngine(DecoderModel(TINY, RuntimeConfig(**self.RT)))
        with pytest.raises(ServingError):
            cold.submit(big)

        warm_model = DecoderModel(TINY, RuntimeConfig(**self.RT))
        warm = ServingEngine(warm_model, max_batch_size=2)
        warm.submit(self._seed())
        warm.step()                      # seed active, prefix held live
        # The two full common-prefix blocks per layer are live-shared,
        # so the discounted footprint 12 - 4 = 8 <= 8 admits it.
        assert warm_model.shareable_blocks(big.prompt, live_only=True) == 4
        warm.submit(big)
        assert "big" in warm._ids

    def test_parked_blocks_do_not_discount_submit(self):
        """Adopting a parked block re-occupies pool capacity, so a
        request that fits only against parked matches can never fit --
        submit must keep rejecting it (the pre-fix crash scenario)."""
        big = Request(
            "big", prompt=self.COMMON + tuple(range(17)),
            max_new_tokens=40,
        )
        model = DecoderModel(TINY, RuntimeConfig(**self.RT))
        engine = ServingEngine(model, max_batch_size=2)
        engine.submit(self._seed())
        engine.run()                     # seed completed: blocks parked
        assert model.kv_pool.cached_free_blocks > 0
        assert model.shareable_blocks(big.prompt) == 4          # compute
        assert model.shareable_blocks(big.prompt, live_only=True) == 0
        with pytest.raises(ServingError):
            engine.submit(big)

    def test_discounted_request_completes_via_sharing_and_eos(self):
        """An over-committed admission backed by live sharing completes
        when generation ends early -- the over-commit case the discount
        plus preemption relief exists for."""
        model = DecoderModel(TINY, RuntimeConfig(**self.RT))
        engine = ServingEngine(model, max_batch_size=2)
        engine.submit(self._seed())
        engine.step()                    # seed active, prefix held live
        engine.submit(
            Request("probe", prompt=self.COMMON + (1, 2), max_new_tokens=1)
        )
        while not engine.finished:       # probe finishes at its prefill
            engine.step()
        eos = engine.finished[0].tokens[0]
        # 34 + 40 - 1 = 73 tokens -> 5 blocks x 2 = 10 > 8 privately,
        # 10 - 4 = 6 <= 8 with the live-shared prefix; eos ends the
        # generation long before the worst case materializes.
        engine.submit(
            Request(
                "over-commit", prompt=self.COMMON + (1, 2),
                max_new_tokens=40, eos_token_id=eos,
            )
        )
        results, _ = engine.run()
        by_id = {r.request_id: r for r in results}
        assert by_id["over-commit"].finish_reason == "eos"
        assert len(by_id["over-commit"].tokens) == 1
        assert model.kv_pool.used_blocks == 0


class TestRefcountInvariant:
    """Property-style satellite: under any interleaving of
    share/append/CoW/free, the sum of refcounts equals the live
    block-table references and shared contents are never scrubbed."""

    def test_random_interleavings_preserve_invariants(self):
        rng = np.random.default_rng(1234)
        pool = BlockAllocator(2, 8, block_size=4, bits=4, num_blocks=24)
        live: list[tuple[PagedLayerCache, list[int]]] = []
        histories: list[list[int]] = []

        def check():
            table_refs: dict[int, int] = {}
            for cache, _ in live:
                for bid in cache.block_ids:
                    table_refs[bid] = table_refs.get(bid, 0) + 1
            in_use_refs = {
                bid: pool.refcount(bid) for bid in pool._in_use
            }
            assert table_refs == in_use_refs
            assert sum(in_use_refs.values()) == sum(table_refs.values())
            # Every live cache still reads exactly its own history —
            # no scrub or CoW ever corrupted a shared holder.
            for cache, tokens in live:
                np.testing.assert_array_equal(
                    cache.k_view(),
                    np.stack([_row(t) for t in tokens]).transpose(1, 0, 2),
                )

        for _ in range(120):
            op = rng.choice(["new", "append", "release"])
            if op == "new" and len(live) < 5:
                if histories and rng.random() < 0.7:
                    base = list(histories[rng.integers(len(histories))])
                    cut = int(rng.integers(1, len(base) + 1))
                    tokens = base[:cut] + [
                        int(t) for t in rng.integers(0, 64, 2)
                    ]
                else:
                    tokens = [
                        int(t)
                        for t in rng.integers(0, 64, int(rng.integers(2, 10)))
                    ]
                cache = PagedLayerCache(pool, layer=0)
                chain = pool.match_prefix(0, tokens[:-1])
                covered = sum(fill for _, fill in chain)
                if covered:
                    cache.adopt_prefix(chain, tokens[:covered])
                try:
                    _fill_cache(cache, tokens[covered:])
                except ServingError:      # bounded pool ran dry
                    cache.release()
                    continue
                live.append((cache, tokens))
                histories.append(tokens)
            elif op == "append" and live:
                idx = int(rng.integers(len(live)))
                cache, tokens = live[idx]
                extra = [int(t) for t in rng.integers(0, 64, 1)]
                try:
                    _fill_cache(cache, extra)
                except ServingError:
                    continue
                tokens.extend(extra)
            elif op == "release" and live:
                idx = int(rng.integers(len(live)))
                cache, _ = live.pop(idx)
                cache.release()
            check()

        for cache, _ in live:
            cache.release()
        assert pool.used_blocks == 0
        assert sum(pool._refcount[bid] for bid in range(pool.capacity)) == 0
