"""ServingEngine: continuous batching, sampling, request lifecycle."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    EngineStats,
    Request,
    RuntimeConfig,
    SamplingParams,
    ServingEngine,
)

TINY = ModelConfig(
    "engine-tiny", hidden=32, ffn=64, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)


def _model(**kwargs):
    defaults = dict(weight_bits=4, kv_bits=None, max_seq_len=64)
    defaults.update(kwargs)
    return DecoderModel(TINY, RuntimeConfig(**defaults))


def _mixed_requests(n, rng, **sampling):
    requests = []
    for i in range(n):
        prompt = tuple(
            int(t) for t in rng.integers(0, TINY.vocab,
                                         int(rng.integers(2, 12)))
        )
        requests.append(Request(
            request_id=f"r{i}",
            prompt=prompt,
            max_new_tokens=int(rng.integers(2, 10)),
            sampling=SamplingParams(**sampling) if sampling
            else SamplingParams(),
        ))
    return requests


class TestContinuousBatching:
    def test_eight_concurrent_mixed_requests_complete(self):
        """The acceptance scenario: >= 8 concurrent requests with mixed
        prompt/output lengths complete via continuous batching."""
        model = _model(kv_bits=4)
        engine = ServingEngine(model, max_batch_size=4)
        requests = _mixed_requests(9, np.random.default_rng(0))
        for request in requests:
            engine.submit(request)
        results, stats = engine.run()
        assert len(results) == 9
        by_id = {r.request_id: r for r in results}
        for request in requests:
            result = by_id[request.request_id]
            assert len(result.tokens) == request.max_new_tokens
            assert result.finish_reason == "length"
            assert all(0 <= t < TINY.vocab for t in result.tokens)
        # Continuous batching actually batched: the decode loop ran with
        # more than one sequence on average, and slots were refilled
        # (more requests than slots, all completed).
        assert stats.mean_batch > 1.0
        assert max(stats.batch_occupancy) == 4
        assert stats.generated_tokens == sum(
            r.max_new_tokens for r in requests
        )
        assert stats.throughput_tok_s > 0
        assert not engine.has_work

    def test_batched_greedy_equals_solo_greedy(self):
        """Joining a batch must not change any request's greedy tokens."""
        rng = np.random.default_rng(1)
        requests = _mixed_requests(8, rng)
        solo = {}
        for request in requests:
            engine = ServingEngine(_model(), max_batch_size=1)
            engine.submit(request)
            results, _ = engine.run()
            solo[request.request_id] = results[0].tokens
        engine = ServingEngine(_model(), max_batch_size=4)
        for request in requests:
            engine.submit(request)
        results, _ = engine.run()
        for result in results:
            assert result.tokens == solo[result.request_id], (
                f"{result.request_id} diverged under batching"
            )

    def test_admission_is_fifo_and_slots_refill(self):
        model = _model()
        engine = ServingEngine(model, max_batch_size=2)
        for request in _mixed_requests(5, np.random.default_rng(2)):
            engine.submit(request)
        engine.step()
        assert len(engine.active) + len(engine.finished) == 2
        assert len(engine.waiting) == 3
        results, stats = engine.run()
        assert len(results) == 5
        assert max(stats.batch_occupancy) <= 2


class TestSampling:
    def test_greedy_is_deterministic(self):
        runs = []
        for _ in range(2):
            engine = ServingEngine(_model(), max_batch_size=3)
            for request in _mixed_requests(4, np.random.default_rng(3)):
                engine.submit(request)
            results, _ = engine.run()
            runs.append({r.request_id: r.tokens for r in results})
        assert runs[0] == runs[1]

    def test_top_k_seeded_reproducible(self):
        def run_once():
            engine = ServingEngine(_model(), max_batch_size=3)
            for request in _mixed_requests(
                4, np.random.default_rng(4), top_k=5, temperature=0.8,
                seed=42,
            ):
                engine.submit(request)
            results, _ = engine.run()
            return {r.request_id: r.tokens for r in results}

        assert run_once() == run_once()

    def test_eos_stops_early(self):
        model = _model()
        # Find the greedy first token of a probe prompt, then use it as
        # the EOS id: the request must finish after one token with "eos".
        probe = Request("probe", prompt=(1, 2, 3), max_new_tokens=8)
        engine = ServingEngine(model, max_batch_size=1)
        engine.submit(probe)
        results, _ = engine.run()
        eos = results[0].tokens[0]
        engine = ServingEngine(_model(), max_batch_size=1)
        engine.submit(Request(
            "with-eos", prompt=(1, 2, 3), max_new_tokens=8,
            eos_token_id=eos,
        ))
        results, _ = engine.run()
        assert results[0].finish_reason == "eos"
        assert results[0].tokens[-1] == eos
        assert len(results[0].tokens) < 8


class TestValidation:
    def test_oversized_request_rejected_at_submit(self):
        engine = ServingEngine(_model(max_seq_len=16))
        with pytest.raises(ServingError):
            engine.submit(Request("big", prompt=tuple(range(10)),
                                  max_new_tokens=10))

    def test_duplicate_ids_rejected(self):
        engine = ServingEngine(_model())
        engine.submit(Request("dup", prompt=(1,), max_new_tokens=1))
        with pytest.raises(ServingError):
            engine.submit(Request("dup", prompt=(2,), max_new_tokens=1))

    def test_bad_request_params(self):
        with pytest.raises(ServingError):
            Request("empty", prompt=(), max_new_tokens=1)
        with pytest.raises(ServingError):
            Request("none", prompt=(1,), max_new_tokens=0)
        with pytest.raises(ServingError):
            SamplingParams(top_k=0)
        with pytest.raises(ServingError):
            SamplingParams(temperature=0.0)

    def test_latency_includes_queue_wait(self):
        """A request stuck behind a full batch accrues latency from
        submit(), not from admission."""
        import time

        engine = ServingEngine(_model(), max_batch_size=1)
        engine.submit(Request("first", prompt=(1, 2), max_new_tokens=6))
        engine.submit(Request("queued", prompt=(3, 4), max_new_tokens=1))
        time.sleep(0.05)  # both requests age before any work happens
        results, _ = engine.run()
        by_id = {r.request_id: r for r in results}
        assert by_id["queued"].first_token_ms >= 50.0
        assert by_id["queued"].latency_ms >= by_id["queued"].first_token_ms

    def test_prefill_only_completion_counts_no_decode_step(self):
        engine = ServingEngine(_model(), max_batch_size=2)
        engine.submit(Request("one-token", prompt=(1, 2, 3),
                              max_new_tokens=1))
        # step() must surface completions that happened at admission.
        done = engine.step()
        assert [r.request_id for r in done] == ["one-token"]
        assert not engine.has_work
        results, stats = engine.run()
        assert len(results[0].tokens) == 1
        assert results[0].decode_steps == 0
        assert stats.decode_steps == 0
        assert stats.batch_occupancy == []

    def test_occupancy_percentile_empty_trace_is_zero(self):
        """Pinned regression: a run with no decode steps (every request
        completes at prefill) has an empty trace, and every occupancy
        reduction must degrade to 0.0 instead of raising the
        zero-length-percentile error numpy would."""
        stats = EngineStats(
            requests=0, prompt_tokens=0, generated_tokens=0,
            decode_steps=0, wall_s=0.0,
        )
        assert stats.batch_occupancy == []
        assert stats.occupancy_percentile(50) == 0.0
        assert stats.occupancy_p50 == 0.0
        assert stats.occupancy_p95 == 0.0
        assert stats.mean_batch == 0.0
        # End to end: prefill-only completions leave the trace empty.
        engine = ServingEngine(_model(), max_batch_size=2)
        engine.submit(Request("p0", prompt=(1, 2), max_new_tokens=1))
        engine.submit(Request("p1", prompt=(3,), max_new_tokens=1))
        _, run_stats = engine.run()
        assert run_stats.decode_steps == 0
        assert run_stats.occupancy_p50 == 0.0
        assert run_stats.occupancy_p95 == 0.0

    def test_kv_memory_bytes_matches_block_accounting(self):
        model = _model(kv_bits=4)
        caches = model.new_caches()
        model.prefill(np.arange(7), caches)
        # 7 tokens -> one block (16 tokens capacity) per layer; packed
        # INT4 entries over the full block capacity, K and V.
        block = model.kv_pool.block_size
        per_layer = (2 * TINY.kv_heads * block * TINY.head_dim * 4 + 7) // 8
        assert model.kv_memory_bytes(caches) == TINY.layers * per_layer
        assert model.kv_memory_bytes(caches) == sum(
            c.memory_bytes() for c in caches
        )
        float_model = _model(kv_bits=None)
        fc = float_model.new_caches()
        float_model.prefill(np.arange(7), fc)
        per_layer_f = 2 * TINY.kv_heads * block * TINY.head_dim * 8
        assert float_model.kv_memory_bytes(fc) == TINY.layers * per_layer_f

    def test_result_timings_populated(self):
        engine = ServingEngine(_model(), max_batch_size=2)
        for request in _mixed_requests(3, np.random.default_rng(5)):
            engine.submit(request)
        results, stats = engine.run()
        for result in results:
            assert result.prefill_ms > 0
            assert result.first_token_ms > 0
            assert result.latency_ms >= result.first_token_ms
        assert stats.prompt_tokens == sum(
            len(r.prompt) for r in results
        )
