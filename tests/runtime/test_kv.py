"""LayerKvCache: growth, incremental K quantization, padded production."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.lut.attention import (
    QuantizedKvCache,
    dequant_decode_attention,
    lut_decode_attention,
)
from repro.runtime.kv import INITIAL_CAPACITY, LayerKvCache


def _fill(cache, tokens, seed=0):
    rng = np.random.default_rng(seed)
    k = rng.normal(size=(tokens, cache.kv_heads, cache.head_dim))
    v = rng.normal(size=(tokens, cache.kv_heads, cache.head_dim))
    for i in range(tokens):
        cache.append(k[i], v[i])
    return k, v


class TestFloatState:
    def test_views_track_appends(self):
        cache = LayerKvCache(2, 8)
        k, v = _fill(cache, 5)
        assert cache.length == 5
        np.testing.assert_array_equal(cache.k_view(), k.transpose(1, 0, 2))
        np.testing.assert_array_equal(cache.v_view(), v.transpose(1, 0, 2))

    def test_bulk_append_equals_token_by_token(self):
        one = LayerKvCache(2, 8, bits=4)
        bulk = LayerKvCache(2, 8, bits=4)
        rng = np.random.default_rng(1)
        k = rng.normal(size=(7, 2, 8))
        v = rng.normal(size=(7, 2, 8))
        for i in range(7):
            one.append(k[i], v[i])
        bulk.append(k, v)
        np.testing.assert_array_equal(one.k_view(), bulk.k_view())
        np.testing.assert_array_equal(
            one.quantized()[0].k_quant[0].codes,
            bulk.quantized()[0].k_quant[0].codes,
        )

    def test_growth_preserves_history(self):
        cache = LayerKvCache(1, 4)
        k, v = _fill(cache, INITIAL_CAPACITY * 2 + 3)
        assert cache.capacity >= INITIAL_CAPACITY * 2 + 3
        np.testing.assert_array_equal(cache.k_view(), k.transpose(1, 0, 2))

    def test_shape_validation(self):
        cache = LayerKvCache(2, 8)
        with pytest.raises(ServingError):
            cache.append(np.zeros((2, 4)), np.zeros((2, 4)))
        with pytest.raises(ServingError):
            cache.append(np.zeros((2, 8)), np.zeros((3, 8)))

    def test_quantized_requires_bits(self):
        cache = LayerKvCache(2, 8)
        _fill(cache, 4)
        with pytest.raises(ServingError):
            cache.quantized()

    def test_quantized_requires_tokens(self):
        cache = LayerKvCache(2, 8, bits=4)
        with pytest.raises(ServingError):
            cache.quantized()


class TestIncrementalQuantization:
    """The incremental K codes must equal a from-scratch quantize."""

    @pytest.mark.parametrize("head_dim", [8, 16])  # 16: group-16 branch
    @pytest.mark.parametrize("tokens", [5, 12, 16])
    def test_matches_full_quantize_on_padded_floats(self, head_dim, tokens):
        cache = LayerKvCache(3, head_dim, bits=4)
        _fill(cache, tokens, seed=head_dim + tokens)
        qc, valid = cache.quantized()
        assert valid == tokens
        ctx = qc.context
        assert ctx % cache.lut_k == 0 and ctx >= tokens

        k_pad = np.zeros((3, ctx, head_dim))
        k_pad[:, :tokens] = cache.k_view()
        v_pad = np.zeros((3, ctx, head_dim))
        v_pad[:, :tokens] = cache.v_view()
        full = QuantizedKvCache.quantize(k_pad, v_pad, bits=4)
        for h in range(3):
            np.testing.assert_array_equal(
                qc.k_quant[h].codes, full.k_quant[h].codes
            )
            np.testing.assert_allclose(
                np.broadcast_to(qc.k_quant[h].scale, (ctx, head_dim)),
                np.broadcast_to(full.k_quant[h].scale, (ctx, head_dim)),
            )
            np.testing.assert_array_equal(
                qc.v_quant[h].codes, full.v_quant[h].codes
            )
            np.testing.assert_allclose(
                qc.k_quant[h].dequantize(), full.k_quant[h].dequantize()
            )

    def test_repeated_materializations_requantize_only_the_tail(self):
        """Satellite fix: V is no longer requantized wholesale per
        materialization — completed context groups freeze, only the
        partial tail (whose scales can still change) is redone."""
        cache = LayerKvCache(2, 16, bits=4)
        _fill(cache, 40, seed=3)
        cache.quantized()
        ctx = cache.padded_context()
        first = cache.v_quant_cols
        assert first == 2 * ctx               # first call: everything
        cache.quantized()
        # 40 tokens freeze 2 full groups of 16; the redone tail is just
        # the partial group + alignment padding.
        assert cache.v_quant_cols - first == 2 * (ctx - 32)
        cache.append(np.ones((2, 16)), np.ones((2, 16)))
        before = cache.v_quant_cols
        cache.quantized()
        assert cache.v_quant_cols - before == 2 * (cache.padded_context() - 32)

    def test_interleaved_appends_match_scratch_quantize(self):
        """Materializing between appends must leave the frozen groups in
        exactly the state a from-scratch quantize of the final context
        would produce."""
        rng = np.random.default_rng(17)
        cache = LayerKvCache(2, 16, bits=4)
        k = rng.normal(size=(37, 2, 16))
        v = rng.normal(size=(37, 2, 16))
        for i in range(37):
            cache.append(k[i], v[i])
            if i % 3 == 0:
                cache.quantized()
        qc, valid = cache.quantized()
        assert valid == 37
        ctx = qc.context
        k_pad = np.zeros((2, ctx, 16))
        k_pad[:, :37] = cache.k_view()
        v_pad = np.zeros((2, ctx, 16))
        v_pad[:, :37] = cache.v_view()
        full = QuantizedKvCache.quantize(k_pad, v_pad, bits=4)
        for h in range(2):
            np.testing.assert_array_equal(
                qc.v_quant[h].codes, full.v_quant[h].codes
            )
            np.testing.assert_array_equal(
                qc.v_quant[h].dequantize(), full.v_quant[h].dequantize()
            )

    def test_gqa_repeat_shares_quantized_weights(self):
        cache = LayerKvCache(2, 8, bits=4)
        _fill(cache, 4)
        qc, _ = cache.quantized(repeat=3)
        assert qc.heads == 6
        # Repetition is by reference: no extra quantization work.
        assert qc.k_quant[0] is qc.k_quant[1] is qc.k_quant[2]
        assert qc.k_quant[3] is qc.k_quant[4] is qc.k_quant[5]
        assert qc.k_quant[0] is not qc.k_quant[3]


class TestPaddedAttention:
    def test_masked_lut_equals_masked_dequant(self):
        cache = LayerKvCache(2, 8, bits=4)
        _fill(cache, 9, seed=4)  # pads to 12
        qc, valid = cache.quantized()
        q = np.random.default_rng(5).normal(size=(2, 8))
        lut = lut_decode_attention(q, qc, context_valid=valid)
        ref = dequant_decode_attention(q, qc, context_valid=valid)
        np.testing.assert_allclose(lut, ref, atol=1e-9)

    def test_padding_contributes_exactly_nothing(self):
        """Masked full computation == truncated computation.

        The padded rows' probabilities underflow to exactly 0.0, so the
        attention over the padded cache equals (to reduction-order
        noise) the attention computed over only the valid rows of the
        dequantized cache.
        """
        from repro.numerics import softmax

        cache = LayerKvCache(2, 8, bits=4)
        _fill(cache, 9, seed=6)  # pads to 12
        qc, valid = cache.quantized()
        q = np.random.default_rng(7).normal(size=(2, 8))
        masked = dequant_decode_attention(q, qc, context_valid=valid)
        for h in range(2):
            k = qc.k_quant[h].dequantize()[:valid]
            v_t = qc.v_quant[h].dequantize()[:, :valid]
            probs = softmax((k @ q[h]) / np.sqrt(8))
            np.testing.assert_allclose(masked[h], v_t @ probs, atol=1e-12)

    def test_context_valid_bounds_checked(self):
        cache = LayerKvCache(2, 8, bits=4)
        _fill(cache, 9)
        qc, _ = cache.quantized()
        q = np.zeros((2, 8))
        from repro.errors import LutError
        with pytest.raises(LutError):
            lut_decode_attention(q, qc, context_valid=0)
        with pytest.raises(LutError):
            lut_decode_attention(q, qc, context_valid=qc.context + 1)
