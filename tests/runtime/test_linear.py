"""QuantizedLinear: quantize once, plan once, dispatch per backend."""

import numpy as np
import pytest

from repro.datatypes.formats import INT8
from repro.errors import LutError
from repro.lut.mpgemm import dequant_mpgemm_reference
from repro.quant.weight import quantize_weights
from repro.runtime.linear import QuantizedLinear

BACKENDS = ("reference", "lut-naive", "lut-blocked")


class TestQuantizedLinear:
    def _weight(self, seed=0, shape=(24, 32)):
        return np.random.default_rng(seed).normal(size=shape)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_dequant_reference(self, backend):
        w = self._weight()
        linear = QuantizedLinear(w, bits=4, backend=backend)
        x = np.random.default_rng(1).normal(size=(5, 32))
        ref = dequant_mpgemm_reference(x, linear.quantized)
        np.testing.assert_allclose(linear(x), ref, atol=1e-9)

    def test_fp_mode_is_exact_matmul(self):
        w = self._weight()
        linear = QuantizedLinear(w, bits=None)
        x = np.random.default_rng(2).normal(size=(3, 32))
        np.testing.assert_array_equal(linear(x), x @ w.T)
        assert linear.plan is None
        assert linear.engine is None

    def test_accepts_prequantized_weight(self):
        qw = quantize_weights(self._weight(), 2, axis=0, symmetric=True)
        linear = QuantizedLinear(qw, backend="lut-blocked")
        assert linear.bits == 2
        x = np.random.default_rng(3).normal(size=32)
        np.testing.assert_allclose(
            linear(x), dequant_mpgemm_reference(x, qw), atol=1e-9
        )

    def test_plan_built_once_and_reused(self):
        linear = QuantizedLinear(self._weight(), bits=4)
        first = linear.plan
        x = np.random.default_rng(4).normal(size=(2, 32))
        linear(x)
        linear(x)
        assert linear.plan is first

    def test_gemv_matches_batched_row(self):
        linear = QuantizedLinear(self._weight(), bits=4,
                                 backend="lut-blocked")
        x = np.random.default_rng(5).normal(size=(4, 32))
        batched = linear(x)
        rows = np.stack([linear(x[i]) for i in range(4)])
        np.testing.assert_array_equal(batched, rows)

    def test_shapes(self):
        linear = QuantizedLinear(self._weight(), bits=4)
        assert (linear.out_features, linear.in_features) == (24, 32)
        assert linear.dequantized().shape == (24, 32)

    def test_table_dtype_needs_table_backend(self):
        linear = QuantizedLinear(
            self._weight(), bits=4, backend="reference", table_dtype=INT8
        )
        with pytest.raises(LutError):
            linear(np.zeros(32))

    def test_rejects_non_2d_weight(self):
        with pytest.raises(LutError):
            QuantizedLinear(np.zeros(8), bits=4)
        with pytest.raises(LutError):
            QuantizedLinear(np.zeros(8), bits=None)
