"""SchedulerPolicy seam: policy selection, memory-aware admission,
engine integration, per-step trace."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    Request,
    RuntimeConfig,
    SchedulingContext,
    ServingEngine,
    get_scheduler,
)
from repro.runtime.scheduler import (
    FifoPolicy,
    MemoryAwareAdmissionPolicy,
    SCHEDULERS,
    ShortestPromptFirstPolicy,
)

TINY = ModelConfig(
    "sched-tiny", hidden=32, ffn=64, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)


def _model(**kwargs):
    defaults = dict(weight_bits=4, kv_bits=None, max_seq_len=64)
    defaults.update(kwargs)
    return DecoderModel(TINY, RuntimeConfig(**defaults))


def _request(rid, prompt_len, max_new=4):
    return Request(
        request_id=rid,
        prompt=tuple(range(1, prompt_len + 1)),
        max_new_tokens=max_new,
    )


def _ctx(free_slots=2, free_blocks=None, block_size=16, layers=2):
    return SchedulingContext(
        free_slots=free_slots, free_blocks=free_blocks,
        block_size=block_size, layers=layers,
    )


class TestPolicies:
    def test_registry_and_resolution(self):
        assert set(SCHEDULERS) == {
            "fifo", "sjf", "memory-aware", "slo-aware",
        }
        assert get_scheduler("fifo").name == "fifo"
        policy = ShortestPromptFirstPolicy()
        assert get_scheduler(policy) is policy
        with pytest.raises(ServingError):
            get_scheduler("round-robin")
        with pytest.raises(ServingError):
            get_scheduler(42)

    def test_fifo_picks_head(self):
        waiting = [_request("a", 9), _request("b", 2)]
        assert FifoPolicy().select(waiting, _ctx()) == 0

    def test_sjf_picks_shortest_prompt_ties_by_arrival(self):
        waiting = [_request("a", 9), _request("b", 2), _request("c", 2)]
        assert ShortestPromptFirstPolicy().select(waiting, _ctx()) == 1

    def test_memory_aware_blocks_until_pool_fits(self):
        policy = MemoryAwareAdmissionPolicy()
        # 20 prompt + 4 new = 24 tokens -> 2 blocks x 2 layers = 4.
        waiting = [_request("big", 20)]
        assert policy.select(waiting, _ctx(free_blocks=3)) is None
        assert policy.select(waiting, _ctx(free_blocks=4)) == 0
        # Unbounded pool never blocks.
        assert policy.select(waiting, _ctx(free_blocks=None)) == 0
        # Strict FIFO: a small request behind a blocked head waits too.
        waiting = [_request("big", 20), _request("small", 2)]
        assert policy.select(waiting, _ctx(free_blocks=3)) is None

    def test_blocks_needed_arithmetic(self):
        # The cache peaks at prompt + max_new - 1 tokens: the last
        # sampled token is returned, never appended.
        ctx = _ctx(block_size=16, layers=3)
        assert ctx.blocks_needed(1, 1) == 3
        assert ctx.blocks_needed(10, 7) == 3     # peak 16 = one block
        assert ctx.blocks_needed(10, 8) == 6     # peak 17 spills over


class TestEngineIntegration:
    def test_sjf_admits_short_prompts_first(self):
        def finish_order(scheduler):
            engine = ServingEngine(_model(), max_batch_size=1,
                                   scheduler=scheduler)
            engine.submit(_request("long", 12, max_new=2))
            engine.submit(_request("short", 2, max_new=2))
            results, _ = engine.run()
            return [r.request_id for r in results]

        assert finish_order("fifo") == ["long", "short"]
        assert finish_order("sjf") == ["short", "long"]

    def test_memory_aware_backpressures_bounded_pool(self):
        """Two requests whose combined footprint exceeds the pool: FIFO
        admission crashes into pool exhaustion mid-prefill, memory-aware
        admission serializes them and completes both."""
        kwargs = dict(
            kv_bits=4, max_seq_len=32, kv_block_size=16,
            kv_pool_blocks=TINY.layers,   # exactly one sequence fits
        )
        requests = [_request("r0", 6, max_new=4), _request("r1", 7, max_new=4)]

        engine = ServingEngine(_model(**kwargs), max_batch_size=2,
                               scheduler="fifo")
        for r in requests:
            engine.submit(r)
        with pytest.raises(ServingError):
            engine.run()

        engine = ServingEngine(_model(**kwargs), max_batch_size=2,
                               scheduler="memory-aware")
        for r in requests:
            engine.submit(r)
        results, stats = engine.run()
        assert sorted(r.request_id for r in results) == ["r0", "r1"]
        assert max(t.active for t in stats.trace) == 1  # serialized
        assert engine.model.kv_pool.used_blocks == 0    # all freed

    def test_memory_aware_reserves_future_growth_of_active_sequences(self):
        """An admitted sequence's worst-case footprint is spoken for
        even before its blocks are allocated: a second request must not
        be admitted into the interim gap, or the first sequence's next
        block-boundary crossing exhausts the pool mid-decode."""
        model = _model(
            kv_bits=4, max_seq_len=32, kv_block_size=16,
            # Request A's worst case (8 + 16 = 24 tokens -> 2 blocks x
            # 2 layers) fills the pool exactly; only 2 are allocated
            # at prefill, leaving a tempting-but-reserved gap of 2.
            kv_pool_blocks=2 * TINY.layers,
        )
        engine = ServingEngine(model, max_batch_size=2,
                               scheduler="memory-aware")
        engine.submit(_request("grower", 8, max_new=16))
        engine.submit(_request("opportunist", 2, max_new=4))
        results, stats = engine.run()   # must not raise mid-decode
        assert sorted(r.request_id for r in results) == [
            "grower", "opportunist",
        ]
        assert max(t.active for t in stats.trace) == 1  # serialized
        assert model.kv_pool.used_blocks == 0

    def test_failed_admission_does_not_leak_pool_blocks(self):
        """FIFO into a too-small pool raises at prefill; the partially
        allocated sequence's blocks must return to the pool, and the
        surviving active sequence must still be able to finish."""
        model = _model(
            kv_bits=4, max_seq_len=32, kv_block_size=16,
            kv_pool_blocks=TINY.layers,
        )
        engine = ServingEngine(model, max_batch_size=2, scheduler="fifo")
        engine.submit(_request("first", 6, max_new=4))
        engine.submit(_request("second", 7, max_new=4))
        with pytest.raises(ServingError):
            engine.run()
        # Only the still-active first sequence holds blocks; the failed
        # second request's partial prefill was cleaned up.
        assert model.kv_pool.used_blocks == TINY.layers
        results, _ = engine.run()       # "second" was dropped at failure
        assert [r.request_id for r in results] == ["first"]
        assert model.kv_pool.used_blocks == 0

    def test_oversized_request_rejected_at_submit_against_pool(self):
        engine = ServingEngine(_model(
            kv_bits=4, max_seq_len=64, kv_block_size=16,
            kv_pool_blocks=TINY.layers,
        ))
        with pytest.raises(ServingError):
            engine.submit(_request("too-big", 20, max_new=4))

    def test_request_peaking_exactly_at_one_block_is_feasible(self):
        """prompt + max_new lands one past the block boundary, but the
        final sampled token is never cached: peak is exactly one block,
        so a one-block-per-layer pool must accept and serve it."""
        model = _model(kv_bits=4, max_seq_len=32, kv_block_size=16,
                       kv_pool_blocks=TINY.layers)
        engine = ServingEngine(model, scheduler="memory-aware")
        engine.submit(_request("boundary", 8, max_new=9))  # peak 16
        results, _ = engine.run()
        assert len(results[0].tokens) == 9
        assert model.kv_pool.used_blocks == 0

    def test_custom_policy_instance(self):
        class LastInFirstOut:
            name = "lifo"

            def select(self, waiting, context):
                return len(waiting) - 1

        engine = ServingEngine(_model(), max_batch_size=1,
                               scheduler=LastInFirstOut())
        engine.submit(_request("first", 3, max_new=1))
        engine.submit(_request("second", 3, max_new=1))
        results, _ = engine.run()
        assert [r.request_id for r in results] == ["second", "first"]


class TestStepTrace:
    def test_trace_records_every_decode_step(self):
        engine = ServingEngine(_model(kv_bits=4), max_batch_size=2)
        for i in range(3):
            engine.submit(_request(f"r{i}", 4 + i, max_new=3))
        results, stats = engine.run()
        assert len(results) == 3
        assert len(stats.trace) == stats.decode_steps > 0
        assert [t.step for t in stats.trace] == list(range(len(stats.trace)))
        assert [t.active for t in stats.trace] == stats.batch_occupancy
        for t in stats.trace:
            assert t.context_tokens >= t.active
            assert t.kv_blocks_used >= t.active * TINY.layers
        assert stats.occupancy_p95 >= stats.occupancy_p50 >= 1.0
        # Every completed request returned its blocks.
        assert engine.model.kv_pool.used_blocks == 0
        assert engine.model.kv_pool.stats["freed"] > 0

    def test_occupancy_percentiles_empty_run(self):
        engine = ServingEngine(_model())
        results, stats = engine.run()
        assert results == []
        assert stats.occupancy_p50 == 0.0 and stats.occupancy_p95 == 0.0
