"""Regression pins for the shared exact-width softmax helper.

PR 6/7 grew two copies of the same idea — ``paging._grouped_softmax``
(per-sequence padded context widths) and ``model._causal_softmax``
(per-row causal widths) — both summing each row's denominator over its
exact valid width to keep numpy's pairwise reduction tree stable. They
now delegate to :func:`repro.numerics.masked_width_softmax`; these tests
pin the shared helper bit-identical to verbatim copies of both former
implementations, so the dedupe is provably a pure refactor.
"""

from __future__ import annotations

import numpy as np

from repro.numerics import masked_width_softmax, softmax
from repro.runtime.model import _causal_softmax
from repro.runtime.paging import _grouped_softmax

MASKED = -1e30


def _legacy_grouped_softmax(scores: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Verbatim copy of the pre-dedupe ``paging._grouped_softmax``."""
    shifted = scores - scores.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    denom = np.empty(scores.shape[:-1] + (1,))
    for w in np.unique(widths):
        rows = widths == w
        denom[rows] = e[rows][..., : int(w)].sum(axis=-1, keepdims=True)
    return e / denom


def _legacy_causal_softmax(scores: np.ndarray, past: int) -> np.ndarray:
    """Verbatim copy of the pre-dedupe ``model._causal_softmax``."""
    shifted = scores - scores.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    denom = np.empty(shifted.shape[:-1] + (1,))
    past = int(past)
    for i in range(scores.shape[1]):
        denom[:, i, 0] = e[:, i, : past + i + 1].sum(axis=-1)
    return e / denom


def _padded_scores(rng, shape, widths):
    scores = rng.normal(size=shape) * 4.0
    idx = np.arange(shape[-1])
    mask = idx >= np.broadcast_to(
        np.asarray(widths)[..., None] if np.ndim(widths) else widths,
        shape[:-1] + (1,),
    )
    scores[np.broadcast_to(mask, shape)] = MASKED
    return scores


class TestMaskedWidthSoftmax:
    def test_bit_identical_to_legacy_grouped_softmax(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            b = int(rng.integers(1, 9))
            heads = int(rng.integers(1, 5))
            n = int(rng.integers(2, 40))
            widths = rng.integers(1, n + 1, size=b)
            scores = _padded_scores(rng, (b, heads, n), widths[:, None])
            expect = _legacy_grouped_softmax(scores, widths)
            got = masked_width_softmax(scores, widths[:, None])
            np.testing.assert_array_equal(got, expect)
            # The live paging wrapper takes the (B,) widths directly.
            np.testing.assert_array_equal(
                _grouped_softmax(scores, widths), expect
            )

    def test_bit_identical_to_legacy_causal_softmax(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            heads = int(rng.integers(1, 5))
            t = int(rng.integers(1, 12))
            past = int(rng.integers(0, 30))
            n = past + t
            widths = past + np.arange(t) + 1
            scores = _padded_scores(rng, (heads, t, n), widths)
            expect = _legacy_causal_softmax(scores, past)
            got = masked_width_softmax(scores, widths)
            np.testing.assert_array_equal(got, expect)
            # The live model wrapper takes ``past`` directly.
            np.testing.assert_array_equal(
                _causal_softmax(scores, past), expect
            )

    def test_full_width_matches_plain_softmax_rowwise(self):
        # With every row at full width there is no padding and each row
        # must match the 1-D softmax bit-for-bit.
        rng = np.random.default_rng(2)
        scores = rng.normal(size=(3, 4, 17)) * 3.0
        got = masked_width_softmax(scores, 17)
        for i in range(3):
            for j in range(4):
                np.testing.assert_array_equal(
                    got[i, j], softmax(scores[i, j])
                )

    def test_each_row_matches_its_unpadded_softmax(self):
        # Row b's leading widths[b] entries must equal softmax over the
        # unpadded widths[b]-long vector exactly — the invariant both
        # call sites rely on for batch-composition bit-invariance.
        rng = np.random.default_rng(3)
        n = 24
        widths = np.array([1, 7, 24, 13])
        scores = _padded_scores(rng, (4, 2, n), widths[:, None])
        got = masked_width_softmax(scores, widths[:, None])
        for b, w in enumerate(widths):
            for h in range(2):
                np.testing.assert_array_equal(
                    got[b, h, :w], softmax(scores[b, h, :w])
                )
                assert np.all(got[b, h, w:] == 0.0)

    def test_scalar_and_broadcast_widths_agree(self):
        rng = np.random.default_rng(4)
        scores = _padded_scores(rng, (5, 3, 10), 6)
        full = np.full((5, 3), 6)
        np.testing.assert_array_equal(
            masked_width_softmax(scores, 6),
            masked_width_softmax(scores, full),
        )
