"""Preemption and resumption: the PreemptionPolicy seam, the engine's
relief valve on a hot bounded pool, recompute-on-resume parity, and
the preemption observability surface."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    Request,
    RuntimeConfig,
    ServingEngine,
    get_preemption_policy,
)
from repro.runtime.scheduler import (
    PREEMPTION_POLICIES,
    LatestAdmittedFirstPolicy,
    PriorityRemainingPolicy,
    SchedulingContext,
)

BACKENDS = ("reference", "lut-naive", "lut-blocked")

TINY = ModelConfig(
    "preempt-tiny", hidden=32, ffn=64, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)


def _model(**kwargs):
    defaults = dict(weight_bits=4, kv_bits=4, max_seq_len=64,
                    kv_block_size=16)
    defaults.update(kwargs)
    return DecoderModel(TINY, RuntimeConfig(**defaults))


class _FakeSeq:
    def __init__(self, priority, remaining):
        self.priority = priority
        self.remaining_tokens = remaining


def _ctx():
    return SchedulingContext(
        free_slots=1, free_blocks=0, block_size=16, layers=2,
    )


class TestPolicySeam:
    def test_registry_and_resolution(self):
        assert set(PREEMPTION_POLICIES) == {
            "priority-remaining", "latest-first", "slo-aware",
        }
        assert get_preemption_policy("latest-first").name == "latest-first"
        policy = PriorityRemainingPolicy()
        assert get_preemption_policy(policy) is policy
        with pytest.raises(ServingError):
            get_preemption_policy("round-robin")
        with pytest.raises(ServingError):
            get_preemption_policy(42)

    def test_priority_remaining_ordering(self):
        """Lowest priority first; ties broken by the longest remaining
        generation, then by the latest-admitted sequence."""
        active = [
            _FakeSeq(priority=1, remaining=30),   # protected: high prio
            _FakeSeq(priority=0, remaining=5),
            _FakeSeq(priority=0, remaining=20),   # longest remaining
            _FakeSeq(priority=0, remaining=5),    # later tie -> first
        ]
        order = PriorityRemainingPolicy().select_victims(active, _ctx())
        assert order == [2, 3, 1, 0]

    def test_latest_first_ordering(self):
        active = [_FakeSeq(0, 1), _FakeSeq(0, 1), _FakeSeq(0, 1)]
        order = LatestAdmittedFirstPolicy().select_victims(active, _ctx())
        assert order == [2, 1, 0]


class TestEngineRelief:
    def test_bounded_pool_completes_via_preemption_where_fifo_stalled(self):
        """The acceptance scenario: two co-admitted growers exhaust a
        bounded pool mid-decode. PR 4's engine raised ServingError
        there; the preempting engine evicts one, finishes the other,
        resumes the victim, and completes both."""
        model = _model(kv_pool_blocks=4)
        engine = ServingEngine(model, max_batch_size=2, scheduler="fifo")
        engine.submit(Request("r0", prompt=tuple(range(1, 9)),
                              max_new_tokens=20))
        engine.submit(Request("r1", prompt=tuple(range(2, 10)),
                              max_new_tokens=20))
        results, stats = engine.run()
        assert sorted(r.request_id for r in results) == ["r0", "r1"]
        for result in results:
            assert len(result.tokens) == 20
        assert stats.preemptions >= 1
        assert stats.resumes == stats.preemptions
        assert stats.mean_resume_ms > 0.0
        by_id = {r.request_id: r for r in results}
        assert by_id["r0"].preemptions + by_id["r1"].preemptions == (
            stats.preemptions
        )
        assert any(t.preempted > 0 for t in stats.trace)
        assert model.kv_pool.used_blocks == 0
        assert not engine.has_work

    def test_preemption_respects_priority(self):
        """With equal shapes, the priority-0 request is evicted and the
        priority-1 request never is."""
        model = _model(kv_pool_blocks=4)
        engine = ServingEngine(model, max_batch_size=2, scheduler="fifo")
        engine.submit(Request("low", prompt=tuple(range(1, 9)),
                              max_new_tokens=20, priority=0))
        engine.submit(Request("high", prompt=tuple(range(2, 10)),
                              max_new_tokens=20, priority=1))
        results, stats = engine.run()
        by_id = {r.request_id: r for r in results}
        assert stats.preemptions >= 1
        assert by_id["high"].preemptions == 0
        assert by_id["low"].preemptions == stats.preemptions

    def test_latest_first_policy_protects_oldest(self):
        model = _model(kv_pool_blocks=4)
        engine = ServingEngine(
            model, max_batch_size=2, scheduler="fifo",
            preemption="latest-first",
        )
        engine.submit(Request("old", prompt=tuple(range(1, 9)),
                              max_new_tokens=20))
        engine.submit(Request("new", prompt=tuple(range(2, 10)),
                              max_new_tokens=20))
        results, stats = engine.run()
        by_id = {r.request_id: r for r in results}
        assert stats.preemptions >= 1
        assert by_id["old"].preemptions == 0

    def test_custom_policy_instance(self):
        class FirstActive:
            name = "first-active"

            def select_victims(self, active, context):
                return list(range(len(active)))

        model = _model(kv_pool_blocks=4)
        engine = ServingEngine(
            model, max_batch_size=2, scheduler="fifo",
            preemption=FirstActive(),
        )
        engine.submit(Request("a", prompt=tuple(range(1, 9)),
                              max_new_tokens=20))
        engine.submit(Request("b", prompt=tuple(range(2, 10)),
                              max_new_tokens=20))
        results, stats = engine.run()
        assert len(results) == 2
        assert stats.preemptions >= 1

    def test_single_sequence_never_preempted(self):
        """A lone active sequence that truly exceeds the pool must
        surface exhaustion, not preempt-thrash against itself."""
        model = _model(kv_pool_blocks=2, prefix_sharing=False)
        engine = ServingEngine(model, max_batch_size=1, scheduler="fifo")
        # 8 + 20 - 1 = 27 tokens -> 2 blocks x 2 layers = 4 > 2: the
        # submit guard already refuses it.
        with pytest.raises(ServingError):
            engine.submit(Request("solo", prompt=tuple(range(1, 9)),
                                  max_new_tokens=20))

    def test_preempted_requests_resume_before_new_admissions(self):
        """A preempted sequence holds completed work: when one slot is
        contested, it re-enters ahead of the waiting queue."""
        model = _model(kv_pool_blocks=8)
        engine = ServingEngine(model, max_batch_size=1, scheduler="fifo")
        engine.submit(Request("victim", prompt=tuple(range(1, 9)),
                              max_new_tokens=8))
        engine.step()
        assert [s.request.request_id for s in engine.active] == ["victim"]
        engine._preempt(engine.active[0])
        engine.submit(Request("late", prompt=(5, 6), max_new_tokens=2))
        engine.step()
        assert [s.request.request_id for s in engine.active] == ["victim"]
        assert [r.request_id for r, _ in engine.waiting] == ["late"]
        results, stats = engine.run()
        assert sorted(r.request_id for r in results) == ["late", "victim"]
        assert stats.resumes == 1

    def test_unsatisfiable_queue_raises_admission_deadlock(self):
        """A waiting request the policy declines with nothing in flight
        can never be admitted — the engine must raise, not spin."""

        class NeverAdmit:
            name = "never"

            def select(self, waiting, context):
                return None

        engine = ServingEngine(_model(), max_batch_size=1,
                               scheduler=NeverAdmit())
        engine.submit(Request("stuck", prompt=(1, 2), max_new_tokens=2))
        with pytest.raises(ServingError, match="admission deadlock"):
            engine.run()

    def test_memory_aware_discounts_live_shared_blocks(self):
        """The memory-aware gate must admit what submit's sharing
        discount admitted: worst-case blocks live donors already hold
        are adopted, not allocated (without the discount this request
        would wait forever once submitted)."""
        common = tuple(int(t) for t in (np.arange(32) * 3) % 64)
        model = _model(max_seq_len=96, kv_pool_blocks=8)
        engine = ServingEngine(model, max_batch_size=2,
                               scheduler="memory-aware")
        engine.submit(Request("seed", prompt=common + (63,),
                              max_new_tokens=16))
        engine.step()                    # seed active: 6 of 8 blocks
        # Worst case 12 > 8 privately; 12 - 4 live-shared = 8, but only
        # 2 unreserved blocks remain -> memory-aware still declines
        # while seed runs, then admits once it completes... so use a
        # request sized to fit the unreserved gap via the discount:
        # 34 + 8 - 1 = 41 tokens -> 3 blocks x 2 = 6 > 2 unreserved,
        # 6 - 4 live-shared = 2 <= 2 -> admitted concurrently.
        engine.submit(Request("rider", prompt=common + (1, 2),
                              max_new_tokens=8))
        engine.step()
        assert {s.request.request_id for s in engine.active} == {
            "seed", "rider",
        }
        results, stats = engine.run()
        assert sorted(r.request_id for r in results) == ["rider", "seed"]
        assert model.kv_pool.used_blocks == 0

    def test_unbounded_pool_never_preempts(self):
        model = _model(kv_pool_blocks=None)
        engine = ServingEngine(model, max_batch_size=2)
        engine.submit(Request("a", prompt=tuple(range(1, 9)),
                              max_new_tokens=12))
        engine.submit(Request("b", prompt=tuple(range(2, 10)),
                              max_new_tokens=12))
        results, stats = engine.run()
        assert len(results) == 2
        assert stats.preemptions == 0
        assert stats.resumes == 0


class TestResumeParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resumed_state_matches_from_scratch(self, backend):
        """The tentpole acceptance bar: after preempt (blocks released)
        and resume (re-prefill of prompt + generated through the prefix
        index), subsequent decode logits must reproduce an independent
        from-scratch computation of the same token sequence — pinned
        bit-identical on every backend (the resumed blocks carry the
        same bytes a fresh prefill writes, and both runs are chunked
        identically at the adoption boundary)."""
        rt = dict(
            weight_bits=4, kv_bits=4, backend=backend, max_seq_len=96,
        )
        prompt = tuple(int(t) for t in (np.arange(34) * 5) % TINY.vocab)

        model = DecoderModel(TINY, RuntimeConfig(**rt))
        caches = model.new_caches()
        logits = model.prefill(np.array(prompt), caches)[-1]
        generated = []
        for _ in range(3):
            token = int(np.argmax(logits))
            generated.append(token)
            logits = model.decode_step(token, caches)
        # Preempt: release everything; full prompt blocks stay parked.
        model.free_caches(caches)
        assert model.kv_pool.cached_free_blocks > 0

        # Resume: recompute-on-resume through the prefix index.
        resumed_tokens = prompt + tuple(generated)
        caches = model.new_caches()
        got = [model.prefill(np.array(resumed_tokens), caches)[-1]]
        shared = model.stats["shared_prefix_tokens"]
        assert shared >= 32        # block-table reconstruction happened
        for t in (5, 6, 7):
            got.append(model.decode_step(t, caches))

        fresh = DecoderModel(TINY, RuntimeConfig(**rt))
        caches_f = fresh.new_caches()
        fresh.prefill(np.array(resumed_tokens[:shared]), caches_f)
        want = [fresh.prefill(np.array(resumed_tokens[shared:]), caches_f)[-1]]
        for t in (5, 6, 7):
            want.append(fresh.decode_step(t, caches_f))

        np.testing.assert_array_equal(np.stack(got), np.stack(want))

    def test_preemption_is_output_transparent(self):
        """Resume replays generated tokens through the decode path, so
        a preempted run's token streams are bit-identical to the same
        workload on an unbounded pool that never preempts (LUT
        backend; decode-path replay rebuilds the exact KV state the
        eviction interrupted)."""

        def run(kv_pool_blocks):
            model = _model(kv_pool_blocks=kv_pool_blocks,
                           backend="lut-blocked")
            engine = ServingEngine(model, max_batch_size=2,
                                   scheduler="fifo")
            for rid, start in (("r0", 1), ("r1", 2)):
                engine.submit(Request(
                    rid, prompt=tuple(range(start, start + 8)),
                    max_new_tokens=20,
                ))
            results, stats = engine.run()
            return {r.request_id: r.tokens for r in results}, stats

        pressured_tokens, pressured_stats = run(kv_pool_blocks=4)
        free_tokens, free_stats = run(kv_pool_blocks=None)
        assert pressured_stats.preemptions >= 1
        assert free_stats.preemptions == 0
        assert pressured_tokens == free_tokens

    def test_engine_resume_preserves_generated_prefix_and_rng(self):
        """A resumed request keeps every token generated before the
        eviction verbatim, and seeded top-k sampling stays reproducible
        across preemption (the RNG travels with the record)."""

        def run(preemption):
            model = _model(kv_pool_blocks=4)
            engine = ServingEngine(
                model, max_batch_size=2, scheduler="fifo",
                preemption=preemption,
            )
            for rid, start in (("r0", 1), ("r1", 2)):
                engine.submit(Request(
                    rid, prompt=tuple(range(start, start + 8)),
                    max_new_tokens=20,
                ))
            results, stats = engine.run()
            return {r.request_id: r.tokens for r in results}, stats

        tokens_a, stats_a = run("priority-remaining")
        tokens_b, stats_b = run("priority-remaining")
        assert stats_a.preemptions >= 1
        assert tokens_a == tokens_b            # deterministic end to end

    def test_step_trace_records_preemption_state(self):
        model = _model(kv_pool_blocks=4)
        engine = ServingEngine(model, max_batch_size=2, scheduler="fifo")
        engine.submit(Request("r0", prompt=tuple(range(1, 9)),
                              max_new_tokens=20))
        engine.submit(Request("r1", prompt=tuple(range(2, 10)),
                              max_new_tokens=20))
        results, stats = engine.run()
        assert stats.preemptions >= 1
        assert any(t.preempted > 0 for t in stats.trace)
        # Shared blocks appear in the trace: the co-prompt prefixes of
        # r0/r1 do not overlap, but resumption re-adopts the victim's
        # own parked blocks, which briefly show as shared never; so
        # only assert the field exists and is consistent.
        for t in stats.trace:
            assert 0 <= t.kv_blocks_shared <= t.kv_blocks_used
