"""Chunked prefill parity: any chunk split == one monolithic prefill.

The chunked-prefill claim has two layers. At the **model** level,
:meth:`DecoderModel.prefill` called over any split of the prompt must
produce the same computed logit rows *and* the same cached K/V as one
whole-prompt call — bit-identical on the LUT backends (every prefill
row's numerics depend only on its absolute position, never on the
chunk boundaries), 1e-9 on ``reference`` (batched BLAS regroups last
ulps). At the **engine** level, running the same request set with
``prefill_chunk`` set must emit token streams identical to the
monolithic engine — including under pool pressure, preemption (both of
decoding and of mid-prefill sequences) and prefix sharing.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.runtime import (
    DecoderModel,
    Request,
    RuntimeConfig,
    SamplingParams,
    ServingEngine,
)

LUT_BACKENDS = ("lut-naive", "lut-blocked")
BACKENDS = LUT_BACKENDS + ("reference",)

GQA = ModelConfig(
    "chunk-gqa", hidden=32, ffn=48, layers=2, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)
THIN = ModelConfig(
    "chunk-thin", hidden=32, ffn=48, layers=1, heads=4, kv_heads=2,
    vocab=64, gated_ffn=True,
)

#: Chunk splits of a 23-token prompt: token-at-a-time, small fixed,
#: exactly the block size, and ragged (none aligned to anything).
SPLITS = {
    "ones": [1] * 23,
    "threes": [3] * 7 + [2],
    "block": [16, 7],
    "ragged": [5, 11, 7],
}


def _model(backend, kv_bits=4, **kwargs):
    return DecoderModel(GQA, RuntimeConfig(
        weight_bits=4, kv_bits=kv_bits, backend=backend, max_seq_len=64,
        **kwargs,
    ))


def _chunked_prefill(model, prompt, split):
    caches = model.new_caches()
    logits = []
    pos = 0
    for take in split:
        logits.append(model.prefill(prompt[pos:pos + take], caches))
        pos += take
    assert pos == len(prompt)
    return np.concatenate(logits), caches


def _assert_close(got, want, backend, msg=""):
    if backend == "reference":
        np.testing.assert_allclose(got, want, atol=1e-9, err_msg=msg)
    else:
        np.testing.assert_array_equal(got, want, err_msg=msg)


class TestModelChunkParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("split", SPLITS.values(), ids=SPLITS.keys())
    @pytest.mark.parametrize("kv_bits", [4, None],
                             ids=["kv-int4", "kv-float"])
    def test_any_split_matches_monolithic(self, backend, split, kv_bits):
        """Same computed rows AND the same cached K/V for every split —
        the cache equality is what licenses the engine to mix chunked
        and monolithic prefills freely."""
        model = _model(backend, kv_bits=kv_bits)
        prompt = np.random.default_rng(3).integers(0, GQA.vocab, size=23)
        mono_logits, mono_caches = _chunked_prefill(
            model, prompt, [len(prompt)]
        )
        got_logits, got_caches = _chunked_prefill(model, prompt, split)
        _assert_close(got_logits, mono_logits, backend, "logits")
        for li, (a, b) in enumerate(zip(got_caches, mono_caches)):
            assert a.length == b.length
            _assert_close(a.k_view(), b.k_view(), backend, f"K layer {li}")
            _assert_close(a.v_view(), b.v_view(), backend, f"V layer {li}")

    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_decode_after_chunked_prefill_bit_identical(self, backend):
        """Decode steps after a chunked prefill continue bit-for-bit on
        the monolithic run's trajectory."""
        model = _model(backend)
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, GQA.vocab, size=23)
        mono_logits, mono_caches = _chunked_prefill(
            model, prompt, [len(prompt)]
        )
        got_logits, got_caches = _chunked_prefill(model, prompt, [5, 11, 7])
        for token in rng.integers(0, GQA.vocab, size=6):
            a = model.decode_step(int(token), got_caches)
            b = model.decode_step(int(token), mono_caches)
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_chunked_prefill_with_prefix_adoption(self, backend):
        """adopt_prompt_prefix before the first chunk adopts exactly
        what a monolithic prefill would, and the chunked remainder stays
        bit-identical."""
        model = _model(backend, prefix_sharing=True)
        rng = np.random.default_rng(8)
        prompt = rng.integers(0, GQA.vocab, size=23)
        donor = model.new_caches()
        model.prefill(prompt, donor)            # warm the prefix index
        mono = model.new_caches()
        mono_logits = model.prefill(prompt, mono)
        chunked = model.new_caches()
        adopted = model.adopt_prompt_prefix(prompt, chunked)
        assert adopted > 0, "donor blocks must be adoptable"
        logits = []
        pos = adopted
        for take in (1, 3, len(prompt)):
            take = min(take, len(prompt) - pos)
            if take:
                logits.append(model.prefill(prompt[pos:pos + take], chunked))
                pos += take
        np.testing.assert_array_equal(
            np.concatenate(logits), mono_logits
        )
        for a, b in zip(chunked, mono):
            assert a.length == b.length
            np.testing.assert_array_equal(a.k_view(), b.k_view())

    def test_adopt_prompt_prefix_gates(self):
        """No sharing config, non-empty caches, or single-token prompts
        adopt nothing."""
        model = _model("lut-blocked", prefix_sharing=False)
        prompt = np.arange(20) % GQA.vocab
        donor = model.new_caches()
        model.prefill(prompt, donor)
        assert model.adopt_prompt_prefix(prompt, model.new_caches()) == 0
        shared = _model("lut-blocked", prefix_sharing=True)
        warm = shared.new_caches()
        shared.prefill(prompt, warm)
        busy = shared.new_caches()
        shared.prefill(prompt[:4], busy)
        assert shared.adopt_prompt_prefix(prompt, busy) == 0
        assert shared.adopt_prompt_prefix(prompt[:1],
                                          shared.new_caches()) == 0

    def test_prefill_chunk_validation(self):
        with pytest.raises(ServingError, match="prefill_chunk"):
            RuntimeConfig(weight_bits=4, prefill_chunk=0)
        with pytest.raises(ServingError, match="prefill_chunk"):
            RuntimeConfig(weight_bits=4, prefill_chunk=-3)


def _run_engine(config, runtime_kwargs, engine_kwargs, requests):
    model = DecoderModel(config, RuntimeConfig(**runtime_kwargs))
    engine = ServingEngine(model, **engine_kwargs)
    for request in requests:
        engine.submit(request)
    results, stats = engine.run()
    return {r.request_id: tuple(r.tokens) for r in results}, stats


class TestEngineChunkParity:
    @pytest.mark.parametrize("backend", LUT_BACKENDS)
    def test_streams_identical_across_chunk_sizes(self, backend):
        """Random request mixes (shared prefixes, mixed lengths) under
        the memory-aware scheduler: chunked streams == monolithic for
        every chunk size."""
        for seed in range(3):
            rng = np.random.default_rng(seed)
            shared = tuple(int(t) for t in rng.integers(0, 64, 12))
            requests = []
            for i in range(6):
                prompt = tuple(
                    int(t)
                    for t in rng.integers(0, 64, int(rng.integers(1, 30)))
                )
                if i % 3 == 0:
                    prompt = shared + prompt
                requests.append(Request(
                    f"r{i}", prompt,
                    max_new_tokens=int(rng.integers(1, 10)),
                    sampling=SamplingParams(seed=i),
                ))
            rt = dict(weight_bits=4, kv_bits=4, backend=backend,
                      max_seq_len=96, kv_pool_blocks=24)
            ek = dict(max_batch_size=4, scheduler="memory-aware",
                      preemption="latest-first")
            base, _ = _run_engine(GQA, dict(rt, prefill_chunk=None),
                                  ek, requests)
            for chunk in (1, 5, 16, 1000):
                got, _ = _run_engine(GQA, dict(rt, prefill_chunk=chunk),
                                     ek, requests)
                assert got == base, f"seed {seed} chunk {chunk}"

    def test_streams_identical_under_preemption(self):
        """A bounded FIFO pool that forces decode-growth preemption —
        including preemption of a *mid-prefill* sequence, which restarts
        from token zero — still yields identical streams."""
        rng = np.random.default_rng(7)
        requests = [
            Request("r0", tuple(int(t) for t in rng.integers(0, 64, 14)),
                    max_new_tokens=20, sampling=SamplingParams(seed=1)),
            Request("r1", tuple(int(t) for t in rng.integers(0, 64, 30)),
                    max_new_tokens=4, sampling=SamplingParams(seed=2)),
        ]
        rt = dict(weight_bits=4, kv_bits=4, backend="lut-blocked",
                  max_seq_len=64, kv_pool_blocks=3)
        ek = dict(max_batch_size=2, scheduler="fifo",
                  preemption="latest-first")
        base, base_stats = _run_engine(THIN, dict(rt, prefill_chunk=None),
                                       ek, requests)
        assert base_stats.preemptions > 0
        for chunk in (1, 3, 4, 16):
            got, stats = _run_engine(THIN, dict(rt, prefill_chunk=chunk),
                                     ek, requests)
            assert got == base, f"chunk {chunk}"
            assert stats.preemptions > 0
            assert stats.resumes == stats.preemptions

    def test_trace_reports_prefilling_sequences(self):
        """While one sequence decodes and another's prompt is still
        being chunked in, StepTrace.prefilling counts it."""
        rng = np.random.default_rng(11)
        requests = [
            Request("short", tuple(int(t) for t in rng.integers(0, 64, 2)),
                    max_new_tokens=12, sampling=SamplingParams(seed=3)),
            Request("long", tuple(int(t) for t in rng.integers(0, 64, 40)),
                    max_new_tokens=2, sampling=SamplingParams(seed=4)),
        ]
        _, stats = _run_engine(
            THIN,
            dict(weight_bits=4, kv_bits=4, backend="lut-blocked",
                 max_seq_len=64, prefill_chunk=4),
            dict(max_batch_size=2, scheduler="fifo"),
            requests,
        )
        assert any(t.prefilling > 0 for t in stats.trace)
        mono_model = DecoderModel(THIN, RuntimeConfig(
            weight_bits=4, kv_bits=4, backend="lut-blocked", max_seq_len=64,
        ))
        engine = ServingEngine(mono_model, max_batch_size=2,
                               scheduler="fifo")
        for request in requests:
            engine.submit(request)
        _, mono_stats = engine.run()
        assert all(t.prefilling == 0 for t in mono_stats.trace)

    def test_ttft_interleaving_bounds_decode_stall(self):
        """The point of chunking: with a long prompt arriving mid-run,
        chunked prefill keeps serving decode steps between chunks (the
        decode trace shows steps with the long prompt still prefilling),
        instead of one monolithic stall."""
        rng = np.random.default_rng(13)
        requests = [
            Request("active", tuple(int(t) for t in rng.integers(0, 64, 2)),
                    max_new_tokens=30, sampling=SamplingParams(seed=5)),
            Request("incoming",
                    tuple(int(t) for t in rng.integers(0, 64, 48)),
                    max_new_tokens=2, sampling=SamplingParams(seed=6)),
        ]
        _, stats = _run_engine(
            THIN,
            dict(weight_bits=4, kv_bits=4, backend="lut-blocked",
                 max_seq_len=64, prefill_chunk=4),
            dict(max_batch_size=2, scheduler="fifo"),
            requests,
        )
        overlapped = sum(
            1 for t in stats.trace if t.active and t.prefilling
        )
        assert overlapped >= 48 // 4 - 1, (
            "decode must keep stepping while the long prompt chunks in"
        )
