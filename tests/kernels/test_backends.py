"""Cross-backend equivalence and registry behavior.

The contract under test: ``lut-naive`` and ``lut-blocked`` are equal
*bit for bit* for every configuration (they perform the same scalar
operations in the same order), the ``reference`` backend is bit-equal
to :func:`dequant_mpgemm_reference`, and the LUT backends match the
reference to float accumulation noise whenever the pipeline is lossless
(``table_dtype=None``).
"""

import numpy as np
import pytest

from repro.datatypes.formats import FP16, INT8
from repro.errors import LutError
from repro.kernels import (
    DEFAULT_BACKEND,
    ENV_VAR,
    LutBlockedBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from repro.lut.gemv import lut_gemv
from repro.lut.mpgemm import (
    LutMpGemmConfig,
    LutMpGemmEngine,
    dequant_mpgemm_reference,
    lut_mpgemm,
)
from repro.quant.weight import quantize_weights


def make_case(m=3, n=8, kdim=16, bits=2, seed=0, **quant_kwargs):
    rng = np.random.default_rng(seed)
    activations = rng.normal(size=(m, kdim))
    weights = rng.normal(size=(n, kdim))
    return activations, quantize_weights(weights, bits, **quant_kwargs)


GRANULARITIES = {
    "per-tensor": {},
    "per-channel": {"axis": 0},
    "per-group": {"axis": 1, "group_size": 8},
    "symmetric": {"symmetric": True},  # zero-point exactly zero
}


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    @pytest.mark.parametrize("granularity", sorted(GRANULARITIES))
    def test_naive_and_blocked_bit_identical(self, k, bits, granularity):
        a, qw = make_case(m=3, n=11, kdim=16, bits=bits, seed=bits * 7 + k,
                          **GRANULARITIES[granularity])
        for table_dtype in (None, INT8):
            cfg = dict(k=k, table_dtype=table_dtype)
            naive = lut_mpgemm(
                a, qw, LutMpGemmConfig(**cfg, backend="lut-naive")
            )
            blocked = lut_mpgemm(
                a, qw, LutMpGemmConfig(**cfg, backend="lut-blocked")
            )
            np.testing.assert_array_equal(naive, blocked)
            if table_dtype is None:
                ref = dequant_mpgemm_reference(a, qw)
                np.testing.assert_allclose(naive, ref, atol=1e-9)

    @pytest.mark.parametrize("symmetric_table", [True, False])
    def test_bit_identical_in_both_table_modes(self, symmetric_table):
        a, qw = make_case(bits=4, seed=42)
        cfg = dict(symmetric_table=symmetric_table)
        naive = lut_mpgemm(a, qw, LutMpGemmConfig(**cfg, backend="lut-naive"))
        blocked = lut_mpgemm(
            a, qw, LutMpGemmConfig(**cfg, backend="lut-blocked")
        )
        np.testing.assert_array_equal(naive, blocked)

    def test_reference_backend_equals_dequant_reference(self):
        for act_dtype in (None, FP16):
            a, qw = make_case(bits=3, seed=9)
            out = lut_mpgemm(
                a, qw,
                LutMpGemmConfig(act_dtype=act_dtype, backend="reference"),
            )
            ref = dequant_mpgemm_reference(a, qw, act_dtype=act_dtype)
            np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("backend", ["reference", "lut-naive", "lut-blocked"])
    def test_gemv_equals_single_row_mpgemm(self, backend):
        a, qw = make_case(m=1, bits=4, seed=11)
        gemv = lut_gemv(a[0], qw, backend=backend)
        row = lut_mpgemm(a, qw, backend=backend)[0]
        np.testing.assert_array_equal(gemv, row)

    @pytest.mark.parametrize("tile_n", [1, 3, 7, 100])
    def test_blocked_tile_width_never_changes_bits(self, tile_n):
        a, qw = make_case(m=4, n=37, kdim=32, bits=4, seed=13)
        engine = LutMpGemmEngine(qw, LutMpGemmConfig(backend="lut-naive"))
        expected = engine.matmul(a)
        tiled = LutBlockedBackend(tile_n=tile_n)
        table = engine.precompute(a)
        out = tiled.execute(engine.plan, engine.config, a, table)
        np.testing.assert_array_equal(out, expected)

    def test_act_dtype_agrees_across_backends(self):
        a, qw = make_case(bits=2, seed=17)
        cfg = dict(act_dtype=FP16)
        outs = [
            lut_mpgemm(a, qw, LutMpGemmConfig(**cfg, backend=b))
            for b in ("lut-naive", "lut-blocked")
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_allclose(
            outs[0], dequant_mpgemm_reference(a, qw, act_dtype=FP16),
            atol=1e-9,
        )


class TestRegistry:
    def test_builtins_registered(self):
        assert {"reference", "lut-naive", "lut-blocked"} <= set(
            available_backends()
        )

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend_name() == DEFAULT_BACKEND
        assert get_backend().name == "lut-blocked"

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "lut-naive")
        assert resolve_backend_name() == "lut-naive"
        assert get_backend().name == "lut-naive"
        # Engines resolve lazily, so the env applies without a rebuild.
        _, qw = make_case()
        assert LutMpGemmEngine(qw).backend.name == "lut-naive"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "lut-naive")
        assert resolve_backend_name("reference") == "reference"
        _, qw = make_case()
        engine = LutMpGemmEngine(qw, LutMpGemmConfig(backend="lut-blocked"))
        assert engine.backend.name == "lut-blocked"

    def test_empty_env_falls_through_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  ")
        assert resolve_backend_name() == DEFAULT_BACKEND

    def test_unknown_backend_raises_with_choices(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with pytest.raises(LutError, match="lut-blocked"):
            get_backend("no-such-kernel")
        a, qw = make_case()
        with pytest.raises(LutError):
            lut_mpgemm(a, qw, backend="no-such-kernel")

    def test_register_and_dispatch_custom_backend(self):
        class DoublingBackend:
            name = "test-doubling"
            needs_table = False

            def execute(self, plan, config, activations, table=None):
                return 2.0 * (activations @ plan.dequantized.T)

        register_backend(DoublingBackend())
        try:
            a, qw = make_case(seed=23)
            out = lut_mpgemm(a, qw, backend="test-doubling")
            np.testing.assert_array_equal(
                out, 2.0 * dequant_mpgemm_reference(a, qw)
            )
        finally:
            unregister_backend("test-doubling")
        with pytest.raises(LutError):
            get_backend("test-doubling")

    def test_duplicate_registration_requires_replace(self):
        with pytest.raises(LutError):
            register_backend(LutBlockedBackend())  # name already taken

    def test_invalid_backend_config_rejected(self):
        with pytest.raises(LutError):
            LutMpGemmConfig(backend=123)  # type: ignore[arg-type]

    def test_tableless_backend_rejects_table_dtype(self, monkeypatch):
        """A table-less backend must not silently skip the table loss."""
        a, qw = make_case(seed=31)
        cfg = LutMpGemmConfig(table_dtype=INT8, backend="reference")
        with pytest.raises(LutError, match="table_dtype"):
            lut_mpgemm(a, qw, cfg)
        # Same guard when the selection arrives via the environment.
        monkeypatch.setenv(ENV_VAR, "reference")
        with pytest.raises(LutError, match="table_dtype"):
            lut_mpgemm(a, qw, LutMpGemmConfig(table_dtype=INT8))
        # Ternary analogue.
        from repro.quant.ternary import quantize_ternary
        from repro.lut.ternary import ternary_lut_mpgemm

        rng = np.random.default_rng(3)
        tw = quantize_ternary(rng.normal(size=(6, 12)))
        with pytest.raises(LutError, match="table_dtype"):
            ternary_lut_mpgemm(
                rng.normal(size=(2, 12)), tw,
                table_dtype=INT8, backend="reference",
            )


class TestOtherLutPaths:
    """Backend selection on the non-bit-serial LUT paths."""

    def test_ternary_backends_agree(self):
        from repro.quant.ternary import quantize_ternary
        from repro.lut.ternary import (
            ternary_dequant_reference,
            ternary_lut_mpgemm,
        )

        rng = np.random.default_rng(0)
        a = rng.normal(size=(4, 24))
        tw = quantize_ternary(rng.normal(size=(10, 24)))
        naive = ternary_lut_mpgemm(a, tw, backend="lut-naive")
        blocked = ternary_lut_mpgemm(a, tw, backend="lut-blocked")
        ref = ternary_lut_mpgemm(a, tw, backend="reference")
        np.testing.assert_array_equal(naive, blocked)
        np.testing.assert_array_equal(ref, ternary_dequant_reference(a, tw))
        np.testing.assert_allclose(naive, ref, atol=1e-9)
        with pytest.raises(LutError):
            ternary_lut_mpgemm(a, tw, backend="no-such-kernel")

    def test_fp4_backends_agree(self):
        from repro.lut.fp_weights import (
            fp4_dequant_reference,
            fp4_lut_mpgemm,
            quantize_fp4,
        )

        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 16))
        fw = quantize_fp4(rng.normal(size=(9, 16)))
        naive = fp4_lut_mpgemm(a, fw, backend="lut-naive")
        blocked = fp4_lut_mpgemm(a, fw, backend="lut-blocked")
        ref = fp4_lut_mpgemm(a, fw, backend="reference")
        np.testing.assert_allclose(naive, blocked, atol=1e-12)
        np.testing.assert_array_equal(ref, fp4_dequant_reference(a, fw))
        np.testing.assert_allclose(naive, ref, atol=1e-9)
        with pytest.raises(LutError):
            fp4_lut_mpgemm(a, fw, backend="no-such-kernel")

    def test_global_custom_backend_falls_back_on_special_paths(self, monkeypatch):
        """A registered custom backend selected via the environment must
        not break the ternary/FP4 paths, which cannot dispatch it."""
        from repro.quant.ternary import quantize_ternary
        from repro.lut.fp_weights import fp4_lut_mpgemm, quantize_fp4
        from repro.lut.ternary import ternary_lut_mpgemm

        class NullBackend:
            name = "test-null"
            needs_table = False

            def execute(self, plan, config, activations, table=None):
                return np.zeros((activations.shape[0], plan.n))

        register_backend(NullBackend())
        try:
            monkeypatch.setenv(ENV_VAR, "test-null")
            rng = np.random.default_rng(5)
            a = rng.normal(size=(2, 24))
            tw = quantize_ternary(rng.normal(size=(6, 24)))
            expected = ternary_lut_mpgemm(a, tw, backend="lut-blocked")
            np.testing.assert_array_equal(ternary_lut_mpgemm(a, tw), expected)
            a4 = rng.normal(size=(2, 16))
            fw = quantize_fp4(rng.normal(size=(6, 16)))
            np.testing.assert_array_equal(
                fp4_lut_mpgemm(a4, fw),
                fp4_lut_mpgemm(a4, fw, backend="lut-blocked"),
            )
        finally:
            unregister_backend("test-null")

    def test_accuracy_lut_executor_rejects_tableless_backend(self, monkeypatch):
        """The INT8-table accuracy mode must fail loudly rather than let
        the table-less reference backend skip the loss it measures."""
        from repro.accuracy.model import TransformerConfig, TransformerLM
        from repro.accuracy.quantize_model import LinearMode, make_executor
        from repro.errors import AccuracyError

        model = TransformerLM(
            TransformerConfig(vocab=16, dim=8, blocks=1, ctx=8), seed=0
        )
        with pytest.raises(AccuracyError, match="reference"):
            make_executor(
                model, LinearMode.LUT_INT8_TABLE, backend="reference"
            )
        monkeypatch.setenv(ENV_VAR, "reference")
        with pytest.raises(AccuracyError):
            make_executor(model, LinearMode.LUT_INT8_TABLE)
        # The env choice is pinned at build time: flipping it afterwards
        # must not reroute the executor off the LUT path.
        monkeypatch.setenv(ENV_VAR, "lut-naive")
        executor = make_executor(model, LinearMode.LUT_INT8_TABLE)
        monkeypatch.setenv(ENV_VAR, "reference")
        weight = model.linear_weights()[0]
        x = np.random.default_rng(0).normal(size=(2, weight.value.shape[1]))
        lut_out = executor(x, weight)
        assert np.abs(lut_out - x @ weight.value.T).max() > 0  # quantized

    def test_lutgemm_software_baseline_matches_reference(self):
        from repro.baselines import lutgemm_software_mpgemm

        a, qw = make_case(bits=4, seed=29)
        ref = dequant_mpgemm_reference(a, qw)
        for backend in ("lut-naive", "lut-blocked"):
            np.testing.assert_allclose(
                lutgemm_software_mpgemm(a, qw, backend=backend), ref,
                atol=1e-9,
            )
