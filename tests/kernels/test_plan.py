"""Tests for the shared offline WeightPlan."""

import numpy as np
import pytest

from repro.errors import LutError
from repro.kernels import build_weight_plan
from repro.lut.table import remap_weight_bits_offline
from repro.quant.reinterpret import reinterpret_symmetric
from repro.quant.weight import QuantizedWeight, quantize_weights


def sample_weight(bits=2, n=8, kdim=16, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return quantize_weights(rng.normal(size=(n, kdim)), bits, **kwargs)


class TestBuildWeightPlan:
    def test_shapes(self):
        plan = build_weight_plan(sample_weight(bits=3, n=8, kdim=16), k=4)
        assert (plan.n, plan.kdim, plan.ngroups, plan.bits) == (8, 16, 4, 3)
        assert plan.indices.shape == (3, 4, 8)
        low, sign = plan.sym_fold()
        assert low.shape == (3, 4, 8)
        assert sign.shape == (3, 4, 8)
        assert plan.scale_gn.shape == (4, 8)
        assert plan.zero_gn.shape == (4, 8)

    def test_sym_fold_matches_offline_remap(self):
        """The plan's (low, sign) pairs are Eq. 6's remap, pre-split."""
        plan = build_weight_plan(sample_weight(bits=4, seed=3), k=4)
        low, sign = plan.sym_fold()
        remapped = remap_weight_bits_offline(plan.indices, 4)
        half_mask = (1 << 3) - 1
        np.testing.assert_array_equal(remapped & half_mask, low)
        np.testing.assert_array_equal(
            np.where((remapped >> 3) & 1 == 1, -1.0, 1.0), sign
        )

    def test_indices_in_range(self):
        plan = build_weight_plan(sample_weight(bits=4, seed=1), k=4)
        assert plan.indices.min() >= 0 and plan.indices.max() < 16
        low, sign = plan.sym_fold()
        assert low.min() >= 0 and low.max() < 8
        assert set(np.unique(sign)) <= {-1.0, 1.0}

    def test_dequantized_cached_and_matches_source(self):
        qw = sample_weight(bits=2, seed=2)
        plan = build_weight_plan(qw, k=4)
        np.testing.assert_array_equal(plan.dequantized, qw.dequantize())
        assert plan.dequantized is plan.dequantized  # cached

    def test_accepts_reinterpreted_weight(self):
        qw = sample_weight(bits=2, seed=4)
        plan = build_weight_plan(reinterpret_symmetric(qw), k=4)
        assert plan.bits == 2

    def test_symmetric_weight_has_no_zero_point(self):
        plan = build_weight_plan(
            sample_weight(bits=2, seed=5, symmetric=True), k=4
        )
        assert not plan.has_zero_point
        assert np.all(plan.zero_gn == 0.0)

    def test_asymmetric_weight_has_zero_point(self):
        plan = build_weight_plan(sample_weight(bits=2, seed=6), k=4)
        assert plan.has_zero_point

    def test_lut_arrays_are_lazy_and_cached(self):
        """Table-less dispatch must not materialize LUT-side state.

        The dequant executors build plans for every linear weight but
        only ever read ``plan.dequantized``; the (bits, G, N) index and
        (G, N) affine arrays would dominate memory at k=1, so they stay
        unbuilt until a LUT backend asks — then build once.
        """
        from repro.kernels import get_backend
        from repro.lut.mpgemm import LutMpGemmConfig

        plan = build_weight_plan(sample_weight(bits=2, seed=9), k=4)
        acts = np.random.default_rng(9).normal(size=(2, 16))
        get_backend("reference").execute(
            plan, LutMpGemmConfig(k=4, backend="reference"), acts, None
        )
        assert plan._indices is None
        assert plan._scale_gn is None and plan._zero_gn is None
        first = plan.indices
        assert plan._indices is not None
        assert plan.indices is first

    def test_flat_lookup_indices_cached(self):
        plan = build_weight_plan(sample_weight(bits=2, seed=7), k=4)
        first = plan.flat_lookup_indices(8, True)
        assert plan.flat_lookup_indices(8, True) is first
        assert first.shape == plan.indices.shape
        # Symmetric extension doubles the per-group width.
        assert first.max() < plan.ngroups * 16

    def test_rejections(self):
        with pytest.raises(LutError):
            build_weight_plan(sample_weight(kdim=18), k=4)
        with pytest.raises(LutError):
            build_weight_plan(sample_weight(), k=0)
        with pytest.raises(LutError):
            build_weight_plan("not a weight", k=4)  # type: ignore[arg-type]
        rng = np.random.default_rng(0)
        with pytest.raises(LutError):
            build_weight_plan(quantize_weights(rng.normal(size=(8,)), 2), k=4)

    def test_group_varying_scale_rejected(self):
        qw = sample_weight(kdim=32, seed=8, axis=1, group_size=2)
        with pytest.raises(LutError):
            build_weight_plan(qw, k=4)


def _row_weights(bits, rows, kdim, seed, **kwargs):
    """Independent per-row quantized weights (the KV-cache shape)."""
    rng = np.random.default_rng(seed)
    return [
        quantize_weights(rng.normal(size=(1, kdim)), bits, **kwargs)
        for _ in range(rows)
    ]


class TestWeightPlanExtend:
    """extend() must be bit-identical to a from-scratch plan build."""

    @pytest.mark.parametrize("bits", [2, 4])
    @pytest.mark.parametrize("kwargs", [
        dict(axis=0),                          # per-row scales
        dict(axis=1, group_size=4),            # per-group along K
        dict(axis=0, symmetric=True),          # zero-point-free
    ], ids=("per-row", "grouped", "symmetric"))
    def test_extend_matches_scratch(self, bits, kwargs):
        rows = _row_weights(bits, 7, 16, seed=bits, **kwargs)
        plan = build_weight_plan(rows[0], k=4)
        # Materialize everything so extension exercises the concat path.
        plan.indices, plan.scale_gn, plan.zero_gn, plan.has_zero_point
        plan.flat_lookup_indices(1 << 3, True)
        _ = plan.dequantized
        for row in rows[1:]:
            plan.extend(row)
        scratch = build_weight_plan(
            QuantizedWeight(
                codes=np.concatenate([r.codes for r in rows], axis=0),
                scale=np.concatenate(
                    [np.broadcast_to(r.scale, r.shape) for r in rows], axis=0
                ),
                zero_point=np.concatenate(
                    [np.broadcast_to(r.zero_point, r.shape) for r in rows],
                    axis=0,
                ),
                bits=bits,
            ),
            k=4,
        )
        assert plan.n == scratch.n == 7
        np.testing.assert_array_equal(plan.indices, scratch.indices)
        np.testing.assert_array_equal(plan.scale_gn, scratch.scale_gn)
        np.testing.assert_array_equal(plan.zero_gn, scratch.zero_gn)
        assert plan.has_zero_point == scratch.has_zero_point
        np.testing.assert_array_equal(plan.dequantized, scratch.dequantized)
        np.testing.assert_array_equal(
            plan.flat_lookup_indices(1 << 3, True),
            scratch.flat_lookup_indices(1 << 3, True),
        )
        low, sign = plan.sym_fold()
        slow, ssign = scratch.sym_fold()
        np.testing.assert_array_equal(low, slow)
        np.testing.assert_array_equal(sign, ssign)

    def test_extended_plan_executes_bit_identically(self):
        """Every backend's output over an extended plan equals the
        from-scratch plan's output, bit for bit."""
        from repro.kernels import get_backend
        from repro.lut.mpgemm import LutMpGemmConfig, LutMpGemmEngine

        rows = _row_weights(4, 6, 16, seed=11, axis=1, group_size=4)
        plan = build_weight_plan(rows[0], k=4)
        for row in rows[1:]:
            plan.extend(row)
        stacked = QuantizedWeight(
            codes=np.concatenate([r.codes for r in rows], axis=0),
            scale=np.concatenate(
                [np.broadcast_to(r.scale, r.shape) for r in rows], axis=0
            ),
            zero_point=np.concatenate(
                [np.broadcast_to(r.zero_point, r.shape) for r in rows], axis=0
            ),
            bits=4,
        )
        acts = np.random.default_rng(12).normal(size=(3, 16))
        for name in ("reference", "lut-naive", "lut-blocked"):
            config = LutMpGemmConfig(k=4, backend=name)
            engine = LutMpGemmEngine(stacked, config)
            expected = engine.matmul(acts)
            backend = get_backend(name)
            table = engine.precompute(acts) if backend.needs_table else None
            got = backend.execute(plan, config, acts, table)
            np.testing.assert_array_equal(got, expected, err_msg=name)

    def test_extend_preserves_laziness(self):
        rows = _row_weights(2, 3, 16, seed=13, axis=0)
        plan = build_weight_plan(rows[0], k=4)
        plan.extend(rows[1]).extend(rows[2])
        assert plan._indices is None
        assert plan._scale_gn is None and plan._zero_gn is None
        assert plan.n == 3
        assert plan.indices.shape == (2, 4, 3)

    @pytest.mark.parametrize("bits", [2, 4])
    @pytest.mark.parametrize("kwargs", [
        dict(axis=0),                          # per-row scales
        dict(axis=1, group_size=4),            # per-group along K
        dict(axis=0, symmetric=True),          # zero-point-free
    ], ids=("per-row", "grouped", "symmetric"))
    def test_repeated_small_extensions_bit_identical_at_every_n(
        self, bits, kwargs
    ):
        """The paged-KV growth pattern: many small multi-column
        extensions whose cumulative widths land on no particular
        alignment (1, 3, 6, 11, 18, 19, 23 — crossing every power-of-2
        and LUT-group multiple in between). Unlike the end-state pins
        above, parity with a from-scratch build is asserted at EVERY
        intermediate N, on every backend, bit for bit."""
        from repro.kernels import get_backend
        from repro.lut.mpgemm import LutMpGemmConfig, LutMpGemmEngine

        rng = np.random.default_rng(100 * bits + len(kwargs))
        chunks = [
            quantize_weights(rng.normal(size=(width, 16)), bits, **kwargs)
            for width in (1, 2, 3, 5, 7, 1, 4)
        ]
        acts = rng.normal(size=(2, 16))
        plan = build_weight_plan(chunks[0], k=4)
        # Materialize so every extension exercises the concat path.
        plan.indices, plan.scale_gn, plan.zero_gn
        plan.flat_lookup_indices(1 << 3, True)
        _ = plan.dequantized
        for upto in range(1, len(chunks) + 1):
            if upto > 1:
                plan.extend(chunks[upto - 1])
            stacked = QuantizedWeight(
                codes=np.concatenate(
                    [c.codes for c in chunks[:upto]], axis=0
                ),
                scale=np.concatenate(
                    [np.broadcast_to(c.scale, c.shape)
                     for c in chunks[:upto]],
                    axis=0,
                ),
                zero_point=np.concatenate(
                    [np.broadcast_to(c.zero_point, c.shape)
                     for c in chunks[:upto]],
                    axis=0,
                ),
                bits=bits,
            )
            scratch = build_weight_plan(stacked, k=4)
            assert plan.n == scratch.n
            np.testing.assert_array_equal(plan.indices, scratch.indices)
            np.testing.assert_array_equal(plan.scale_gn, scratch.scale_gn)
            np.testing.assert_array_equal(plan.zero_gn, scratch.zero_gn)
            np.testing.assert_array_equal(
                plan.flat_lookup_indices(1 << 3, True),
                scratch.flat_lookup_indices(1 << 3, True),
            )
            for name in ("reference", "lut-naive", "lut-blocked"):
                config = LutMpGemmConfig(k=4, backend=name)
                engine = LutMpGemmEngine(stacked, config)
                backend = get_backend(name)
                table = (
                    engine.precompute(acts) if backend.needs_table else None
                )
                np.testing.assert_array_equal(
                    backend.execute(plan, config, acts, table),
                    engine.matmul(acts),
                    err_msg=f"{name} at n={plan.n}",
                )

    def test_extend_rejects_mismatches(self):
        plan = build_weight_plan(sample_weight(bits=2, n=4, kdim=16), k=4)
        with pytest.raises(LutError):
            plan.extend(sample_weight(bits=2, n=1, kdim=16), k=2)
        with pytest.raises(LutError):
            plan.extend(sample_weight(bits=2, n=1, kdim=12))
        with pytest.raises(LutError):
            plan.extend(sample_weight(bits=3, n=1, kdim=16))
