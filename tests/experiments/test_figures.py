"""Integration tests: every figure experiment reproduces the paper's shape."""

import pytest

from repro.experiments import (
    fig04_kernel_gap,
    fig11_dse_k,
    fig12_dp4_ppa,
    fig13_weight_scaling,
    fig14_tensor_core_pareto,
    fig15_kernel_sim,
    fig16_sim_accuracy,
    fig17_e2e_speedup,
    fig19_roofline,
)
from repro.hw.dotprod import DotProductKind


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig04_kernel_gap.run()

    def test_all_cells_present(self, rows):
        assert len(rows) == 12  # 4 shapes x 3 batch sizes

    def test_gemv_lut_loses_to_dequant(self, rows):
        for r in rows:
            if r.batch == 1:
                assert r.lutgemm_speedup is not None
                assert r.lutgemm_speedup < r.cutlass_speedup

    def test_large_batch_collapse_or_crash(self, rows):
        for r in rows:
            if r.batch >= 1024:
                assert r.lutgemm_speedup is None or r.lutgemm_speedup < 0.05

    def test_format(self, rows):
        text = fig04_kernel_gap.format_result(rows)
        assert "Seg.Err" in text
        assert "M0" in text


class TestFig11:
    @pytest.fixture(scope="class")
    def series(self):
        return fig11_dse_k.run()

    def test_int_peaks_at_4(self, series):
        by_name = {s.act_dtype.name: s for s in series}
        assert by_name["int8"].peak_k == 4
        assert by_name["int16"].peak_k == 4

    def test_fp16_peaks_at_5(self, series):
        by_name = {s.act_dtype.name: s for s in series}
        assert by_name["fp16"].peak_k == 5

    def test_format(self, series):
        assert "K=4" in fig11_dse_k.format_result(series)


class TestFig12:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig12_dp4_ppa.run()

    def test_lut_anchor(self, rows):
        lut = next(r for r in rows if r.label == "WINT1AFP16 LUT")
        assert lut.compute_density_tflops_mm2 == pytest.approx(61.55, rel=0.4)

    def test_mac_anchor(self, rows):
        mac = next(r for r in rows if r.label == "WFP16AFP16 MAC")
        assert mac.compute_density_tflops_mm2 == pytest.approx(3.39, rel=0.3)

    def test_lut_wins_both_groups(self, rows):
        by = {r.label: r for r in rows}
        assert (
            by["WINT1AFP16 LUT"].compute_density_tflops_mm2
            > by["WINT1AFP16 ADD"].compute_density_tflops_mm2
            > by["WFP16AFP16 MAC"].compute_density_tflops_mm2
        )
        assert (
            by["WINT1AFP8 LUT"].compute_density_tflops_mm2
            > by["WINT1AFP8 ADD"].compute_density_tflops_mm2
            > by["WFP8AFP8 MAC"].compute_density_tflops_mm2
        )


class TestFig13:
    @pytest.fixture(scope="class")
    def series(self):
        return fig13_weight_scaling.run()

    def test_four_series(self, series):
        assert len(series) == 4

    def test_ltc_flattest_growth(self, series):
        by = {s.label: s for s in series}
        mac = by["MAC WFP16AFP16"].areas_um2[4]
        ltc = by["LUT WINTXAFP16 LUT Tensor Core"]
        conv = by["LUT WINTXAFP16 Conventional"]
        assert ltc.areas_um2[4] < mac  # LTC still wins at 4 bits
        assert conv.areas_um2[4] > mac  # conventional already lost
        assert ltc.areas_um2[16] < conv.areas_um2[16]


class TestFig14:
    @pytest.fixture(scope="class")
    def panels(self):
        return fig14_tensor_core_pareto.run()

    def test_twelve_panels(self, panels):
        assert len(panels) == 12

    def test_lut_wins_every_panel(self, panels):
        for panel in panels:
            assert panel.winner is DotProductKind.LUT_TENSOR_CORE

    def test_w1_fp16_panel_optimum_m2n64k4(self, panels):
        panel = next(
            p for p in panels
            if p.weight_bits == 1 and p.act_dtype.name == "fp16"
        )
        assert panel.best[DotProductKind.LUT_TENSOR_CORE].mnk == (2, 64, 4)


class TestFig15:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig15_kernel_sim.run()

    def test_baselines_present(self, rows):
        labels = {r.label for r in rows}
        assert "A100 cuBLAS" in labels
        assert "A100 INT8 TC" in labels

    def test_lut_1x_matches_cublas(self, rows):
        cublas = next(r for r in rows if r.label == "A100 cuBLAS")
        lut1 = next(
            r for r in rows
            if r.array_scale == 1 and r.weight_bits == 1 and r.act_bits == 16
        )
        assert lut1.achieved_tflops == pytest.approx(
            cublas.achieved_tflops, rel=0.1
        )

    def test_8x_with_registers_beats_8x_stock(self, rows):
        w1 = [r for r in rows if r.weight_bits == 1 and r.act_bits == 16
              and r.array_scale == 8]
        stock = next(r for r in w1 if r.reg_scale == 1.0)
        wide = next(r for r in w1 if r.reg_scale == 8.0)
        assert wide.achieved_tflops > stock.achieved_tflops

    def test_achieved_never_exceeds_ideal(self, rows):
        for r in rows:
            assert r.achieved_tflops <= r.ideal_tflops * 1.001


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return fig16_sim_accuracy.run()

    def test_mape_near_paper(self, result):
        """Paper: 5.21% MAPE. Accept 1-9%."""
        assert 1.0 <= result.mape_pct <= 9.0

    def test_all_24_cells(self, result):
        assert len(result.cells) == 24

    def test_every_cell_reasonable(self, result):
        for cell in result.cells:
            assert cell.abs_pct_error < 0.25


class TestFig17:
    @pytest.fixture(scope="class")
    def cells(self):
        return fig17_e2e_speedup.run()

    def test_max_speedup_band(self, cells):
        """Paper: up to 8.2x; accept 6-13x given our simulator."""
        peak = fig17_e2e_speedup.max_speedup(cells)
        assert 6.0 <= peak <= 13.0

    def test_w1_beats_w2_beats_w4(self, cells):
        by_config = {}
        for c in cells:
            if c.gpu == "a100" and c.model == "opt-175b" \
                    and c.phase == "BS1SEQ2048":
                by_config[c.config] = c.speedup
        assert (
            by_config["WINT1AINT8_8x_DRM"]
            > by_config["WINT2AINT8_8x_DRM"]
            > by_config["WINT4AINT8_8x_DRM"]
        )

    def test_int8_baseline_about_2x(self, cells):
        int8 = [c.speedup for c in cells if c.config == "WINT8AINT8_M"]
        for s in int8:
            assert s == pytest.approx(2.0, rel=0.15)

    def test_real_and_model_rows_close(self, cells):
        pairs = {}
        for c in cells:
            key = (c.gpu, c.model, c.phase)
            pairs.setdefault(key, {})[c.config] = c.speedup
        for key, configs in pairs.items():
            assert configs["WFP16AFP16_R"] == pytest.approx(1.0, abs=0.15)


class TestFig19:
    @pytest.fixture(scope="class")
    def result(self):
        return fig19_roofline.run()

    def test_lut_roof_4x(self, result):
        assert result.lut_peak_flops == pytest.approx(
            4 * result.fp16_peak_flops
        )

    def test_naive_memory_bound(self, result):
        naive = result.point("WINT1AFP16 LUT naive")
        assert naive.operational_intensity < result.lut_ridge
        assert naive.achieved_flops < 0.5 * result.lut_peak_flops

    def test_optimized_compute_bound_near_peak(self, result):
        opt = result.point("WINT1AFP16 LUT + all opt. + double reg")
        assert opt.operational_intensity > result.lut_ridge
        assert opt.achieved_flops > 0.8 * result.lut_peak_flops

    def test_cutlass_near_fp16_roof(self, result):
        cutlass = result.point("WFP16AFP16 CUTLASS")
        assert cutlass.achieved_flops == pytest.approx(
            0.93 * result.fp16_peak_flops, rel=0.01
        )
