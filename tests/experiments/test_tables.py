"""Integration tests: every table experiment reproduces the paper's shape."""

import pytest

from repro.experiments import (
    table1_overall,
    table2_unpu,
    table3_accels,
    table4_fusion,
    table5_tablequant,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1_overall.run()

    def test_seven_rows(self, rows):
        assert len(rows) == 7

    def test_a100_latency_ladder(self, rows):
        """FP16 > INT8 > LUT-4X > LUT-8X in both phases."""
        a100 = rows[:4]
        prefills = [r.prefill_ms for r in a100]
        decodes = [r.decode_ms for r in a100]
        assert prefills == sorted(prefills, reverse=True)
        assert decodes == sorted(decodes, reverse=True)

    def test_speedup_bands(self, rows):
        """Paper: up to 5.51x decode speedup on A100; accept 3-7x."""
        base = rows[0]
        lut8 = rows[3]
        assert 2.5 <= base.prefill_ms / lut8.prefill_ms <= 7.0
        assert 3.0 <= base.decode_ms / lut8.decode_ms <= 7.0

    def test_lut_area_smaller_than_fp16_tc(self, rows):
        """Paper: LUT-8X uses 38.3% of the FP16 TC area/SM."""
        fp16 = rows[0]
        lut8 = rows[3]
        assert lut8.tc_area_per_sm_mm2 < fp16.tc_area_per_sm_mm2

    def test_compute_density_gain(self, rows):
        """Paper: up to 20.9x compute-density gain; accept >= 5x."""
        assert rows[2].compute_density / rows[0].compute_density >= 5.0

    def test_energy_efficiency_gain(self, rows):
        """Paper: 11.2x energy-efficiency gain; accept >= 4x."""
        assert rows[2].energy_efficiency / rows[0].energy_efficiency >= 4.0

    def test_h100_lut_improves_on_fp8(self, rows):
        h100 = rows[4:]
        assert h100[1].prefill_ms < h100[0].prefill_ms
        assert h100[2].decode_ms < h100[1].decode_ms


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_unpu.run()

    def test_paper_ladder_within_tolerance(self, rows):
        for row, target in zip(rows, (1.0, 1.317, 1.351, 1.440)):
            assert row.normalized_compute_intensity == pytest.approx(
                target, rel=0.12
            )

    def test_formatting_includes_paper_reference(self, rows):
        text = table2_unpu.format_result(rows)
        assert "1.317" in text
        assert "UNPU" in text


class TestTable3:
    def test_catalogue(self):
        rows = table3_accels.run()
        names = [r.name for r in rows]
        assert names == ["UNPU", "Ant", "Mokey", "FIGNA", "LUT Tensor Core"]
        ltc = rows[-1]
        assert ltc.compiler_stack
        assert not any(r.compiler_stack for r in rows[:-1])
        assert "TOPs/W" in ltc.energy_efficiency


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return table4_fusion.run()

    def test_six_configs(self, rows):
        assert len(rows) == 6

    def test_naive_overhead_band(self, rows):
        """Paper: 16.47% / 24.41% average separated-precompute overhead."""
        naive, fused = table4_fusion.mean_overheads(rows)
        assert 12.0 <= naive <= 28.0

    def test_fused_overhead_negligible(self, rows):
        naive, fused = table4_fusion.mean_overheads(rows)
        assert 0.5 <= fused <= 5.0

    def test_fused_always_cheaper_than_naive(self, rows):
        for r in rows:
            assert r.fused_ms < r.precompute_ms

    def test_welder_baseline_anchor(self, rows):
        opt_prefill = next(
            r for r in rows
            if r.model == "opt-175b" and r.config == "BS1SEQ2048"
        )
        assert opt_prefill.welder_ms == pytest.approx(32.38, rel=0.25)


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        # Shorter training for CI speed; the claims are robust to it.
        return table5_tablequant.run(train_steps=300, qat_steps=150)

    def test_four_rows(self, result):
        assert len(result.rows) == 4

    def test_w2_degrades_vs_fp(self, result):
        fp = result.row("FP full-size")
        quant = result.row("W2A-FP")
        assert quant.perplexity > fp.perplexity

    def test_w2_beats_half_size_fp(self, result):
        """The paper's point: a quantized big model beats a small FP one."""
        small = result.row("FP half-size")
        quant = result.row("W2A-FP")
        assert quant.perplexity < small.perplexity

    def test_table_quant_negligible(self, result):
        """Paper: PPL 7.68 -> 7.69 (~0.1%); accept < 1%."""
        assert result.table_quant_ppl_delta_pct < 1.0

    def test_task_accuracy_preserved(self, result):
        quant = result.row("W2A-FP")
        lut = result.row("W2A-LUT")
        assert abs(lut.task_accuracy - quant.task_accuracy) < 0.02
