"""bench_serving CLI surface: workload/flag registry, verdict files,
and the committed BENCH_serving.json schema."""

import json
import pathlib

import pytest

from repro.experiments.bench_serving import (
    WORKLOADS,
    _guarded,
    build_parser,
)
from repro.experiments.serving_guard import SLO_GOODPUT_FLOOR

ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestParser:
    def test_every_registered_workload_parses(self):
        parser = build_parser()
        for workload in WORKLOADS:
            assert parser.parse_args(
                ["--workload", workload]
            ).workload == workload

    def test_trace_workload_is_registered(self):
        assert "trace" in WORKLOADS

    def test_unknown_workload_is_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "does-not-exist"])

    def test_every_registered_scheduler_parses(self):
        from repro.runtime import SCHEDULERS

        parser = build_parser()
        for scheduler in SCHEDULERS:
            assert parser.parse_args(
                ["--scheduler", scheduler]
            ).scheduler == scheduler
        with pytest.raises(SystemExit):
            parser.parse_args(["--scheduler", "round-robin"])

    def test_guard_flags_default_off_and_compose(self):
        args = build_parser().parse_args([])
        assert not (args.fused_guard or args.spec_guard
                    or args.swap_guard or args.slo_guard
                    or args.router_smoke)
        assert args.json is None and args.verdict_dir is None
        args = build_parser().parse_args([
            "--fused-guard", "--spec-guard", "--swap-guard",
            "--slo-guard", "--json", "out.json",
            "--verdict-dir", "verdicts",
        ])
        assert args.fused_guard and args.spec_guard
        assert args.swap_guard and args.slo_guard
        assert args.json == "out.json"
        assert args.verdict_dir == "verdicts"


class TestVerdictFiles:
    def test_success_writes_ok_verdict_and_returns_result(self, tmp_path):
        result = _guarded(str(tmp_path), "demo", lambda: {"x": 1})
        assert result == {"x": 1}
        data = json.loads((tmp_path / "demo.json").read_text())
        assert data == {"workload": "demo", "ok": True, "detail": "passed"}

    def test_failure_writes_false_verdict_and_reraises(self, tmp_path):
        def boom():
            raise RuntimeError("goodput did not improve")

        with pytest.raises(RuntimeError):
            _guarded(str(tmp_path), "slo-guard", boom)
        data = json.loads((tmp_path / "slo-guard.json").read_text())
        assert data["workload"] == "slo-guard"
        assert data["ok"] is False
        assert "goodput did not improve" in data["detail"]

    def test_none_dir_is_a_noop(self):
        assert _guarded(None, "demo", lambda: 42) == 42


class TestCommittedBaseline:
    """The tracked BENCH_serving.json is the schema contract the JSON
    writer and the guard diff share; it must stay well-formed."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return json.loads((ROOT / "BENCH_serving.json").read_text())

    def test_top_level_sections(self, baseline):
        assert {"env", "variants", "prefill", "speculative",
                "swap", "slo"} <= set(baseline)

    def test_slo_section_schema(self, baseline):
        slo = baseline["slo"]
        assert slo["bench"] == "serving-slo-trace"
        assert slo["workload"] == "trace-pressure"
        assert slo["arrival"] == "burst"
        assert slo["requests"] > 0 and slo["total_tokens"] > 0
        assert slo["step_ms"] > 0 and slo["steps_per_s"] > 0
        # Replay parity is a hard invariant, not a measurement.
        assert all(slo["parity"].values())
        for policy in ("fifo", "slo_aware"):
            summary = slo[policy]
            assert summary["goodput_tokens"] >= 0
            assert summary["ttft_p99_ms"] > 0
            assert summary["tpot_p99_ms"] > 0
            assert {"interactive", "batch"} <= set(summary["classes"])
        # The ratio is rounded for the report; the raw counts must
        # still support it.
        assert slo["goodput_ratio"] == pytest.approx(
            slo["slo_aware"]["goodput_tokens"]
            / slo["fifo"]["goodput_tokens"], abs=0.01,
        )
        assert slo["goodput_ratio"] >= SLO_GOODPUT_FLOOR
