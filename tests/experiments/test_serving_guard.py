"""serving_guard: the BENCH_serving.json regression comparison."""

import json

import pytest

from repro.experiments.serving_guard import (
    FLOAT_SPEEDUP_FLOOR,
    MAX_REGRESSION,
    SECTIONS,
    SLO_GOODPUT_FLOOR,
    SPEC_SPEEDUP_FLOOR,
    SPEEDUP_FLOOR,
    STALL_RATIO_CEILING,
    SWAP_SPEEDUP_FLOOR,
    check_verdicts,
    compare_reports,
    main,
    variant_floor,
)


def _report(**speedups):
    return {
        "bench": "serving-fused-decode",
        "variants": {
            key: {
                "speedup": value,
                "fused_tok_s": 100.0 * value,
                "unfused_tok_s": 100.0,
            }
            for key, value in speedups.items()
        },
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = _report(a=2.6, b=2.4)
        assert compare_reports(report, report) == []

    def test_improvement_passes(self):
        assert compare_reports(_report(a=3.5), _report(a=2.5)) == []

    def test_regression_within_tolerance_passes(self):
        # 2.5 * (1 - 0.20) = 2.00, still at the floor: allowed.
        assert compare_reports(_report(a=2.0), _report(a=2.5)) == []

    def test_regression_beyond_tolerance_fails(self):
        failures = compare_reports(_report(a=2.3), _report(a=3.0))
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_floor_binds_even_against_a_slow_baseline(self):
        # Within 20% of the (bad) baseline but under the absolute 2x
        # floor: the guard must still fail.
        failures = compare_reports(_report(a=1.9), _report(a=2.0))
        assert len(failures) == 1
        assert "floor" in failures[0]

    def test_missing_variant_fails(self):
        failures = compare_reports(_report(a=2.6), _report(a=2.6, b=2.4))
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_extra_current_variant_is_ignored(self):
        # New variants may land before the baseline is regenerated.
        assert compare_reports(_report(a=2.6, b=9.9), _report(a=2.6)) == []

    def test_empty_baseline_fails(self):
        failures = compare_reports(_report(a=2.6), {"variants": {}})
        assert failures == ["baseline report has no variants"]

    def test_custom_thresholds(self):
        assert compare_reports(
            _report(a=1.5), _report(a=1.5), floor=1.0
        ) == []
        failures = compare_reports(
            _report(a=2.9), _report(a=3.0), max_regression=0.0
        )
        assert len(failures) == 1

    def test_both_failures_reported_together(self):
        failures = compare_reports(_report(a=1.5), _report(a=3.0))
        assert len(failures) == 2


class TestFloatVariants:
    def test_float_floor_is_lower(self):
        assert variant_floor("lut-blocked-fp") == FLOAT_SPEEDUP_FLOOR
        assert variant_floor("lut-blocked-int4") == SPEEDUP_FLOOR
        assert FLOAT_SPEEDUP_FLOOR < SPEEDUP_FLOOR

    def test_float_variant_skips_relative_regression(self):
        """Near-1 float ratios are noise-dominated: a relative drop
        alone must not fail the guard as long as the floor holds."""
        kwargs = {"lut-blocked-fp": 0.95}
        base = {"lut-blocked-fp": 1.3}
        assert compare_reports(_report(**kwargs), _report(**base)) == []

    def test_float_variant_floor_still_binds(self):
        failures = compare_reports(
            _report(**{"lut-blocked-fp": 0.7}),
            _report(**{"lut-blocked-fp": 1.2}),
        )
        assert len(failures) == 1
        assert "floor" in failures[0]


def _with_prefill(report, stall_ratio):
    report = dict(report)
    report["prefill"] = {
        "stall_ratio": stall_ratio,
        "ttft_p95_ratio": 1.1,
        "mono": {"stall_max_ms": 100.0},
        "chunked": {"stall_max_ms": stall_ratio * 100.0},
    }
    return report


class TestPrefillSection:
    def test_stall_within_ceiling_passes(self):
        current = _with_prefill(_report(a=2.6), 0.4)
        baseline = _with_prefill(_report(a=2.6), 0.5)
        assert compare_reports(current, baseline) == []

    def test_stall_above_ceiling_fails(self):
        current = _with_prefill(_report(a=2.6), STALL_RATIO_CEILING + 0.1)
        baseline = _with_prefill(_report(a=2.6), 0.4)
        failures = compare_reports(current, baseline)
        assert len(failures) == 1
        assert "stall" in failures[0]

    def test_missing_prefill_section_fails(self):
        baseline = _with_prefill(_report(a=2.6), 0.4)
        failures = compare_reports(_report(a=2.6), baseline)
        assert len(failures) == 1
        assert "prefill" in failures[0]

    def test_baseline_without_prefill_is_backwards_compatible(self):
        current = _with_prefill(_report(a=2.6), 0.9)
        assert compare_reports(current, _report(a=2.6)) == []


def _with_speculative(report, high_speedup, low_speedup=0.3):
    report = dict(report)
    report["speculative"] = {
        "bench": "serving-speculative",
        "variants": {
            "high-acceptance": {
                "speedup": high_speedup,
                "acceptance_rate": 0.96,
                "tokens_per_step": 6.8,
                "spec_tok_s": 100.0 * high_speedup,
                "plain_tok_s": 100.0,
            },
            "low-acceptance": {
                "speedup": low_speedup,
                "acceptance_rate": 0.0,
                "tokens_per_step": 1.0,
                "spec_tok_s": 100.0 * low_speedup,
                "plain_tok_s": 100.0,
            },
        },
    }
    return report


class TestSpeculativeSection:
    def test_above_floor_passes(self):
        current = _with_speculative(_report(a=2.6), 1.9)
        baseline = _with_speculative(_report(a=2.6), 1.8)
        assert compare_reports(current, baseline) == []

    def test_below_floor_fails(self):
        current = _with_speculative(
            _report(a=2.6), SPEC_SPEEDUP_FLOOR - 0.1
        )
        baseline = _with_speculative(_report(a=2.6), 1.8)
        failures = compare_reports(current, baseline)
        assert len(failures) == 1
        assert "speculative" in failures[0] and "floor" in failures[0]

    def test_low_acceptance_carries_no_floor(self):
        # A 0.2x low-acceptance ratio is the documented worst case,
        # not a regression.
        current = _with_speculative(_report(a=2.6), 1.9, low_speedup=0.2)
        baseline = _with_speculative(_report(a=2.6), 1.9, low_speedup=0.5)
        assert compare_reports(current, baseline) == []

    def test_missing_section_fails(self):
        baseline = _with_speculative(_report(a=2.6), 1.8)
        failures = compare_reports(_report(a=2.6), baseline)
        assert len(failures) == 1
        assert "speculative" in failures[0]

    def test_baseline_without_speculative_is_backwards_compatible(self):
        # Old baselines predating the speculative bench must keep
        # passing untouched.
        current = _with_speculative(_report(a=2.6), 0.9)
        assert compare_reports(current, _report(a=2.6)) == []

    def test_custom_spec_floor(self):
        current = _with_speculative(_report(a=2.6), 1.2)
        baseline = _with_speculative(_report(a=2.6), 1.2)
        assert compare_reports(current, baseline, spec_floor=1.1) == []
        assert len(compare_reports(current, baseline)) == 1


def _with_swap(report, speedup):
    report = dict(report)
    report["swap"] = {
        "bench": "serving-swap-resume",
        "speedup": speedup,
        "swap_resume_ms": 2.0,
        "recompute_resume_ms": 2.0 * speedup,
        "context_tokens": 257,
        "spill_mib": 1.5,
        "threshold_tokens": 64,
    }
    return report


class TestSwapSection:
    def test_above_floor_passes(self):
        current = _with_swap(_report(a=2.6), 8.0)
        baseline = _with_swap(_report(a=2.6), 6.0)
        assert compare_reports(current, baseline) == []

    def test_below_floor_fails(self):
        current = _with_swap(_report(a=2.6), SWAP_SPEEDUP_FLOOR - 0.5)
        baseline = _with_swap(_report(a=2.6), 6.0)
        failures = compare_reports(current, baseline)
        assert len(failures) == 1
        assert "swap" in failures[0] and "floor" in failures[0]

    def test_missing_section_fails(self):
        baseline = _with_swap(_report(a=2.6), 6.0)
        failures = compare_reports(_report(a=2.6), baseline)
        assert len(failures) == 1
        assert "swap" in failures[0]

    def test_baseline_without_swap_is_backwards_compatible(self):
        current = _with_swap(_report(a=2.6), 1.0)
        assert compare_reports(current, _report(a=2.6)) == []

    def test_custom_swap_floor(self):
        current = _with_swap(_report(a=2.6), 2.5)
        baseline = _with_swap(_report(a=2.6), 2.5)
        assert compare_reports(current, baseline, swap_floor=2.0) == []
        assert len(compare_reports(current, baseline)) == 1


def _with_slo(report, goodput_ratio, parity_ok=True):
    report = dict(report)
    report["slo"] = {
        "bench": "serving-slo-trace",
        "goodput_ratio": goodput_ratio,
        "requests": 40,
        "arrival": "burst",
        "parity": {
            "replay_deterministic": True,
            "router_matches_engine": True,
            "slo_aware_output_transparent": parity_ok,
        },
        "fifo": {"goodput_tokens": 100, "ttft_p99_ms": 700.0},
        "slo_aware": {
            "goodput_tokens": int(100 * goodput_ratio),
            "ttft_p99_ms": 500.0,
        },
    }
    return report


class TestSloSection:
    def test_above_floor_passes(self):
        current = _with_slo(_report(a=2.6), 1.3)
        baseline = _with_slo(_report(a=2.6), 1.2)
        assert compare_reports(current, baseline) == []

    def test_below_floor_fails(self):
        current = _with_slo(_report(a=2.6), SLO_GOODPUT_FLOOR - 0.05)
        baseline = _with_slo(_report(a=2.6), 1.3)
        failures = compare_reports(current, baseline)
        assert len(failures) == 1
        assert "slo" in failures[0] and "goodput" in failures[0]

    def test_missing_section_fails(self):
        baseline = _with_slo(_report(a=2.6), 1.3)
        failures = compare_reports(_report(a=2.6), baseline)
        assert len(failures) == 1
        assert "slo" in failures[0] and "missing" in failures[0]

    def test_baseline_without_slo_is_backwards_compatible(self):
        current = _with_slo(_report(a=2.6), 0.5)
        assert compare_reports(current, _report(a=2.6)) == []

    def test_broken_parity_fails_even_above_floor(self):
        current = _with_slo(_report(a=2.6), 1.5, parity_ok=False)
        baseline = _with_slo(_report(a=2.6), 1.2)
        failures = compare_reports(current, baseline)
        assert len(failures) == 1
        assert "parity" in failures[0]
        assert "slo_aware_output_transparent" in failures[0]

    def test_custom_slo_floor(self):
        current = _with_slo(_report(a=2.6), 1.05)
        baseline = _with_slo(_report(a=2.6), 1.05)
        assert compare_reports(current, baseline, slo_floor=1.0) == []
        assert len(compare_reports(current, baseline)) == 1


class TestSectionsFilter:
    def test_slo_only_report_passes_against_full_baseline(self):
        """The CI slo-guard step's BENCH_slo.json carries only env +
        slo; --sections slo must not trip the missing-variant checks."""
        current = _with_slo({"env": {}}, 1.3)
        baseline = _with_slo(
            _with_swap(_with_prefill(_report(a=2.6), 0.4), 6.0), 1.2,
        )
        assert compare_reports(
            current, baseline, sections={"slo"}
        ) == []
        # Without the filter the same pair fails on every other section.
        assert len(compare_reports(current, baseline)) >= 3

    def test_excluding_slo_skips_its_floor(self):
        current = _with_slo(_report(a=2.6), 0.5)   # under the floor
        baseline = _with_slo(_report(a=2.6), 1.2)
        assert compare_reports(
            current, baseline, sections={"variants"}
        ) == []

    def test_unknown_section_raises(self):
        with pytest.raises(ValueError):
            compare_reports(
                _report(a=2.6), _report(a=2.6), sections={"latency"}
            )
        assert set(SECTIONS) == {
            "variants", "prefill", "speculative", "swap", "slo",
        }


class TestCheckVerdicts:
    def _verdict(self, directory, name, ok, detail="passed"):
        (directory / f"{name}.json").write_text(json.dumps(
            {"workload": name, "ok": ok, "detail": detail}
        ))

    def test_all_ok_passes(self, tmp_path):
        for name in ("shared-prefix", "slo-guard"):
            self._verdict(tmp_path, name, True)
        lines, failures = check_verdicts(
            tmp_path, ["shared-prefix", "slo-guard"]
        )
        assert failures == []
        assert len(lines) == 2

    def test_failed_verdict_fails(self, tmp_path):
        self._verdict(tmp_path, "slo-guard", False,
                      "ServingError: goodput did not improve")
        _, failures = check_verdicts(tmp_path, ["slo-guard"])
        assert len(failures) == 1
        assert "goodput did not improve" in failures[0]

    def test_missing_expected_verdict_fails(self, tmp_path):
        self._verdict(tmp_path, "shared-prefix", True)
        _, failures = check_verdicts(
            tmp_path, ["shared-prefix", "swap-guard"]
        )
        assert len(failures) == 1
        assert "swap-guard" in failures[0]

    def test_empty_or_missing_dir_fails(self, tmp_path):
        _, failures = check_verdicts(tmp_path / "nope", [])
        assert failures
        _, failures = check_verdicts(tmp_path, [])
        assert failures

    def test_unreadable_verdict_fails(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json")
        _, failures = check_verdicts(tmp_path, [])
        assert any("broken" in f for f in failures)


class TestCli:
    def _write(self, path, report):
        path.write_text(json.dumps(report))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        current = self._write(tmp_path / "cur.json", _report(a=2.6))
        baseline = self._write(tmp_path / "base.json", _report(a=2.5))
        assert main([current, baseline]) == 0
        out = capsys.readouterr().out
        assert "serving-perf-guard OK" in out

    def test_fail_exit_one(self, tmp_path, capsys):
        current = self._write(tmp_path / "cur.json", _report(a=1.5))
        baseline = self._write(tmp_path / "base.json", _report(a=3.0))
        assert main([current, baseline]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_threshold_flags(self, tmp_path):
        current = self._write(tmp_path / "cur.json", _report(a=1.5))
        baseline = self._write(tmp_path / "base.json", _report(a=1.5))
        assert main([current, baseline]) == 1
        assert main([current, baseline, "--floor", "1.4"]) == 0

    def test_spec_floor_flag_and_row_printed(self, tmp_path, capsys):
        current = self._write(
            tmp_path / "cur.json",
            _with_speculative(_report(a=2.6), 1.3),
        )
        baseline = self._write(
            tmp_path / "base.json",
            _with_speculative(_report(a=2.6), 1.8),
        )
        assert main([current, baseline]) == 1
        assert main([current, baseline, "--spec-floor", "1.2"]) == 0
        out = capsys.readouterr().out
        assert "speculative/high-acceptance" in out

    def test_swap_floor_flag_and_row_printed(self, tmp_path, capsys):
        current = self._write(
            tmp_path / "cur.json", _with_swap(_report(a=2.6), 2.5)
        )
        baseline = self._write(
            tmp_path / "base.json", _with_swap(_report(a=2.6), 6.0)
        )
        assert main([current, baseline]) == 1
        assert main([current, baseline, "--swap-floor", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "swap: resume speedup" in out

    def test_slo_floor_flag_and_row_printed(self, tmp_path, capsys):
        current = self._write(
            tmp_path / "cur.json", _with_slo(_report(a=2.6), 1.05)
        )
        baseline = self._write(
            tmp_path / "base.json", _with_slo(_report(a=2.6), 1.3)
        )
        assert main([current, baseline]) == 1
        assert main([current, baseline, "--slo-floor", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "slo: slo-aware goodput" in out

    def test_sections_flag_filters_the_diff(self, tmp_path, capsys):
        current = self._write(
            tmp_path / "slo_only.json", _with_slo({"env": {}}, 1.3)
        )
        baseline = self._write(
            tmp_path / "base.json", _with_slo(_report(a=2.6), 1.2)
        )
        assert main([current, baseline]) == 1
        assert main([current, baseline, "--sections", "slo"]) == 0
        out = capsys.readouterr().out
        assert "serving-perf-guard OK (slo sections)" in out

    def test_unknown_section_flag_errors(self, tmp_path):
        current = self._write(tmp_path / "cur.json", _report(a=2.6))
        with pytest.raises(SystemExit):
            main([current, current, "--sections", "latency"])

    def test_missing_positionals_without_verdict_mode_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_check_verdicts_mode(self, tmp_path, capsys):
        (tmp_path / "slo-guard.json").write_text(json.dumps(
            {"workload": "slo-guard", "ok": True, "detail": "passed"}
        ))
        assert main([
            "--check-verdicts", str(tmp_path), "--expect", "slo-guard",
        ]) == 0
        assert "serving-verdict-guard OK" in capsys.readouterr().out
        assert main([
            "--check-verdicts", str(tmp_path),
            "--expect", "slo-guard", "swap-guard",
        ]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_env_provenance_printed_on_failure(self, tmp_path, capsys):
        report = _report(a=1.5)
        report["env"] = {
            "numpy": "9.9.9", "python": "3.11.7",
            "platform": "TestOS-1.0", "cpus": 64,
        }
        current = self._write(tmp_path / "cur.json", report)
        baseline = self._write(tmp_path / "base.json", _report(a=3.0))
        assert main([current, baseline]) == 1
        out = capsys.readouterr().out
        assert "current env: numpy 9.9.9" in out
        assert "64 cpus" in out


class TestBaselineFile:
    def test_committed_baseline_is_well_formed(self):
        """The tracked BENCH_serving.json must parse and satisfy its
        own guard thresholds (a baseline under the floor could never
        pass CI again)."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        baseline = json.loads((root / "BENCH_serving.json").read_text())
        assert baseline["bench"] == "serving-fused-decode"
        for key, row in baseline["variants"].items():
            assert float(row["speedup"]) >= variant_floor(key), key
            assert float(row["fused_tok_s"]) > 0
            assert float(row["unfused_tok_s"]) > 0
            assert 0.0 < MAX_REGRESSION < 1.0
        assert any(key.endswith("-fp") for key in baseline["variants"]), (
            "the float-KV fused variant must be tracked"
        )
        prefill = baseline["prefill"]
        assert float(prefill["stall_ratio"]) <= STALL_RATIO_CEILING
        assert prefill["chunked"]["stall_max_ms"] > 0
        spec = baseline["speculative"]["variants"]
        high = spec["high-acceptance"]
        assert float(high["speedup"]) >= SPEC_SPEEDUP_FLOOR
        assert float(high["acceptance_rate"]) > 0.8
        assert "low-acceptance" in spec
        swap = baseline["swap"]
        assert float(swap["speedup"]) >= SWAP_SPEEDUP_FLOOR
        assert int(swap["context_tokens"]) >= 256
        assert float(swap["spill_mib"]) > 0
        slo = baseline["slo"]
        assert float(slo["goodput_ratio"]) >= SLO_GOODPUT_FLOOR
        assert all(slo["parity"].values())
        env = baseline["env"]
        assert env["numpy"] and env["platform"] and env["cpus"] > 0
        assert compare_reports(baseline, baseline) == []
