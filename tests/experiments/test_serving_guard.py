"""serving_guard: the BENCH_serving.json regression comparison."""

import json

import pytest

from repro.experiments.serving_guard import (
    MAX_REGRESSION,
    SPEEDUP_FLOOR,
    compare_reports,
    main,
)


def _report(**speedups):
    return {
        "bench": "serving-fused-decode",
        "variants": {
            key: {
                "speedup": value,
                "fused_tok_s": 100.0 * value,
                "unfused_tok_s": 100.0,
            }
            for key, value in speedups.items()
        },
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = _report(a=2.6, b=2.4)
        assert compare_reports(report, report) == []

    def test_improvement_passes(self):
        assert compare_reports(_report(a=3.5), _report(a=2.5)) == []

    def test_regression_within_tolerance_passes(self):
        # 2.5 * (1 - 0.20) = 2.00, still at the floor: allowed.
        assert compare_reports(_report(a=2.0), _report(a=2.5)) == []

    def test_regression_beyond_tolerance_fails(self):
        failures = compare_reports(_report(a=2.3), _report(a=3.0))
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_floor_binds_even_against_a_slow_baseline(self):
        # Within 20% of the (bad) baseline but under the absolute 2x
        # floor: the guard must still fail.
        failures = compare_reports(_report(a=1.9), _report(a=2.0))
        assert len(failures) == 1
        assert "floor" in failures[0]

    def test_missing_variant_fails(self):
        failures = compare_reports(_report(a=2.6), _report(a=2.6, b=2.4))
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_extra_current_variant_is_ignored(self):
        # New variants may land before the baseline is regenerated.
        assert compare_reports(_report(a=2.6, b=9.9), _report(a=2.6)) == []

    def test_empty_baseline_fails(self):
        failures = compare_reports(_report(a=2.6), {"variants": {}})
        assert failures == ["baseline report has no variants"]

    def test_custom_thresholds(self):
        assert compare_reports(
            _report(a=1.5), _report(a=1.5), floor=1.0
        ) == []
        failures = compare_reports(
            _report(a=2.9), _report(a=3.0), max_regression=0.0
        )
        assert len(failures) == 1

    def test_both_failures_reported_together(self):
        failures = compare_reports(_report(a=1.5), _report(a=3.0))
        assert len(failures) == 2


class TestCli:
    def _write(self, path, report):
        path.write_text(json.dumps(report))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        current = self._write(tmp_path / "cur.json", _report(a=2.6))
        baseline = self._write(tmp_path / "base.json", _report(a=2.5))
        assert main([current, baseline]) == 0
        out = capsys.readouterr().out
        assert "serving-perf-guard OK" in out

    def test_fail_exit_one(self, tmp_path, capsys):
        current = self._write(tmp_path / "cur.json", _report(a=1.5))
        baseline = self._write(tmp_path / "base.json", _report(a=3.0))
        assert main([current, baseline]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_threshold_flags(self, tmp_path):
        current = self._write(tmp_path / "cur.json", _report(a=1.5))
        baseline = self._write(tmp_path / "base.json", _report(a=1.5))
        assert main([current, baseline]) == 1
        assert main([current, baseline, "--floor", "1.4"]) == 0


class TestBaselineFile:
    def test_committed_baseline_is_well_formed(self):
        """The tracked BENCH_serving.json must parse and satisfy its
        own guard thresholds (a baseline under the floor could never
        pass CI again)."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        baseline = json.loads((root / "BENCH_serving.json").read_text())
        assert baseline["bench"] == "serving-fused-decode"
        for key, row in baseline["variants"].items():
            assert float(row["speedup"]) >= SPEEDUP_FLOOR, key
            assert float(row["fused_tok_s"]) > 0
            assert float(row["unfused_tok_s"]) > 0
            assert 0.0 < MAX_REGRESSION < 1.0
        assert compare_reports(baseline, baseline) == []
