"""Tests for the experiment runner CLI and the public package surface."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import main, run_experiment


class TestRunner:
    def test_registry_complete(self):
        """Every evaluation table/figure plus the ablations is wired up."""
        expected = {
            "fig4", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "fig18", "fig19",
            "table1", "table2", "table3", "table4", "table5",
            "ablation_sw", "ablation_kv", "sensitivity",
            "bench_backends", "bench_serving",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_every_module_has_run_and_format(self):
        for name, module in ALL_EXPERIMENTS.items():
            assert callable(module.run), name
            assert callable(module.format_result), name

    def test_run_experiment_produces_text(self):
        text = run_experiment("fig12")
        assert "Figure 12" in text
        assert "TFLOPs/mm^2" in text

    def test_main_lists_without_args(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "available experiments" in out

    def test_main_runs_named_experiments(self, capsys):
        assert main(["fig19", "table3"]) == 0
        out = capsys.readouterr().out
        assert "=== fig19" in out
        assert "=== table3" in out

    def test_main_rejects_unknown(self, capsys):
        assert main(["fig99"]) == 2


class TestPublicApi:
    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("package", [
        "repro.datatypes", "repro.quant", "repro.lut", "repro.isa",
        "repro.hw", "repro.compiler", "repro.sim", "repro.models",
        "repro.baselines", "repro.accuracy", "repro.kernels",
    ])
    def test_subpackage_all_exports_resolve(self, package):
        import importlib

        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"

    def test_quickstart_snippet_from_readme(self):
        """The README's quickstart code runs as written."""
        import numpy as np

        from repro import (
            LutMpGemmEngine,
            dequant_mpgemm_reference,
            quantize_weights,
        )
        from repro.datatypes import FP16, INT8
        from repro.lut.mpgemm import LutMpGemmConfig

        w = np.random.default_rng(0).normal(size=(64, 128))
        a = np.random.default_rng(1).normal(size=(8, 128))
        qw = quantize_weights(w, bits=2, axis=0)
        engine = LutMpGemmEngine(
            qw, LutMpGemmConfig(act_dtype=FP16, table_dtype=INT8)
        )
        out = engine.matmul(a)
        ref = dequant_mpgemm_reference(a, qw, act_dtype=FP16)
        rel = np.abs(out - ref).max() / np.abs(ref).max()
        assert rel < 0.01
