"""Tests for the experiment harness: registry, cache, artifacts, CLI."""

import csv
import json

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.meta import ExperimentMeta
from repro.experiments.harness import (
    ResultCache,
    cache_key,
    csv_rows,
    execute,
    get_registry,
    get_spec,
    resolve,
    run_many,
    to_jsonable,
)
from repro.experiments.harness.cli import main

#: Cheap experiments used throughout (sub-100ms each).
CHEAP = "fig19"
CHEAP_TABULAR = "fig12"


class TestRegistry:
    def test_every_experiment_declares_meta(self):
        for name, spec in get_registry().items():
            assert isinstance(spec.meta, ExperimentMeta), name
            assert spec.meta.paper_ref != "-", name
            assert spec.meta.kind in ("figure", "table", "ablation"), name
            assert spec.meta.kind in spec.meta.all_tags

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError, match="fig99"):
            get_spec("fig99")
        with pytest.raises(ExperimentError, match="unknown experiments"):
            resolve(["fig4", "fig99"])

    def test_resolve_all_keeps_registry_order(self):
        specs = resolve(["all"])
        assert [s.name for s in specs] == list(get_registry())
        # "all" mixed with explicit names still selects everything.
        assert [s.name for s in resolve(["fig4", "all"])] == list(get_registry())

    def test_resolve_deduplicates_and_reorders(self):
        specs = resolve(["table1", "fig4", "table1"])
        assert [s.name for s in specs] == ["fig4", "table1"]

    def test_tag_filtering(self):
        hardware = resolve(tags=["hardware"])
        assert {"fig11", "fig12", "fig13"} <= {s.name for s in hardware}
        assert all("hardware" in s.meta.all_tags for s in hardware)
        # Kind is an implicit tag.
        assert {s.name for s in resolve(tags=["table"])} == {
            "table1", "table2", "table3", "table4", "table5"
        }
        # Tags also restrict an explicit selection.
        assert [s.name for s in resolve(["fig4", "table5"], tags=["accuracy"])
                ] == ["table5"]

    def test_unknown_tag_raises(self):
        with pytest.raises(ExperimentError, match="unknown tags"):
            resolve(tags=["no-such-tag"])

    def test_empty_selection_raises(self):
        with pytest.raises(ExperimentError, match="matched no experiments"):
            resolve(["fig4"], tags=["accuracy"])


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = execute(CHEAP, cache=cache)
        assert not first.cached
        assert first.value is not None
        second = execute(CHEAP, cache=cache)
        assert second.cached
        assert second.text == first.text
        assert second.data == first.data
        assert second.key == first.key

    def test_force_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        execute(CHEAP, cache=cache)
        forced = execute(CHEAP, cache=cache, force=True)
        assert not forced.cached

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        execute(CHEAP, cache=cache)
        assert cache.clear() == 1
        assert not execute(CHEAP, cache=cache).cached

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run = execute(CHEAP, cache=cache)
        [entry] = list(cache.directory.glob("*.json"))
        entry.write_text("{not json")
        assert not execute(CHEAP, cache=cache).cached
        assert run.key == cache_key(get_spec(CHEAP))

    def test_key_depends_on_config(self):
        spec = get_spec(CHEAP)
        other = get_spec(CHEAP_TABULAR)
        assert cache_key(spec) != cache_key(other)
        assert cache_key(spec) == cache_key(spec)

    def test_uncacheable_experiment_never_hits_cache(self, tmp_path, monkeypatch):
        """cacheable=False metas (wall-clock benches) bypass the cache."""
        import dataclasses

        spec = get_spec(CHEAP)
        uncacheable = dataclasses.replace(
            spec, meta=dataclasses.replace(spec.meta, cacheable=False)
        )
        monkeypatch.setitem(get_registry(), CHEAP, uncacheable)
        cache = ResultCache(tmp_path / "cache")
        first = execute(CHEAP, cache=cache)
        assert not first.cached
        assert list(cache.directory.glob("*.json")) == []  # nothing stored
        assert not execute(CHEAP, cache=cache).cached
        [run] = run_many([get_spec(CHEAP)], cache=cache)
        assert not run.cached
        assert list(cache.directory.glob("*.json")) == []

    def test_bench_backends_is_uncacheable(self):
        assert get_spec("bench_backends").meta.cacheable is False
        # Timings must also never compete with pool siblings for cores.
        assert get_spec("bench_backends").meta.parallelizable is False

    def test_bench_serving_is_uncacheable(self):
        # Serving throughput numbers are wall-clock measurements too.
        assert get_spec("bench_serving").meta.cacheable is False
        assert get_spec("bench_serving").meta.parallelizable is False
        # Everything else stays cacheable (the timing bench is special).
        assert get_spec(CHEAP).meta.cacheable is True
        assert get_spec(CHEAP).meta.parallelizable is True

    def test_non_parallelizable_runs_serially_after_pool(self, tmp_path, monkeypatch):
        """run_many keeps non-parallelizable specs out of the worker pool
        but still returns every run in request order."""
        import dataclasses

        spec = get_spec(CHEAP)
        held_out = dataclasses.replace(
            spec,
            meta=dataclasses.replace(
                spec.meta, cacheable=False, parallelizable=False
            ),
        )
        monkeypatch.setitem(get_registry(), CHEAP, held_out)
        specs = resolve([CHEAP, CHEAP_TABULAR, "fig13"])
        runs = run_many(specs, jobs=2, cache=ResultCache(tmp_path / "c"))
        assert [r.name for r in runs] == [s.name for s in specs]
        assert all(not r.cached for r in runs)
        assert runs[0].text  # the serial run still produced its result


class TestSerialization:
    def test_to_jsonable_handles_numpy_and_dataclasses(self):
        run = execute(CHEAP)
        json.dumps(run.data)  # must round-trip
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.arange(3)) == [0, 1, 2]
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_csv_rows_tabular_and_scalar(self):
        rows = csv_rows([{"a": 1, "b": {"c": 2}}, {"a": 3, "d": [4, 5]}])
        assert rows[0] == {"a": 1, "b.c": 2}
        assert rows[1] == {"a": 3, "d": "[4, 5]"}
        assert csv_rows("not tabular") == []
        assert csv_rows([]) == []


class TestExecutor:
    def test_run_many_preserves_request_order(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = resolve([CHEAP_TABULAR, CHEAP])
        runs = run_many(specs, jobs=2, cache=cache)
        assert [r.name for r in runs] == [s.name for s in specs]
        assert all(not r.cached for r in runs)
        again = run_many(specs, jobs=2, cache=cache)
        assert all(r.cached for r in again)
        assert [r.text for r in again] == [r.text for r in runs]


class TestCli:
    def test_run_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99", "--no-cache", "--no-artifacts"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_nothing_selected_exits_2(self, capsys):
        assert main(["run"]) == 2
        assert "nothing selected" in capsys.readouterr().err

    def test_list_tag_filter(self, capsys):
        assert main(["list", "--tag", "accuracy", "--format", "json"]) == 0
        names = [e["name"] for e in json.loads(capsys.readouterr().out)]
        assert "table5" in names and "fig16" in names
        assert "fig12" not in names

    def test_run_writes_artifacts(self, tmp_path, capsys):
        art = tmp_path / "artifacts"
        assert main(["run", CHEAP, CHEAP_TABULAR,
                     "--artifacts-dir", str(art)]) == 0
        out = capsys.readouterr().out
        assert f"=== {CHEAP} " in out

        envelope = json.loads((art / f"{CHEAP_TABULAR}.json").read_text())
        for field in ("schema_version", "name", "title", "paper_ref",
                      "kind", "tags", "config", "cache_key", "cached",
                      "elapsed_s", "data"):
            assert field in envelope, field
        assert envelope["name"] == CHEAP_TABULAR
        assert envelope["kind"] == "figure"
        assert isinstance(envelope["data"], list)

        with (art / f"{CHEAP_TABULAR}.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(envelope["data"])
        assert "compute_density_tflops_mm2" in rows[0]

        manifest = json.loads((art / "manifest.json").read_text())
        # resolve() normalizes to registry order: fig12 before fig19.
        assert [e["name"] for e in manifest] == [CHEAP_TABULAR, CHEAP]
        report = (art / "report.txt").read_text()
        assert f"=== {CHEAP} " in report

        # Second invocation is served from the cache under the same dir.
        assert main(["run", CHEAP, CHEAP_TABULAR,
                     "--artifacts-dir", str(art)]) == 0
        assert "cached" in capsys.readouterr().out

    def test_clean_cache(self, tmp_path, capsys):
        art = tmp_path / "artifacts"
        assert main(["run", CHEAP, "--artifacts-dir", str(art),
                     "--no-artifacts"]) == 0
        capsys.readouterr()
        assert main(["clean-cache", "--artifacts-dir", str(art)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_run_json_format(self, tmp_path, capsys):
        assert main(["run", CHEAP, "--format", "json", "--no-cache",
                     "--artifacts-dir", str(tmp_path / "a")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["name"] == CHEAP
        assert payload[0]["cached"] is False
        assert payload[0]["data"]
