"""Tests for repro.datatypes.formats."""

import pytest

from repro.datatypes.formats import (
    BF16,
    DataType,
    FP16,
    FP32,
    FP8_E4M3,
    FP8_E5M2,
    INT1,
    INT2,
    INT4,
    INT8,
    INT16,
    UINT4,
    all_dtypes,
    dtype_from_name,
    parse_wa_pair,
    register_dtype,
    wa_name,
)
from repro.errors import DataTypeError


class TestDataType:
    def test_float_bit_budget_must_balance(self):
        with pytest.raises(DataTypeError):
            DataType("bad", 16, is_float=True, exponent_bits=5, mantissa_bits=12)

    def test_positive_bits_required(self):
        with pytest.raises(DataTypeError):
            DataType("bad", 0)

    def test_int_ranges_signed(self):
        assert INT8.min_int == -128
        assert INT8.max_int == 127
        assert INT1.min_int == -1
        assert INT1.max_int == 0

    def test_int_ranges_unsigned(self):
        assert UINT4.min_int == 0
        assert UINT4.max_int == 15

    def test_float_has_no_int_range(self):
        with pytest.raises(DataTypeError):
            _ = FP16.min_int

    def test_num_values(self):
        assert INT4.num_values == 16
        assert FP8_E4M3.num_values == 256

    def test_is_integer_flag(self):
        assert INT2.is_integer
        assert not FP16.is_integer


class TestRegistry:
    def test_lookup_by_name(self):
        assert dtype_from_name("fp16") is FP16
        assert dtype_from_name("FP16") is FP16

    def test_lookup_by_alias(self):
        assert dtype_from_name("half") is FP16
        assert dtype_from_name("e4m3") is FP8_E4M3
        assert dtype_from_name("bfloat16") is BF16

    def test_unknown_name_raises(self):
        with pytest.raises(DataTypeError):
            dtype_from_name("fp12")

    def test_conflicting_registration_rejected(self):
        clash = DataType("fp16_other", 16, is_float=True, exponent_bits=5,
                         mantissa_bits=10, aliases=("fp16",))
        with pytest.raises(DataTypeError):
            register_dtype(clash)

    def test_reregistering_same_dtype_is_noop(self):
        assert register_dtype(FP16) is FP16

    def test_all_dtypes_contains_standards(self):
        names = {d.name for d in all_dtypes()}
        assert {"fp32", "fp16", "fp8_e4m3", "int8", "int4", "int2", "int1"} <= names


class TestWaShorthand:
    @pytest.mark.parametrize(
        "spec, w, a",
        [
            ("WINT1AFP16", INT1, FP16),
            ("WINT2AINT8", INT2, INT8),
            ("WINT4AFP16", INT4, FP16),
            ("WFP16AFP16", FP16, FP16),
            ("WINT1AINT16", INT1, INT16),
        ],
    )
    def test_parse(self, spec, w, a):
        assert parse_wa_pair(spec) == (w, a)

    def test_roundtrip(self):
        assert parse_wa_pair(wa_name(INT2, FP16)) == (INT2, FP16)

    def test_malformed_rejected(self):
        with pytest.raises(DataTypeError):
            parse_wa_pair("INT4FP16")
