"""Tests for integer quantization helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.formats import FP16, INT4, INT8
from repro.datatypes.integer import (
    int_range,
    quantize_to_int,
    round_half_even,
    saturate,
)
from repro.errors import DataTypeError


class TestIntRange:
    def test_signed(self):
        assert int_range(8) == (-128, 127)
        assert int_range(1) == (-1, 0)

    def test_unsigned(self):
        assert int_range(4, signed=False) == (0, 15)

    def test_invalid_bits(self):
        with pytest.raises(DataTypeError):
            int_range(0)


class TestSaturate:
    def test_clips_both_sides(self):
        values = np.array([-500, -128, 0, 127, 500])
        np.testing.assert_array_equal(
            saturate(values, 8), [-128, -128, 0, 127, 127]
        )

    def test_unsigned_floor_at_zero(self):
        np.testing.assert_array_equal(
            saturate(np.array([-3, 3, 99]), 4, signed=False), [0, 3, 15]
        )


class TestRounding:
    def test_half_even(self):
        np.testing.assert_array_equal(
            round_half_even(np.array([0.5, 1.5, 2.5, -0.5])), [0, 2, 2, -0]
        )


class TestQuantizeToInt:
    def test_basic(self):
        codes = quantize_to_int(np.array([0.0, 0.5, -0.5, 10.0]), 0.5, INT8)
        np.testing.assert_array_equal(codes, [0, 1, -1, 20])

    def test_saturation(self):
        codes = quantize_to_int(np.array([1000.0]), 0.1, INT4)
        assert codes[0] == 7

    def test_float_target_rejected(self):
        with pytest.raises(DataTypeError):
            quantize_to_int(np.zeros(3), 1.0, FP16)

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=32),
        st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_by_half_scale(self, values, scale):
        arr = np.asarray(values)
        codes = quantize_to_int(arr, scale, INT8)
        dequant = codes * scale
        inside = np.abs(arr / scale) <= 127
        assert np.all(np.abs(dequant[inside] - arr[inside]) <= scale / 2 + 1e-9)
