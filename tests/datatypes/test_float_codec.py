"""Tests for the minifloat codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.float_codec import MinifloatCodec, quantize_to_format
from repro.datatypes.formats import BF16, FP16, FP32, FP8_E4M3, FP8_E5M2, INT8
from repro.errors import DataTypeError


class TestCodecProperties:
    def test_rejects_integer_format(self):
        with pytest.raises(DataTypeError):
            MinifloatCodec(INT8)

    def test_fp16_max_value(self):
        assert MinifloatCodec(FP16).max_value == 65504.0

    def test_e4m3_max_value(self):
        # OCP FP8 E4M3: max finite = 448.
        assert MinifloatCodec(FP8_E4M3).max_value == 448.0

    def test_e5m2_max_value(self):
        assert MinifloatCodec(FP8_E5M2).max_value == 57344.0

    def test_fp16_min_subnormal(self):
        assert MinifloatCodec(FP16).min_subnormal == 2.0 ** -24


class TestQuantize:
    def test_fp16_matches_numpy_half(self):
        rng = np.random.default_rng(1)
        values = rng.normal(scale=100.0, size=1000)
        ours = quantize_to_format(values, FP16)
        theirs = values.astype(np.float16).astype(np.float64)
        np.testing.assert_array_equal(ours, theirs)

    def test_representable_values_are_fixed_points(self):
        for fmt in (FP8_E4M3, FP8_E5M2):
            codec = MinifloatCodec(fmt)
            grid = codec.representable_values()
            np.testing.assert_array_equal(codec.quantize(grid), grid)
            np.testing.assert_array_equal(codec.quantize(-grid), -grid)

    def test_rounds_to_nearest_grid_point(self):
        codec = MinifloatCodec(FP8_E4M3)
        grid = codec.representable_values()
        rng = np.random.default_rng(2)
        values = rng.uniform(-400, 400, size=500)
        quantized = codec.quantize(values)
        for v, q in zip(values, quantized):
            distances = np.abs(grid - abs(v))
            assert abs(abs(q) - abs(v)) <= distances.min() + 1e-12

    def test_saturates_overflow(self):
        codec = MinifloatCodec(FP8_E4M3)
        assert codec.quantize(1e9) == 448.0
        assert codec.quantize(-1e9) == -448.0

    def test_zero_preserved(self):
        assert quantize_to_format(0.0, FP8_E5M2) == 0.0

    def test_sign_symmetry(self):
        values = np.linspace(-300, 300, 601)
        q = quantize_to_format(values, FP8_E4M3)
        np.testing.assert_array_equal(q, -quantize_to_format(-values, FP8_E4M3))

    def test_bf16_coarser_than_fp16_near_one(self):
        v = 1.0 + 2.0 ** -9
        assert quantize_to_format(v, FP16) != 1.0
        assert quantize_to_format(v, BF16) == 1.0

    def test_fp32_near_identity(self):
        values = np.array([0.1, -2.5, 1e20])
        np.testing.assert_allclose(
            quantize_to_format(values, FP32), values, rtol=1e-7
        )


class TestCodecHypothesis:
    @given(st.floats(min_value=-448, max_value=448, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_e4m3_idempotent(self, x):
        once = quantize_to_format(x, FP8_E4M3)
        twice = quantize_to_format(once, FP8_E4M3)
        assert once == twice

    @given(st.floats(min_value=1e-6, max_value=6e4, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_fp16_relative_error_bounded(self, x):
        q = float(quantize_to_format(x, FP16))
        if x >= 2.0 ** -14:  # normal range
            assert abs(q - x) <= x * 2.0 ** -11

    @given(st.floats(min_value=-5e4, max_value=5e4, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_e5m2_monotone(self, x):
        q1 = float(quantize_to_format(x, FP8_E5M2))
        q2 = float(quantize_to_format(x * 1.5 + 1.0, FP8_E5M2))
        if x * 1.5 + 1.0 >= x:
            assert q2 >= q1
