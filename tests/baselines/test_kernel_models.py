"""Tests pinning the Fig. 4 baseline kernel shapes."""

import pytest

from repro.baselines import (
    cublas_gemm_time_s,
    cutlass_dequant_time_s,
    lutgemm_time_s,
)
from repro.models.workloads import FIG4_SHAPES, GemmShape


class TestCublasModel:
    def test_gemv_memory_bound_scaling(self):
        """Batch-1 time tracks weight bytes, not FLOPs rate."""
        t_full = cublas_gemm_time_s(GemmShape(1, 8192, 8192))
        t_half = cublas_gemm_time_s(GemmShape(1, 4096, 8192))
        assert t_full / t_half == pytest.approx(2.0, rel=0.15)

    def test_large_batch_compute_bound(self):
        t1 = cublas_gemm_time_s(GemmShape(4096, 8192, 8192))
        t2 = cublas_gemm_time_s(GemmShape(8192, 8192, 8192))
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)


class TestFig4Shapes:
    def test_gemv_dequant_speedup_near_4x(self):
        """Paper Fig. 4a: CUTLASS W4A16 gains ~3.5-4x at batch 1."""
        for shape in FIG4_SHAPES:
            s = shape.with_batch(1)
            speedup = cublas_gemm_time_s(s) / cutlass_dequant_time_s(s, 4)
            assert 3.0 <= speedup <= 4.3

    def test_gemv_lutgemm_speedup_above_1x_below_dequant(self):
        """Paper Fig. 4a: LUT-GEMM gains ~2-2.5x, below CUTLASS."""
        for shape in FIG4_SHAPES:
            s = shape.with_batch(1)
            base = cublas_gemm_time_s(s)
            lut = lutgemm_time_s(s, 4)
            assert lut.ok
            speedup = base / lut.time_s
            assert 1.5 <= speedup <= 3.0
            assert speedup < base / cutlass_dequant_time_s(s, 4)

    def test_large_batch_cutlass_below_cublas(self):
        """Paper Fig. 4b: dequant kernels lose slightly at batch 1024."""
        for shape in FIG4_SHAPES:
            s = shape.with_batch(1024)
            ratio = cublas_gemm_time_s(s) / cutlass_dequant_time_s(s, 4)
            assert 0.60 <= ratio <= 0.95

    def test_very_large_batch_cutlass_degrades_further(self):
        for shape in FIG4_SHAPES:
            r1024 = cublas_gemm_time_s(shape.with_batch(1024)) / (
                cutlass_dequant_time_s(shape.with_batch(1024), 4)
            )
            r4096 = cublas_gemm_time_s(shape.with_batch(4096)) / (
                cutlass_dequant_time_s(shape.with_batch(4096), 4)
            )
            assert r4096 < r1024

    def test_large_batch_lutgemm_collapses(self):
        """Paper Fig. 4b/c: LUT-GEMM at ~0.01-0.03x of cuBLAS."""
        for shape in FIG4_SHAPES[:3]:  # M3 segfaults
            s = shape.with_batch(1024)
            lut = lutgemm_time_s(s, 4)
            assert lut.ok
            ratio = cublas_gemm_time_s(s) / lut.time_s
            assert 0.005 <= ratio <= 0.05

    def test_deep_k_shape_segfaults_at_large_batch(self):
        """Paper's 'Seg. Error': the K=28672 shape crashes at batch >= 1024."""
        deep = FIG4_SHAPES[3]
        assert lutgemm_time_s(deep.with_batch(1024), 4).segfault
        assert lutgemm_time_s(deep.with_batch(4096), 4).segfault
        assert lutgemm_time_s(deep.with_batch(1), 4).ok

    def test_weight_bits_scale_gemv_gain(self):
        s = FIG4_SHAPES[1].with_batch(1)
        base = cublas_gemm_time_s(s)
        s1 = base / cutlass_dequant_time_s(s, 1)
        s4 = base / cutlass_dequant_time_s(s, 4)
        assert s1 > s4
