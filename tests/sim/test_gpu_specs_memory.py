"""Tests for GPU specs and the memory model."""

import pytest

from repro.errors import SimulationError
from repro.sim.gpu_specs import (
    A100,
    H100,
    RTX3090,
    GpuSpec,
    LutExtension,
    lut_peak_tflops,
    with_lut_extension,
)
from repro.sim.memory import MemoryModel


class TestSpecs:
    def test_a100_peaks(self):
        assert A100.fp16_tflops == pytest.approx(312, rel=0.01)
        assert A100.int8_tops == pytest.approx(624, rel=0.01)

    def test_h100_peak(self):
        assert H100.fp16_tflops == pytest.approx(989, rel=0.01)
        assert H100.peak_tflops(act_bits=8) == pytest.approx(1979, rel=0.01)

    def test_rtx3090_peak(self):
        assert RTX3090.fp16_tflops == pytest.approx(142, rel=0.01)

    def test_invalid_spec(self):
        with pytest.raises(SimulationError):
            GpuSpec("bad", 0, 1.0, 1, 1, 1, 1, 1, 1)

    def test_lut_extension_scaling(self):
        spec = with_lut_extension(A100, array_scale=4, weight_bits=1)
        assert lut_peak_tflops(spec) == pytest.approx(4 * 312, rel=0.01)
        # W2: bit-serial halves throughput.
        spec2 = with_lut_extension(A100, array_scale=4, weight_bits=2)
        assert lut_peak_tflops(spec2) == pytest.approx(2 * 312, rel=0.01)
        # INT8 activations double the rate (like stock tensor cores).
        assert lut_peak_tflops(spec, act_bits=8) == pytest.approx(
            8 * 312, rel=0.01
        )

    def test_lut_peak_requires_extension(self):
        with pytest.raises(SimulationError):
            lut_peak_tflops(A100)

    def test_reg_scale_affects_budget(self):
        stock = A100.regfile_bytes_per_sm
        doubled = with_lut_extension(A100, 4, reg_scale=2.0).regfile_bytes_per_sm
        assert doubled == 2 * stock

    def test_invalid_extension(self):
        with pytest.raises(SimulationError):
            LutExtension(array_scale=0)

    def test_peak_tflops_dequant_path(self):
        # Dequant-based mpGEMM runs at activation precision.
        assert A100.peak_tflops(act_bits=16) == A100.fp16_tflops
        assert A100.peak_tflops(act_bits=8) == A100.int8_tops


class TestMemoryModel:
    def test_dram_time_linear(self):
        mm = MemoryModel(A100)
        assert mm.dram_time_s(2e9) == pytest.approx(2 * mm.dram_time_s(1e9))

    def test_negative_traffic_rejected(self):
        mm = MemoryModel(A100)
        with pytest.raises(SimulationError):
            mm.dram_time_s(-1)

    def test_l2_faster_than_dram(self):
        mm = MemoryModel(A100)
        assert mm.l2_time_s(1e9) < mm.dram_time_s(1e9)

    def test_fits_l2(self):
        mm = MemoryModel(A100)
        assert mm.fits_l2(30e6)
        assert not mm.fits_l2(50e6)

    def test_memory_time_is_max_of_levels(self):
        mm = MemoryModel(A100)
        t = mm.memory_time_s(dram_bytes=1e9, l2_bytes=1e9)
        assert t == mm.dram_time_s(1e9)
