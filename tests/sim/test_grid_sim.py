"""Tests for grid-level cycle simulation."""

import pytest

from repro.compiler.scheduler import schedule_gemm
from repro.datatypes.formats import FP16
from repro.models.workloads import GemmShape
from repro.sim.accelsim import simulate_kernel_grid
from repro.sim.gpu_specs import A100, with_lut_extension
from repro.sim.kernel import simulate_gemm_kernel


class TestGridSimulation:
    def test_grid_result_fields(self):
        shape = GemmShape(256, 512, 512)
        schedule = schedule_gemm(shape, A100, FP16)
        result = simulate_kernel_grid(schedule, A100)
        assert result.blocks == schedule.blocks
        assert result.waves >= 1
        assert result.total_cycles == result.waves * result.block_cycles
        assert result.achieved_tflops > 0

    def test_grid_time_scales_with_problem(self):
        small = simulate_kernel_grid(
            schedule_gemm(GemmShape(256, 512, 512), A100, FP16), A100
        )
        # 16x the blocks -> more waves -> more time.
        large = simulate_kernel_grid(
            schedule_gemm(GemmShape(1024, 2048, 512), A100, FP16), A100
        )
        assert large.time_s > small.time_s

    def test_cycle_grid_tracks_analytical_kernel_sim(self):
        """The Accel-Sim-style grid model and the analytical model agree
        within a small factor on a mid-size GEMM (the paper's kernel-level
        validation methodology)."""
        shape = GemmShape(1024, 2048, 1024)
        schedule = schedule_gemm(shape, A100, FP16)
        grid = simulate_kernel_grid(schedule, A100)
        analytical = simulate_gemm_kernel(shape, A100)
        ratio = grid.achieved_tflops / analytical.achieved_tflops
        assert 0.3 <= ratio <= 3.0

    def test_lut_grid_simulation(self):
        spec = with_lut_extension(A100, 2, reg_scale=2.0, weight_bits=2)
        shape = GemmShape(512, 1024, 512)
        schedule = schedule_gemm(shape, spec, FP16, weight_bits=2,
                                 use_lut=True)
        result = simulate_kernel_grid(schedule, spec)
        assert result.achieved_tflops > 0

    def test_more_resident_blocks_do_not_slow_grid(self):
        shape = GemmShape(2048, 2048, 512)
        schedule = schedule_gemm(shape, A100, FP16)
        one = simulate_kernel_grid(schedule, A100, blocks_per_sm=1)
        two = simulate_kernel_grid(schedule, A100, blocks_per_sm=2)
        # Co-residency improves (or at least does not hurt) throughput.
        assert two.achieved_tflops >= 0.9 * one.achieved_tflops
