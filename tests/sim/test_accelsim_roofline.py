"""Tests for the cycle-level simulator and roofline analysis."""

import pytest

from repro.compiler.scheduler import schedule_gemm
from repro.datatypes.formats import FP16
from repro.errors import SimulationError
from repro.models.workloads import GemmShape
from repro.sim.accelsim import (
    CycleStats,
    SmConfig,
    TraceInstruction,
    Unit,
    build_gemm_trace,
    cross_validate_cycles,
    simulate_block_trace,
)
from repro.sim.gpu_specs import A100, with_lut_extension
from repro.sim.roofline import (
    attainable_flops,
    gemm_operational_intensity,
    is_compute_bound,
    ridge_point,
    roofline_time,
)


class TestCycleSimulator:
    def test_single_warp_serial_latency(self):
        trace = [TraceInstruction(Unit.TENSOR_CORE, 4, 16)] * 4
        stats = simulate_block_trace([trace])
        # In-order: each instruction waits the previous one's latency.
        assert stats.cycles >= 3 * 16

    def test_multiple_warps_overlap(self):
        trace = [TraceInstruction(Unit.TENSOR_CORE, 4, 16)] * 8
        one = simulate_block_trace([trace]).cycles
        four = simulate_block_trace([trace] * 4).cycles
        # 4x the work in far less than 4x the time (latency hiding).
        assert four < 2.5 * one

    def test_unit_contention_serializes(self):
        config = SmConfig(tc_units=1)
        trace = [TraceInstruction(Unit.TENSOR_CORE, 8, 8)] * 4
        stats = simulate_block_trace([trace] * 4, config)
        assert stats.cycles >= 16 * 8  # 16 instructions through one unit

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            simulate_block_trace([])

    def test_stats_accounting(self):
        trace = [
            TraceInstruction(Unit.DRAM, 10, 400),
            TraceInstruction(Unit.TENSOR_CORE, 4, 16),
        ]
        stats = simulate_block_trace([trace])
        assert stats.tc_busy == 4
        assert stats.dram_busy == 10


class TestCrossValidation:
    """The analytical model tracks the cycle-level model on real tiles."""

    def test_compute_bound_schedule(self):
        shape = GemmShape(256, 512, 1024)
        schedule = schedule_gemm(shape, A100, FP16)
        report = cross_validate_cycles(schedule, A100)
        # Cycle sim within 2x of the analytical bound and never below it
        # by more than scheduling noise.
        assert 0.8 <= report["ratio"] <= 2.0

    def test_lut_schedule_cross_validates(self):
        shape = GemmShape(128, 512, 512)
        spec = with_lut_extension(A100, 4, 2.0, 2)
        schedule = schedule_gemm(shape, spec, FP16, weight_bits=2,
                                 use_lut=True)
        report = cross_validate_cycles(schedule, spec)
        assert 0.8 <= report["ratio"] <= 2.5

    def test_trace_structure(self):
        shape = GemmShape(128, 256, 256)
        schedule = schedule_gemm(shape, A100, FP16)
        traces = build_gemm_trace(schedule, A100)
        assert len(traces) == schedule.tile.warps
        tags = {ins.tag for ins in traces[0]}
        assert tags == {"tile_load", "mma"}


class TestRoofline:
    def test_ridge_point(self):
        assert ridge_point(312e12, 2e12) == pytest.approx(156.0)

    def test_attainable_caps_at_peak(self):
        assert attainable_flops(1e6, 312e12, 2e12) == 312e12
        assert attainable_flops(10.0, 312e12, 2e12) == 20e12

    def test_compute_bound_predicate(self):
        assert is_compute_bound(200, 312e12, 2e12)
        assert not is_compute_bound(100, 312e12, 2e12)

    def test_roofline_time(self):
        t = roofline_time(flops=312e12, bytes_moved=1e12,
                          peak_flops=312e12, bandwidth_bytes_s=2e12)
        assert t == pytest.approx(1.0)

    def test_low_bit_weights_raise_intensity(self):
        hi = gemm_operational_intensity(2048, 8192, 8192, 16, 1)
        lo = gemm_operational_intensity(2048, 8192, 8192, 16, 16)
        assert hi > lo

    def test_table_overhead_lowers_intensity(self):
        base = gemm_operational_intensity(2048, 8192, 8192, 16, 1)
        loaded = gemm_operational_intensity(
            2048, 8192, 8192, 16, 1, table_overhead_bytes=1e9
        )
        assert loaded < base

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            attainable_flops(0, 1, 1)
        with pytest.raises(SimulationError):
            roofline_time(-1, 0, 1, 1)
