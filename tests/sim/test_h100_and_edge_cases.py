"""Edge cases across the simulators: H100 configs, tiny problems,
degenerate graphs, and precompute split mode."""

import numpy as np
import pytest

from repro.compiler.dfg import DataflowGraph, OpKind, Operator, TensorSpec
from repro.datatypes.formats import FP16, FP8_E4M3, INT8
from repro.errors import SimulationError
from repro.models.configs import BITNET_3B
from repro.models.transformer import InferencePhase
from repro.models.workloads import GemmShape
from repro.sim.gpu_specs import H100, with_lut_extension
from repro.sim.kernel import simulate_gemm_kernel
from repro.sim.tile_sim import PrecomputeMode, TileSimulator


class TestH100:
    def test_h100_fp8_faster_than_fp16(self):
        sim = TileSimulator(H100)
        fp16 = sim.time_model(BITNET_3B, 1, 1024, InferencePhase.PREFILL,
                              act_dtype=FP16)
        fp8 = sim.time_model(BITNET_3B, 1, 1024, InferencePhase.PREFILL,
                             act_dtype=FP8_E4M3)
        assert fp8.total_ms < fp16.total_ms

    def test_h100_lut_extension(self):
        spec = with_lut_extension(H100, 4, reg_scale=2.0, weight_bits=2)
        sim = TileSimulator(spec)
        t = sim.time_model(
            BITNET_3B, 1, 1024, InferencePhase.PREFILL,
            weight_bits=2, act_dtype=FP8_E4M3,
            precompute=PrecomputeMode.FUSED,
        )
        base = TileSimulator(H100).time_model(
            BITNET_3B, 1, 1024, InferencePhase.PREFILL, act_dtype=FP8_E4M3
        )
        assert t.total_ms < base.total_ms

    def test_h100_kernel_sim(self):
        result = simulate_gemm_kernel(GemmShape(2048, 8192, 8192), H100)
        # Mid-size GEMMs on H100 land well above A100 peak but below the
        # 989 TFLOPs roof (L2 traffic limits, as on real hardware).
        assert 450 < result.achieved_tflops < 989


class TestKernelEdgeCases:
    def test_tiny_problem_still_feasible(self):
        result = simulate_gemm_kernel(GemmShape(16, 32, 16), H100)
        assert result.time_s > 0
        # Dominated by launch overhead.
        assert result.time_s >= H100.launch_overhead_us * 1e-6

    def test_skinny_n_problem(self):
        result = simulate_gemm_kernel(GemmShape(8192, 32, 8192), H100)
        assert result.achieved_tflops > 0

    def test_deep_k_problem(self):
        result = simulate_gemm_kernel(GemmShape(64, 64, 65536), H100)
        assert result.waves >= 1


class TestDegenerateGraphs:
    def test_single_op_graph(self):
        graph = DataflowGraph("one-op")
        graph.add(Operator(
            name="solo", kind=OpKind.GEMM,
            inputs=(TensorSpec("a", (64, 64)), TensorSpec("b", (64, 64))),
            outputs=(TensorSpec("c", (64, 64)),),
            flops=2.0 * 64**3,
        ))
        timing = TileSimulator(H100).time_graph(graph)
        assert len(timing.groups) == 1
        assert timing.total_ms > 0

    def test_pure_elementwise_graph(self):
        graph = DataflowGraph("ew")
        x = TensorSpec("x", (1024, 1024))
        prev = x
        for i in range(3):
            out = TensorSpec(f"y{i}", (1024, 1024))
            graph.add(Operator(
                name=f"ew{i}", kind=OpKind.ELEMENTWISE,
                inputs=(prev,), outputs=(out,), flops=1024.0 * 1024,
            ))
            prev = out
        timing = TileSimulator(H100).time_graph(graph)
        # The chain fuses into one kernel.
        assert len(timing.groups) == 1

    def test_split_precompute_mode_between_fused_and_naive(self):
        spec = with_lut_extension(H100, 1, 1.0, 1)
        sim = TileSimulator(spec)
        times = {
            mode: sim.time_model(
                BITNET_3B, 1, 1024, InferencePhase.PREFILL,
                weight_bits=1, act_dtype=FP16, precompute=mode,
            ).total_ms
            for mode in (PrecomputeMode.FUSED, PrecomputeMode.SPLIT,
                         PrecomputeMode.NAIVE)
        }
        assert times[PrecomputeMode.FUSED] < times[PrecomputeMode.SPLIT]
        assert times[PrecomputeMode.SPLIT] < times[PrecomputeMode.NAIVE]
