"""Tests for the analytical kernel simulator (Fig. 15's engine)."""

import pytest

from repro.errors import SimulationError
from repro.models.workloads import FIG15_SHAPE, GemmShape
from repro.sim.gpu_specs import A100, with_lut_extension
from repro.sim.kernel import simulate_gemm_kernel


class TestBaselineKernel:
    def test_cublas_like_near_peak(self):
        """Large FP16 GEMM achieves 80-95% of A100 peak (like cuBLAS)."""
        result = simulate_gemm_kernel(FIG15_SHAPE, A100)
        assert 0.80 * 312 <= result.achieved_tflops <= 0.95 * 312
        assert result.bound == "compute"

    def test_gemv_memory_bound(self):
        shape = GemmShape(1, 8192, 8192)
        result = simulate_gemm_kernel(shape, A100)
        assert result.bound == "dram"

    def test_monotone_in_problem_size(self):
        small = simulate_gemm_kernel(GemmShape(512, 4096, 4096), A100)
        large = simulate_gemm_kernel(GemmShape(2048, 4096, 4096), A100)
        assert large.time_s > small.time_s


class TestLutKernel:
    def test_requires_lut_extension(self):
        with pytest.raises(SimulationError):
            simulate_gemm_kernel(FIG15_SHAPE, A100, weight_bits=1,
                                 use_lut=True)

    def test_array_scaling_near_linear_up_to_4x(self):
        achieved = {}
        for scale in (1, 2, 4):
            spec = with_lut_extension(A100, scale, reg_scale=float(scale),
                                      weight_bits=1)
            achieved[scale] = simulate_gemm_kernel(
                FIG15_SHAPE, spec, weight_bits=1, use_lut=True
            ).achieved_tflops
        assert achieved[2] / achieved[1] == pytest.approx(2.0, rel=0.15)
        assert achieved[4] / achieved[1] == pytest.approx(4.0, rel=0.25)

    def test_register_capacity_unlocks_8x(self):
        """The paper's register experiments: stock registers bottleneck
        the 8x array; enlarged registers recover throughput."""
        stock = simulate_gemm_kernel(
            FIG15_SHAPE,
            with_lut_extension(A100, 8, reg_scale=1.0, weight_bits=1),
            weight_bits=1, use_lut=True,
        )
        wide = simulate_gemm_kernel(
            FIG15_SHAPE,
            with_lut_extension(A100, 8, reg_scale=8.0, weight_bits=1),
            weight_bits=1, use_lut=True,
        )
        assert wide.achieved_tflops > 1.2 * stock.achieved_tflops

    def test_bit_serial_halves_throughput(self):
        results = {}
        for wb in (1, 2, 4):
            spec = with_lut_extension(A100, 4, reg_scale=2.0, weight_bits=wb)
            results[wb] = simulate_gemm_kernel(
                FIG15_SHAPE, spec, weight_bits=wb, use_lut=True
            ).achieved_tflops
        assert results[1] / results[2] == pytest.approx(2.0, rel=0.25)
        assert results[2] / results[4] == pytest.approx(2.0, rel=0.25)

    def test_w1_lut_1x_matches_fp16_throughput_with_less_area(self):
        """Fig. 15's headline: LUT 1X delivers cuBLAS-level mpGEMM."""
        baseline = simulate_gemm_kernel(FIG15_SHAPE, A100)
        lut = simulate_gemm_kernel(
            FIG15_SHAPE,
            with_lut_extension(A100, 1, reg_scale=1.0, weight_bits=1),
            weight_bits=1, use_lut=True,
        )
        assert lut.achieved_tflops == pytest.approx(
            baseline.achieved_tflops, rel=0.10
        )

    def test_int8_activations_double_rate(self):
        fp16 = simulate_gemm_kernel(
            FIG15_SHAPE,
            with_lut_extension(A100, 4, reg_scale=4.0, weight_bits=1),
            act_bits=16, weight_bits=1, use_lut=True,
        )
        int8 = simulate_gemm_kernel(
            FIG15_SHAPE,
            with_lut_extension(A100, 4, reg_scale=4.0, weight_bits=1),
            act_bits=8, weight_bits=1, use_lut=True,
        )
        assert int8.achieved_tflops > 1.5 * fp16.achieved_tflops

    def test_result_fields(self):
        result = simulate_gemm_kernel(FIG15_SHAPE, A100)
        assert result.time_ms == pytest.approx(result.time_s * 1e3)
        assert result.occupancy_blocks_per_sm >= 1
        assert result.waves >= 1
