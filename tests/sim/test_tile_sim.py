"""Tests for the end-to-end tile simulator and ground-truth reference."""

import pytest

from repro.datatypes.formats import FP16, INT8
from repro.models.configs import BITNET_3B, LLAMA2_70B, OPT_175B
from repro.models.transformer import InferencePhase
from repro.sim.groundtruth import GroundTruthSimulator
from repro.sim.gpu_specs import A100, RTX3090, with_lut_extension
from repro.sim.tile_sim import PrecomputeMode, TileSimulator

PREFILL = InferencePhase.PREFILL
DECODE = InferencePhase.DECODE


class TestTileSimulator:
    def test_opt_prefill_near_table4_anchor(self):
        """Paper Table 4: OPT-175B single layer BS1-SEQ2048 ~ 32.4 ms."""
        sim = TileSimulator(A100)
        ms = sim.time_model(OPT_175B, 1, 2048, PREFILL).total_ms
        assert 32.38 * 0.75 <= ms <= 32.38 * 1.25

    def test_opt_decode_near_table4_anchor(self):
        """Paper Table 4: OPT-175B single layer BS1024-SEQ1 ~ 15.0 ms."""
        sim = TileSimulator(A100)
        ms = sim.time_model(OPT_175B, 1024, 1, DECODE).total_ms
        assert 14.99 * 0.75 <= ms <= 14.99 * 1.35

    def test_latency_monotone_in_batch(self):
        sim = TileSimulator(A100)
        t1 = sim.time_model(OPT_175B, 256, 1, DECODE).total_ms
        t2 = sim.time_model(OPT_175B, 1024, 1, DECODE).total_ms
        assert t2 > t1

    def test_int8_faster_than_fp16(self):
        sim = TileSimulator(A100)
        fp16 = sim.time_model(OPT_175B, 1, 2048, PREFILL, act_dtype=FP16)
        int8 = sim.time_model(OPT_175B, 1, 2048, PREFILL, act_dtype=INT8)
        assert int8.total_ms < fp16.total_ms

    def test_slower_gpu_is_slower(self):
        a100 = TileSimulator(A100).time_model(OPT_175B, 1, 2048, PREFILL)
        r3090 = TileSimulator(RTX3090).time_model(OPT_175B, 1, 2048, PREFILL)
        assert r3090.total_ms > a100.total_ms

    def test_lut_mpgemm_requires_extension(self):
        from repro.errors import SimulationError

        sim = TileSimulator(A100)
        lut_spec_sim = TileSimulator(with_lut_extension(A100, 4, 2, 2))
        # Low-bit weights on a LUT spec work; the timing includes LUT ops.
        t = lut_spec_sim.time_model(BITNET_3B, 1, 256, PREFILL,
                                    weight_bits=2, act_dtype=INT8)
        assert t.total_ms > 0
        assert any(g.kind == "lut_mpgemm" for g in t.groups)

    def test_lut_array_scaling_speeds_up_prefill(self):
        times = {}
        for scale in (1, 4, 8):
            spec = with_lut_extension(A100, scale, reg_scale=2.0,
                                      weight_bits=2)
            times[scale] = TileSimulator(spec).time_model(
                BITNET_3B, 1, 2048, PREFILL, weight_bits=2, act_dtype=INT8
            ).total_ms
        assert times[8] < times[4] < times[1]

    def test_kernel_breakdown_sums(self):
        sim = TileSimulator(A100)
        timing = sim.time_model(OPT_175B, 1, 512, PREFILL)
        assert timing.total_s == pytest.approx(
            sum(g.time_s for g in timing.groups)
        )
        assert timing.time_of("attn.") < timing.total_s

    def test_model_inference_scales_with_layers(self):
        sim = TileSimulator(A100)
        per_layer = sim.time_model(OPT_175B, 1, 512, PREFILL).total_ms
        total = sim.model_inference_ms(OPT_175B, 1, 512, PREFILL)
        assert total == pytest.approx(per_layer * OPT_175B.layers)


class TestPrecomputeModes:
    LUT1X = with_lut_extension(A100, 1, 1.0, 1)

    def test_naive_overhead_in_paper_band(self):
        """Paper: separated precompute costs 16-24%."""
        sim = TileSimulator(self.LUT1X)
        base = sim.time_model(OPT_175B, 1, 2048, PREFILL, weight_bits=1)
        naive = sim.time_model(OPT_175B, 1, 2048, PREFILL, weight_bits=1,
                               precompute=PrecomputeMode.NAIVE)
        overhead = naive.total_ms / base.total_ms - 1.0
        assert 0.10 <= overhead <= 0.30

    def test_fused_overhead_small(self):
        """Paper: fused precompute costs ~2.5%."""
        sim = TileSimulator(self.LUT1X)
        base = sim.time_model(OPT_175B, 1, 2048, PREFILL, weight_bits=1)
        fused = sim.time_model(OPT_175B, 1, 2048, PREFILL, weight_bits=1,
                               precompute=PrecomputeMode.FUSED)
        overhead = fused.total_ms / base.total_ms - 1.0
        assert 0.0 < overhead <= 0.06

    def test_ordering_none_lt_fused_lt_split_lt_naive(self):
        sim = TileSimulator(self.LUT1X)
        times = {
            mode: sim.time_model(
                OPT_175B, 1, 2048, PREFILL, weight_bits=1, precompute=mode
            ).total_ms
            for mode in PrecomputeMode
        }
        assert (
            times[PrecomputeMode.NONE]
            < times[PrecomputeMode.FUSED]
            < times[PrecomputeMode.SPLIT]
            < times[PrecomputeMode.NAIVE]
        )


class TestGroundTruth:
    def test_deterministic(self):
        gt = GroundTruthSimulator(A100)
        t1 = gt.time_model(OPT_175B, 1, 512, PREFILL).total_ms
        t2 = gt.time_model(OPT_175B, 1, 512, PREFILL).total_ms
        assert t1 == t2

    def test_close_to_tile_sim_but_not_equal(self):
        gt = GroundTruthSimulator(A100).time_model(OPT_175B, 1, 2048, PREFILL)
        fast = TileSimulator(A100).time_model(OPT_175B, 1, 2048, PREFILL)
        rel = abs(gt.total_ms - fast.total_ms) / gt.total_ms
        assert 0.0 < rel < 0.20

    def test_gpu_dependent_perturbations(self):
        a = GroundTruthSimulator(A100).time_model(OPT_175B, 1, 512, PREFILL)
        b = GroundTruthSimulator(RTX3090).time_model(OPT_175B, 1, 512, PREFILL)
        assert a.total_ms != b.total_ms
