"""Tests for the DFG transformation and fusion passes."""

import pytest

from repro.compiler.dfg import OpKind
from repro.compiler.passes import (
    LUT_GROUP_K,
    TABLE_ENTRIES,
    fusion_groups,
    graph_traffic_bytes,
    split_mpgemm_pass,
)
from repro.errors import CompilerError
from repro.models.configs import LLAMA2_7B, OPT_175B
from repro.models.transformer import InferencePhase, build_layer_graph


def quantized_layer(model=LLAMA2_7B, batch=1, seq=64, bits=2):
    return build_layer_graph(
        model, batch, seq, InferencePhase.PREFILL, weight_bits=bits
    )


class TestSplitMpgemmPass:
    def test_every_mpgemm_split(self):
        g = quantized_layer()
        out = split_mpgemm_pass(g)
        assert not any(op.kind is OpKind.MPGEMM for op in out)
        precomputes = [op for op in out if op.kind is OpKind.PRECOMPUTE]
        lut_gemms = [op for op in out if op.kind is OpKind.LUT_MPGEMM]
        assert len(precomputes) == len(lut_gemms) == 4

    def test_table_shape(self):
        g = quantized_layer(batch=1, seq=64)
        out = split_mpgemm_pass(g)
        pre = next(op for op in out if op.name == "attn.qkv.precompute")
        table = pre.outputs[0]
        m, groups, entries = table.shape
        assert m == 64
        assert groups == LLAMA2_7B.hidden // LUT_GROUP_K
        assert entries == TABLE_ENTRIES

    def test_lut_gemm_consumes_table_and_weights(self):
        out = split_mpgemm_pass(quantized_layer())
        lut = next(op for op in out if op.name == "attn.qkv")
        input_names = [t.name for t in lut.inputs]
        assert input_names[0] == "attn.qkv.table"
        assert input_names[1].endswith(".weight")

    def test_pass_preserves_flops_and_outputs(self):
        g = quantized_layer()
        out = split_mpgemm_pass(g)
        # Matmul FLOPs unchanged; precompute adds a small epsilon.
        base_mm = sum(op.flops for op in g if op.kind is OpKind.MPGEMM)
        new_mm = sum(op.flops for op in out if op.kind is OpKind.LUT_MPGEMM)
        assert new_mm == base_mm
        assert {t.name for t in g.graph_outputs()} == {
            t.name for t in out.graph_outputs()
        }

    def test_non_divisible_k_rejected(self):
        from repro.compiler.dfg import DataflowGraph, Operator, TensorSpec
        from repro.datatypes.formats import FP16, INT8

        g = DataflowGraph()
        g.add(Operator(
            name="odd", kind=OpKind.MPGEMM,
            inputs=(TensorSpec("x", (4, 6), FP16),
                    TensorSpec("w", (8, 6), INT8, bits_override=2)),
            outputs=(TensorSpec("y", (4, 8), FP16),),
            flops=2.0 * 4 * 8 * 6,
        ))
        with pytest.raises(CompilerError):
            split_mpgemm_pass(g)

    def test_pass_is_idempotent_on_plain_graphs(self):
        g = build_layer_graph(LLAMA2_7B, 1, 64, InferencePhase.PREFILL)
        out = split_mpgemm_pass(g)
        assert len(out) == len(g)


class TestFusion:
    def test_groups_partition_the_graph(self):
        g = quantized_layer()
        groups = fusion_groups(g)
        names = [op.name for group in groups for op in group.operators]
        assert sorted(names) == sorted(op.name for op in g)

    def test_elementwise_chains_fuse(self):
        g = build_layer_graph(LLAMA2_7B, 1, 64, InferencePhase.PREFILL)
        groups = fusion_groups(g)
        # The FFN activation + gate multiply fuse with their producer.
        act_group = next(
            gr for gr in groups
            if any(op.name == "ffn.act" for op in gr.operators)
        )
        assert any(op.name == "ffn.gate_mul" for op in act_group.operators)

    def test_precompute_fuses_with_preceding_elementwise(self):
        out = split_mpgemm_pass(quantized_layer())
        groups = fusion_groups(out)
        pre_group = next(
            gr for gr in groups
            if any(op.name == "attn.qkv.precompute" for op in gr.operators)
        )
        # Fused with the preceding norm, not standing alone.
        assert len(pre_group.operators) >= 2

    def test_fusion_reduces_traffic(self):
        g = quantized_layer()
        fused = graph_traffic_bytes(g, fused=True)
        unfused = graph_traffic_bytes(g, fused=False)
        assert fused < unfused

    def test_external_bytes_excludes_internal_tensors(self):
        g = build_layer_graph(OPT_175B, 1, 32, InferencePhase.PREFILL)
        groups = fusion_groups(g)
        for group in groups:
            internal_names = {
                t.name for op in group.operators for t in op.outputs
            }
            external = group.external_bytes(g)
            total = sum(op.total_bytes for op in group.operators)
            if len(group.operators) > 1 and internal_names:
                assert external < total

    def test_anchor_selection(self):
        out = split_mpgemm_pass(quantized_layer())
        groups = fusion_groups(out)
        matmul_groups = [
            gr for gr in groups
            if gr.anchor.kind in (OpKind.LUT_MPGEMM, OpKind.GEMM)
        ]
        assert len(matmul_groups) >= 6
