"""Tests for the whole-model compilation driver."""

import pytest

from repro.compiler.model_compiler import compile_layer
from repro.datatypes.formats import FP16, INT8
from repro.errors import CompilerError
from repro.models.configs import BITNET_3B, LLAMA2_7B
from repro.models.transformer import InferencePhase
from repro.sim.gpu_specs import A100, with_lut_extension

LUT_SPEC = with_lut_extension(A100, 4, reg_scale=2.0, weight_bits=2)


class TestCompileLayer:
    def test_fp16_layer_uses_mma(self):
        compiled = compile_layer(
            LLAMA2_7B, A100, batch=1, seqlen=128,
        )
        assert compiled.matmul_kernels
        assert not compiled.lmma_instructions
        for k in compiled.matmul_kernels:
            assert k.instruction.startswith("mma.")

    def test_quantized_layer_uses_lmma(self):
        compiled = compile_layer(
            BITNET_3B, LUT_SPEC, batch=1, seqlen=128,
            weight_bits=2, act_dtype=INT8,
        )
        assert compiled.lmma_instructions
        # Attention matmuls stay on MMA (uniform precision).
        mma = [k for k in compiled.matmul_kernels
               if k.instruction.startswith("mma.")]
        assert len(mma) == 2

    def test_quantized_without_lut_rejected(self):
        with pytest.raises(CompilerError):
            compile_layer(BITNET_3B, A100, 1, 128, weight_bits=2)

    def test_layer_time_positive_and_consistent(self):
        compiled = compile_layer(LLAMA2_7B, A100, 1, 256)
        assert compiled.layer_ms > 0
        assert compiled.layer_ms == pytest.approx(
            sum(k.simulated_ms for k in compiled.kernels)
        )

    def test_lut_faster_than_fp16_for_bitnet(self):
        fp16 = compile_layer(BITNET_3B, A100, 1, 2048)
        lut = compile_layer(
            BITNET_3B, LUT_SPEC, 1, 2048, weight_bits=2, act_dtype=INT8
        )
        assert lut.layer_ms < fp16.layer_ms

    def test_report_readable(self):
        compiled = compile_layer(LLAMA2_7B, A100, 1, 128)
        text = compiled.report()
        assert "kernels" in text
        assert "mma." in text

    def test_kernel_count_matches_fusion(self):
        from repro.compiler.passes import fusion_groups, split_mpgemm_pass
        from repro.models.transformer import build_layer_graph

        compiled = compile_layer(
            BITNET_3B, LUT_SPEC, 1, 64, weight_bits=2, act_dtype=INT8
        )
        graph = split_mpgemm_pass(build_layer_graph(
            BITNET_3B, 1, 64, InferencePhase.PREFILL, weight_bits=2,
            act_dtype=INT8,
        ))
        groups = fusion_groups(graph)
        # One compiled kernel per fusion group, plus the fused-precompute
        # penalty entries the simulator reports separately.
        assert len(compiled.kernels) >= len(groups)
        group_names = {g.name for g in groups}
        assert group_names <= {k.name for k in compiled.kernels}
