"""Tests for the DFG IR and the transformer-layer builder."""

import pytest

from repro.compiler.dfg import DataflowGraph, OpKind, Operator, TensorSpec
from repro.datatypes.formats import FP16
from repro.errors import CompilerError
from repro.models.configs import LLAMA2_7B, OPT_175B
from repro.models.transformer import InferencePhase, build_layer_graph


def _op(name, inputs, outputs, kind=OpKind.ELEMENTWISE, flops=1.0):
    return Operator(
        name=name, kind=kind,
        inputs=tuple(TensorSpec(t, (4, 4)) for t in inputs),
        outputs=tuple(TensorSpec(t, (4, 4)) for t in outputs),
        flops=flops,
    )


class TestGraphStructure:
    def test_add_and_iterate(self):
        g = DataflowGraph()
        g.add(_op("a", ["x"], ["y"]))
        g.add(_op("b", ["y"], ["z"]))
        assert len(g) == 2
        assert [op.name for op in g] == ["a", "b"]

    def test_duplicate_name_rejected(self):
        g = DataflowGraph()
        g.add(_op("a", ["x"], ["y"]))
        with pytest.raises(CompilerError):
            g.add(_op("a", ["y"], ["z"]))

    def test_double_production_rejected(self):
        g = DataflowGraph()
        g.add(_op("a", ["x"], ["y"]))
        with pytest.raises(CompilerError):
            g.add(_op("b", ["x"], ["y"]))

    def test_producers_consumers(self):
        g = DataflowGraph()
        a = g.add(_op("a", ["x"], ["y"]))
        b = g.add(_op("b", ["y"], ["z"]))
        c = g.add(_op("c", ["y"], ["w"]))
        assert g.producer_of("y") is a
        assert g.consumers_of("y") == [b, c]
        assert g.predecessors(b) == [a]
        assert set(op.name for op in g.successors(a)) == {"b", "c"}

    def test_graph_io(self):
        g = DataflowGraph()
        g.add(_op("a", ["x"], ["y"]))
        g.add(_op("b", ["y"], ["z"]))
        assert [t.name for t in g.graph_inputs()] == ["x"]
        assert [t.name for t in g.graph_outputs()] == ["z"]

    def test_topological_order(self):
        g = DataflowGraph()
        g.add(_op("c", ["b_out"], ["c_out"]))  # added out of order
        g.add(_op("a", ["x"], ["a_out"]))
        g.add(_op("b", ["a_out"], ["b_out"]))
        order = [op.name for op in g.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detected(self):
        g = DataflowGraph()
        g.add(_op("a", ["z"], ["y"]))
        g.add(_op("b", ["y"], ["z"]))
        with pytest.raises(CompilerError):
            g.validate()

    def test_tensor_bytes(self):
        t = TensorSpec("w", (8, 4), FP16)
        assert t.bytes == 8 * 4 * 2
        packed = TensorSpec("w2", (8, 4), FP16, bits_override=2)
        assert packed.bytes == 8 * 4 * 2 / 8

    def test_clone_without(self):
        g = DataflowGraph()
        g.add(_op("a", ["x"], ["y"]))
        g.add(_op("b", ["y"], ["z"]))
        clone = g.clone_without(["a"])
        assert [op.name for op in clone] == ["b"]


class TestLayerBuilder:
    def test_prefill_graph_structure(self):
        g = build_layer_graph(LLAMA2_7B, 1, 128, InferencePhase.PREFILL)
        g.validate()
        kinds = [op.kind for op in g]
        assert kinds.count(OpKind.GEMM) == 6  # 4 linears + 2 attention
        assert OpKind.SOFTMAX in kinds
        assert OpKind.NORM in kinds

    def test_quantized_graph_uses_mpgemm(self):
        g = build_layer_graph(
            LLAMA2_7B, 1, 128, InferencePhase.PREFILL, weight_bits=2
        )
        mpgemms = [op for op in g if op.kind is OpKind.MPGEMM]
        assert len(mpgemms) == 4  # qkv, out_proj, ffn_up, ffn_down
        # Attention GEMMs stay uniform-precision.
        assert sum(1 for op in g if op.kind is OpKind.GEMM) == 2
        for op in mpgemms:
            assert op.attrs["weight_bits"] == 2
            assert op.inputs[1].bits == 2

    def test_prefill_tokens(self):
        g = build_layer_graph(OPT_175B, 2, 64, InferencePhase.PREFILL)
        qkv = next(op for op in g if op.name == "attn.qkv")
        assert qkv.outputs[0].shape[0] == 2 * 64

    def test_decode_tokens_and_context(self):
        g = build_layer_graph(
            OPT_175B, 32, 1, InferencePhase.DECODE, context=256
        )
        qkv = next(op for op in g if op.name == "attn.qkv")
        assert qkv.outputs[0].shape[0] == 32
        scores = next(op for op in g if op.name == "attn.scores")
        assert scores.outputs[0].shape[-1] == 256

    def test_flops_match_config_estimate(self):
        g = build_layer_graph(OPT_175B, 1, 2048, InferencePhase.PREFILL)
        linear_flops = sum(
            op.flops for op in g
            if op.kind is OpKind.GEMM and not op.name.startswith("attn.scores")
            and not op.name.startswith("attn.context")
        )
        expected = 2.0 * 2048 * OPT_175B.linear_weight_params
        assert linear_flops == pytest.approx(expected, rel=1e-12)

    def test_invalid_batch_rejected(self):
        with pytest.raises(CompilerError):
            build_layer_graph(OPT_175B, 0, 128, InferencePhase.PREFILL)

    def test_gated_ffn_has_gate_mul(self):
        gated = build_layer_graph(LLAMA2_7B, 1, 32, InferencePhase.PREFILL)
        assert any(op.name == "ffn.gate_mul" for op in gated)
        plain = build_layer_graph(OPT_175B, 1, 32, InferencePhase.PREFILL)
        assert not any(op.name == "ffn.gate_mul" for op in plain)
