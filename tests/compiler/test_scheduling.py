"""Tests for tiling, scheduling, and codegen."""

import numpy as np
import pytest

from repro.compiler.codegen import generate_kernel
from repro.compiler.scheduler import schedule_gemm
from repro.compiler.tiling import (
    TileConfig,
    arithmetic_intensity,
    enumerate_tiles,
    tile_memory_bytes,
)
from repro.datatypes.formats import FP16, INT8
from repro.errors import CompilerError
from repro.isa.lmma import LmmaInstruction
from repro.models.workloads import GemmShape
from repro.quant.weight import quantize_weights
from repro.sim.gpu_specs import A100, with_lut_extension


class TestTileConfig:
    def test_warp_accounting(self):
        tile = TileConfig(128, 128, 32, 64, 64)
        assert tile.warps == 4
        assert tile.threads == 128

    def test_warp_must_divide_block(self):
        with pytest.raises(CompilerError):
            TileConfig(128, 128, 32, 48, 64)

    def test_memory_bytes_low_bit_weights_shrink_smem(self):
        tile = TileConfig(128, 128, 32, 64, 64)
        fp16 = tile_memory_bytes(tile, 16, 16)
        int1 = tile_memory_bytes(tile, 16, 1)
        assert int1["smem_bytes"] < fp16["smem_bytes"]

    def test_table_registers_counted_for_lut(self):
        tile = TileConfig(64, 128, 32, 64, 64)
        no_lut = tile_memory_bytes(tile, 16, 1)
        lut = tile_memory_bytes(tile, 16, 1, table_bits=8)
        assert lut["table_reg_bytes"] > 0
        assert lut["reg_bytes"] > no_lut["reg_bytes"]

    def test_arithmetic_intensity_rises_with_low_bit_weights(self):
        tile = TileConfig(128, 128, 32, 64, 64)
        assert arithmetic_intensity(tile, 16, 1) > arithmetic_intensity(
            tile, 16, 16
        )

    def test_enumerate_respects_budgets(self):
        tiles = enumerate_tiles(
            1024, 1024, 1024, 16, 16,
            smem_budget_bytes=64 * 1024, reg_budget_bytes=128 * 1024,
        )
        assert tiles
        for tile in tiles:
            cost = tile_memory_bytes(tile, 16, 16)
            assert cost["smem_bytes"] <= 64 * 1024
            assert cost["reg_bytes"] <= 128 * 1024


class TestScheduler:
    SHAPE = GemmShape(2048, 4096, 4096)

    def test_mma_schedule(self):
        schedule = schedule_gemm(self.SHAPE, A100, FP16)
        assert not schedule.uses_lut
        assert schedule.instruction.name.startswith("mma.")
        assert schedule.blocks >= 1
        assert schedule.k_iterations >= 1

    def test_lut_schedule_binds_lmma(self):
        spec = with_lut_extension(A100, 4, 2, 1)
        schedule = schedule_gemm(self.SHAPE, spec, FP16, weight_bits=1,
                                 use_lut=True)
        assert schedule.uses_lut
        assert isinstance(schedule.instruction, LmmaInstruction)
        assert schedule.instruction.k == 4

    def test_lut_without_extension_rejected(self):
        with pytest.raises(CompilerError):
            schedule_gemm(self.SHAPE, A100, FP16, weight_bits=1, use_lut=True)

    def test_instruction_count_covers_tile(self):
        schedule = schedule_gemm(self.SHAPE, A100, FP16)
        ins = schedule.instruction
        per_iter = schedule.instructions_per_block_k_iter
        tile = schedule.tile
        macs_per_iter = tile.block_m * tile.block_n * tile.block_k
        assert per_iter * ins.m * ins.n * ins.k == macs_per_iter


class TestCodegen:
    def test_mma_kernel_executes_correctly(self):
        shape = GemmShape(32, 48, 64)
        schedule = schedule_gemm(shape, A100, FP16)
        kernel = generate_kernel(schedule)
        rng = np.random.default_rng(0)
        a = rng.normal(size=(shape.m, shape.k))
        w = rng.normal(size=(shape.n, shape.k))
        np.testing.assert_allclose(kernel.execute(a, w), a @ w.T, atol=1e-9)

    def test_lut_kernel_matches_dequant_reference(self):
        shape = GemmShape(32, 64, 64)
        spec = with_lut_extension(A100, 4, 2, 2)
        schedule = schedule_gemm(shape, spec, FP16, weight_bits=2,
                                 use_lut=True)
        kernel = generate_kernel(schedule)
        rng = np.random.default_rng(1)
        a = rng.normal(size=(shape.m, shape.k))
        qw = quantize_weights(rng.normal(size=(shape.n, shape.k)), 2)
        from repro.lut.mpgemm import dequant_mpgemm_reference

        out = kernel.execute(a, qw)
        ref = dequant_mpgemm_reference(a, qw, act_dtype=FP16)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_lut_kernel_requires_quantized_weight(self):
        shape = GemmShape(16, 64, 16)
        spec = with_lut_extension(A100, 4, 2, 1)
        schedule = schedule_gemm(shape, spec, FP16, weight_bits=1,
                                 use_lut=True)
        kernel = generate_kernel(schedule)
        with pytest.raises(CompilerError):
            kernel.execute(np.zeros((16, 16)), np.zeros((64, 16)))

    def test_shape_mismatch_rejected(self):
        shape = GemmShape(16, 32, 16)
        kernel = generate_kernel(schedule_gemm(shape, A100, FP16))
        with pytest.raises(CompilerError):
            kernel.execute(np.zeros((8, 16)), np.zeros((32, 16)))

    def test_kernel_statistics(self):
        shape = GemmShape(256, 512, 256)
        kernel = generate_kernel(schedule_gemm(shape, A100, FP16))
        assert kernel.total_instructions > 0
        assert kernel.smem_bytes_per_block > 0
        assert "gemm" in kernel.name
