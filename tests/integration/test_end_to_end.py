"""Cross-module integration tests.

Each test exercises a realistic multi-subsystem flow:

- quantize -> serialize -> deploy -> LUT-execute -> verify numerics;
- build layer DFG -> compile -> simulate -> compare against the plain
  simulator path;
- LMMA instruction executing the same tile as the generated kernel;
- the accuracy substrate running its linear layers through the exact
  engine the hardware model costs.
"""

import numpy as np
import pytest

from repro.compiler.model_compiler import compile_layer
from repro.compiler.scheduler import schedule_gemm
from repro.compiler.codegen import generate_kernel
from repro.datatypes.formats import FP16, INT8
from repro.isa.lmma import default_lmma_for
from repro.datatypes.formats import dtype_from_name
from repro.lut.mpgemm import (
    LutMpGemmConfig,
    LutMpGemmEngine,
    dequant_mpgemm_reference,
)
from repro.models.configs import BITNET_3B, LLAMA2_7B
from repro.models.transformer import InferencePhase
from repro.models.workloads import GemmShape, layer_gemm_shapes
from repro.quant.packing import load_quantized, save_quantized
from repro.quant.weight import quantize_weights
from repro.sim.gpu_specs import A100, with_lut_extension
from repro.sim.tile_sim import PrecomputeMode, TileSimulator

LUT_SPEC = with_lut_extension(A100, 4, reg_scale=2.0, weight_bits=2)


class TestDeploymentFlow:
    """quantize -> pack -> ship -> unpack -> LUT matmul."""

    def test_full_weight_lifecycle(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(64, 128))
        activations = rng.normal(size=(4, 128))

        qw = quantize_weights(weights, bits=2, axis=0)
        blob = save_quantized(qw)  # bytes on the wire
        restored = load_quantized(blob)

        engine = LutMpGemmEngine(
            restored, LutMpGemmConfig(act_dtype=FP16, table_dtype=INT8)
        )
        out = engine.matmul(activations)
        ref = dequant_mpgemm_reference(activations, restored, act_dtype=FP16)
        rel = np.abs(out - ref).max() / np.abs(ref).max()
        assert rel < 0.01  # only INT8-table rounding survives the trip

    def test_quantization_end_to_end_error_vs_fp(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(64, 128))
        activations = rng.normal(size=(4, 128))
        exact = activations @ weights.T
        qw = quantize_weights(weights, bits=4, axis=0)
        out = LutMpGemmEngine(qw, LutMpGemmConfig()).matmul(activations)
        # 4-bit per-channel quantization: ~10% worst-element output error.
        rel = np.abs(out - exact).max() / np.abs(exact).max()
        assert rel < 0.15


class TestCompilerSimulatorConsistency:
    def test_compiled_layer_time_matches_simulator(self):
        compiled = compile_layer(
            BITNET_3B, LUT_SPEC, batch=1, seqlen=512,
            weight_bits=2, act_dtype=INT8,
        )
        direct = TileSimulator(LUT_SPEC).time_model(
            BITNET_3B, 1, 512, InferencePhase.PREFILL,
            weight_bits=2, act_dtype=INT8,
            precompute=PrecomputeMode.FUSED,
        )
        assert compiled.layer_ms == pytest.approx(direct.total_ms, rel=1e-9)

    def test_layer_shapes_match_model_helper(self):
        compiled = compile_layer(LLAMA2_7B, A100, batch=1, seqlen=128)
        expected = layer_gemm_shapes(LLAMA2_7B, m=128)
        scheduled_shapes = {
            (k.schedule.shape.label or k.name).replace(".", "_"): (
                k.schedule.shape.n, k.schedule.shape.k
            )
            for k in compiled.matmul_kernels
        }
        for name, shape in expected.items():
            found = [
                s for label, s in scheduled_shapes.items()
                if name.replace("out_proj", "out_proj") in label
            ]
            assert found, f"missing scheduled kernel for {name}"
            assert found[0] == (shape.n, shape.k)


class TestInstructionKernelEngineAgreement:
    """LMMA semantics == generated kernel == engine, on the same tile."""

    def test_three_way_numerical_agreement(self):
        rng = np.random.default_rng(2)
        ins = default_lmma_for(dtype_from_name("int2"), FP16)
        a = rng.normal(size=(ins.m, ins.k))
        qw = quantize_weights(rng.normal(size=(ins.n, ins.k)), 2,
                              symmetric=True)

        via_instruction = ins.execute(a, qw, table_dtype=None)
        via_engine = LutMpGemmEngine(
            qw, LutMpGemmConfig(k=ins.k, act_dtype=FP16)
        ).matmul(a)
        np.testing.assert_allclose(via_instruction, via_engine, atol=1e-9)

        # The generated kernel needs a tileable problem; run the same
        # three-way check on a larger shape.
        shape = GemmShape(32, 128, 64)
        spec = with_lut_extension(A100, 4, 2.0, 2)
        a2 = rng.normal(size=(shape.m, shape.k))
        qw2 = quantize_weights(rng.normal(size=(shape.n, shape.k)), 2,
                               symmetric=True)
        schedule = schedule_gemm(shape, spec, FP16, weight_bits=2,
                                 use_lut=True)
        kernel = generate_kernel(schedule)
        via_kernel = kernel.execute(a2, qw2)
        via_engine2 = LutMpGemmEngine(
            qw2, LutMpGemmConfig(k=4, act_dtype=FP16)
        ).matmul(a2)
        np.testing.assert_allclose(via_kernel, via_engine2, atol=1e-9)


class TestAccuracyUsesRealEngine:
    def test_lut_executor_is_the_same_engine_numerics(self):
        """The Table 5 LUT path and a hand-built engine agree exactly."""
        from repro.accuracy.model import TransformerConfig, TransformerLM
        from repro.accuracy.quantize_model import (
            LinearMode,
            make_executor,
            quantize_lm_weights,
        )

        model = TransformerLM(
            TransformerConfig(vocab=16, dim=8, blocks=1, ctx=8), seed=0
        )
        executor = make_executor(model, LinearMode.LUT_INT8_TABLE, bits=2)
        quantized = quantize_lm_weights(model, bits=2)
        weight = model.blocks[0]["wq"]
        x = np.random.default_rng(3).normal(size=(5, 8))
        via_executor = executor(x, weight)
        engine = LutMpGemmEngine(
            quantized[weight.name], LutMpGemmConfig(table_dtype=INT8)
        )
        np.testing.assert_allclose(via_executor, engine.matmul(x), atol=1e-12)
