"""Tests for FP4 weights and KV-cache attention through the LUT path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.formats import FP16, INT8
from repro.errors import LutError
from repro.lut.attention import (
    QuantizedKvCache,
    dequant_decode_attention,
    float_decode_attention,
    lut_decode_attention,
)
from repro.lut.fp_weights import (
    FP4_E2M1_VALUES,
    fp4_dequant_reference,
    fp4_lut_mpgemm,
    quantize_fp4,
)


class TestFp4Quantization:
    def test_codes_on_grid(self):
        fw = quantize_fp4(np.random.default_rng(0).normal(size=(8, 16)))
        magnitudes = np.unique(np.abs(fw.codes))
        assert set(magnitudes) <= set(FP4_E2M1_VALUES)

    def test_absmax_maps_to_six(self):
        fw = quantize_fp4(np.array([[3.0, -12.0, 1.0]]))
        assert np.abs(fw.codes).max() == 6.0
        assert fw.dequantize()[0, 1] == -12.0

    def test_empty_rejected(self):
        with pytest.raises(LutError):
            quantize_fp4(np.zeros((0,)))


class TestFp4Lut:
    def test_matches_dequant_reference(self):
        rng = np.random.default_rng(1)
        fw = quantize_fp4(rng.normal(size=(8, 16)))
        a = rng.normal(size=(3, 16))
        np.testing.assert_allclose(
            fp4_lut_mpgemm(a, fw),
            fp4_dequant_reference(a, fw),
            atol=1e-12,
        )

    def test_gemv(self):
        rng = np.random.default_rng(2)
        fw = quantize_fp4(rng.normal(size=(8, 16)))
        a = rng.normal(size=16)
        np.testing.assert_allclose(
            fp4_lut_mpgemm(a, fw), fp4_dequant_reference(a, fw), atol=1e-12
        )

    def test_with_fp16_activations(self):
        rng = np.random.default_rng(3)
        fw = quantize_fp4(rng.normal(size=(8, 16)))
        a = rng.normal(size=(2, 16))
        np.testing.assert_allclose(
            fp4_lut_mpgemm(a, fw, act_dtype=FP16),
            fp4_dequant_reference(a, fw, act_dtype=FP16),
            atol=1e-12,
        )

    def test_shape_checks(self):
        fw = quantize_fp4(np.ones((4, 16)))
        with pytest.raises(LutError):
            fp4_lut_mpgemm(np.zeros((2, 8)), fw)
        with pytest.raises(LutError):
            fp4_lut_mpgemm(np.zeros((2, 16)), fw, k=3)

    def test_zero_weights_contribute_nothing(self):
        codes = np.zeros((4, 8))
        codes[0, 0] = 1.0
        fw = quantize_fp4(codes)
        a = np.ones((1, 8))
        out = fp4_lut_mpgemm(a, fw)
        ref = fp4_dequant_reference(a, fw)
        np.testing.assert_allclose(out, ref, atol=1e-12)
        assert out[0, 1] == pytest.approx(0.0, abs=1e-12)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_hypothesis(self, seed):
        rng = np.random.default_rng(seed)
        fw = quantize_fp4(rng.normal(size=(6, 8)) * rng.uniform(0.1, 10))
        a = rng.normal(size=(2, 8))
        np.testing.assert_allclose(
            fp4_lut_mpgemm(a, fw), fp4_dequant_reference(a, fw), atol=1e-9
        )


class TestKvAttention:
    HEADS, CONTEXT, DIM = 4, 32, 16

    def _caches(self, seed=0):
        rng = np.random.default_rng(seed)
        k = rng.normal(size=(self.HEADS, self.CONTEXT, self.DIM))
        v = rng.normal(size=(self.HEADS, self.CONTEXT, self.DIM))
        q = rng.normal(size=(self.HEADS, self.DIM))
        return q, k, v

    def test_lut_matches_dequant_exactly_without_table_quant(self):
        q, k, v = self._caches()
        cache = QuantizedKvCache.quantize(k, v, bits=4)
        lut = lut_decode_attention(q, cache, table_dtype=None)
        ref = dequant_decode_attention(q, cache)
        np.testing.assert_allclose(lut, ref, atol=1e-9)

    def test_int8_tables_small_extra_error(self):
        q, k, v = self._caches(seed=1)
        cache = QuantizedKvCache.quantize(k, v, bits=4)
        lut = lut_decode_attention(q, cache, table_dtype=INT8)
        ref = dequant_decode_attention(q, cache)
        rel = np.abs(lut - ref).max() / np.abs(ref).max()
        assert 0 < rel < 0.05

    def test_quantization_error_shrinks_with_bits(self):
        q, k, v = self._caches(seed=2)
        reference = float_decode_attention(q, k, v)
        errs = {}
        for bits in (2, 4, 8):
            cache = QuantizedKvCache.quantize(k, v, bits=bits)
            out = dequant_decode_attention(q, cache)
            errs[bits] = np.abs(out - reference).max()
        assert errs[8] < errs[4] < errs[2]

    def test_memory_accounting(self):
        _, k, v = self._caches()
        cache = QuantizedKvCache.quantize(k, v, bits=4)
        expected = 2 * self.HEADS * self.CONTEXT * self.DIM * 4 / 8
        assert cache.memory_bytes() == expected

    def test_memory_bytes_is_exact_int(self):
        _, k, v = self._caches()
        for bits in (2, 3, 4, 8):
            cache = QuantizedKvCache.quantize(k, v, bits=bits)
            got = cache.memory_bytes()
            assert isinstance(got, int)
            entry_bits = 2 * self.HEADS * self.CONTEXT * self.DIM * bits
            assert got == (entry_bits + 7) // 8

    def test_memory_bytes_rounds_partial_bytes_up(self):
        # 2 * 1 * 1 * 1 * 3 = 6 bits of payload must still occupy one
        # whole byte.
        rng = np.random.default_rng(0)
        k = rng.normal(size=(1, 1, 1))
        v = rng.normal(size=(1, 1, 1))
        cache = QuantizedKvCache.quantize(k, v, bits=3)
        assert cache.memory_bytes() == 1

    def test_shape_validation(self):
        q, k, v = self._caches()
        cache = QuantizedKvCache.quantize(k, v, bits=4)
        with pytest.raises(LutError):
            lut_decode_attention(q[:, :8], cache)
        with pytest.raises(LutError):
            QuantizedKvCache.quantize(k, v[:2], bits=4)
