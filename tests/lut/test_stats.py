"""Tests for LUT pipeline cost accounting and the software ablation."""

import numpy as np
import pytest

from repro.datatypes.formats import FP16, INT8
from repro.errors import LutError
from repro.lut.mpgemm import LutMpGemmConfig, LutMpGemmEngine
from repro.lut.stats import pipeline_stats, stats_for_config
from repro.quant.weight import quantize_weights


def engine_for(n=8, kdim=16, bits=2, **cfg):
    qw = quantize_weights(np.random.default_rng(0).normal(size=(n, kdim)),
                          bits)
    return LutMpGemmEngine(qw, LutMpGemmConfig(**cfg))


class TestPipelineStats:
    def test_symmetrization_halves_table(self):
        full = pipeline_stats(engine_for(symmetric_table=False), m=4)
        half = pipeline_stats(engine_for(symmetric_table=True), m=4)
        assert half.table_entries_per_group * 2 == full.table_entries_per_group
        assert half.table_bytes * 2 == full.table_bytes
        assert half.precompute_ops * 2 == full.precompute_ops

    def test_remap_eliminates_negations(self):
        with_neg = pipeline_stats(
            engine_for(symmetric_table=True, offline_remap=False), m=4
        )
        without = pipeline_stats(
            engine_for(symmetric_table=True, offline_remap=True), m=4
        )
        assert with_neg.runtime_negations > 0
        assert without.runtime_negations == 0
        assert with_neg.lookups == without.lookups

    def test_table_quant_halves_bytes(self):
        fp16 = pipeline_stats(
            engine_for(act_dtype=FP16, table_dtype=None), m=4
        )
        int8 = pipeline_stats(
            engine_for(act_dtype=FP16, table_dtype=INT8), m=4
        )
        assert int8.table_bytes * 2 == fp16.table_bytes

    def test_redundancy_scales_precompute_only(self):
        base = pipeline_stats(engine_for(), m=4, precompute_redundancy=1)
        redundant = pipeline_stats(engine_for(), m=4,
                                   precompute_redundancy=10)
        assert redundant.precompute_ops == 10 * base.precompute_ops
        assert redundant.lookups == base.lookups

    def test_lookups_scale_with_weight_bits(self):
        w1 = pipeline_stats(engine_for(bits=1), m=4)
        w4 = pipeline_stats(engine_for(bits=4), m=4)
        assert w4.lookups == 4 * w1.lookups

    def test_invalid_m(self):
        with pytest.raises(LutError):
            pipeline_stats(engine_for(), m=0)

    def test_shape_only_matches_engine_based(self):
        cfg = LutMpGemmConfig(act_dtype=FP16, table_dtype=INT8)
        via_engine = pipeline_stats(
            engine_for(n=8, kdim=16, bits=2, act_dtype=FP16,
                       table_dtype=INT8),
            m=4,
        )
        shape_only = stats_for_config(8, 16, 4, 2, cfg)
        assert shape_only == via_engine


class TestSwAblationExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments import ablation_sw_opts

        return ablation_sw_opts.run()

    def test_five_steps(self, rows):
        assert len(rows) == 5

    def test_monotone_improvements(self, rows):
        tables = [r.table_mbytes for r in rows]
        precompute = [r.precompute_mops for r in rows]
        assert tables == sorted(tables, reverse=True)
        assert precompute == sorted(precompute, reverse=True)

    def test_total_savings(self, rows):
        assert rows[0].table_mbytes / rows[-1].table_mbytes == pytest.approx(
            4.0
        )
        assert rows[0].precompute_mops / rows[-1].precompute_mops >= 64

    def test_remap_step_removes_runtime_ops(self, rows):
        # Step 3 (half tables, no remap) carries negations; step 4 drops
        # them back to the baseline runtime op count.
        assert rows[2].runtime_mops > rows[3].runtime_mops
