"""Tests for the ternary (BitNet b1.58) quantization and LUT path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LutError, QuantizationError
from repro.lut.ternary import (
    TERNARY_TABLE_ENTRIES,
    TernaryLutEngine,
    precompute_ternary_table,
    ternary_dequant_reference,
    ternary_lut_mpgemm,
    ternary_table_symmetry_holds,
)
from repro.quant.ternary import (
    TernaryWeight,
    digits_to_index,
    index_to_digits,
    pack_ternary,
    packed_bytes,
    quantize_ternary,
    unpack_ternary,
)


class TestTernaryQuantization:
    def test_digits_in_range(self):
        tw = quantize_ternary(np.random.default_rng(0).normal(size=(8, 9)))
        assert set(np.unique(tw.digits)) <= {-1, 0, 1}

    def test_absmean_scale(self):
        w = np.array([[1.0, -1.0, 2.0, -2.0, 0.0, 0.0]])
        tw = quantize_ternary(w)
        assert tw.scale == pytest.approx(1.0)

    def test_large_values_saturate(self):
        tw = quantize_ternary(np.array([[100.0, -100.0, 0.01]]))
        np.testing.assert_array_equal(tw.digits, [[1, -1, 0]])

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_ternary(np.zeros((0,)))

    def test_invalid_digits_rejected(self):
        with pytest.raises(QuantizationError):
            TernaryWeight(digits=np.array([2]), scale=1.0)

    def test_zero_tensor_safe(self):
        tw = quantize_ternary(np.zeros((3, 3)))
        np.testing.assert_array_equal(tw.dequantize(), 0.0)


class TestBase3Packing:
    def test_index_roundtrip(self):
        digits = index_to_digits(np.arange(27))
        np.testing.assert_array_equal(digits_to_index(digits), np.arange(27))

    def test_pack_roundtrip(self):
        rng = np.random.default_rng(1)
        digits = rng.integers(-1, 2, size=99)
        packed = pack_ternary(digits)
        np.testing.assert_array_equal(unpack_ternary(packed, 99), digits)

    def test_density_5_bits_per_3_weights(self):
        count = 3 * 1024
        assert packed_bytes(count) == (count // 3 * 5 + 7) // 8
        # vs 2-bit-per-digit storage: 5/3 < 2 bits per weight.
        assert packed_bytes(count) < count * 2 // 8

    def test_non_multiple_rejected(self):
        with pytest.raises(QuantizationError):
            pack_ternary(np.zeros(4, dtype=np.int64))
        with pytest.raises(QuantizationError):
            unpack_ternary(np.zeros(10, dtype=np.uint8), 4)

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_pack_roundtrip_hypothesis(self, seed, groups):
        rng = np.random.default_rng(seed)
        digits = rng.integers(-1, 2, size=3 * groups)
        packed = pack_ternary(digits)
        np.testing.assert_array_equal(
            unpack_ternary(packed, digits.size), digits
        )


class TestTernaryLut:
    def _case(self, n=8, kdim=12, m=3, seed=0):
        rng = np.random.default_rng(seed)
        tw = quantize_ternary(rng.normal(size=(n, kdim)))
        return rng.normal(size=(m, kdim)), tw

    def test_table_semantics(self):
        a = np.array([[1.0, 2.0, 4.0]])
        table = precompute_ternary_table(a)[0, 0]
        assert table.shape == (TERNARY_TABLE_ENTRIES,)
        # idx 13 = digits (0,0,0); idx 26 = (+1,+1,+1).
        assert table[13] == 0.0
        assert table[26] == 7.0
        assert table[0] == -7.0

    def test_table_odd_symmetry(self):
        a = np.random.default_rng(2).normal(size=(4, 12))
        assert ternary_table_symmetry_holds(precompute_ternary_table(a))

    def test_matches_dequant_reference(self):
        a, tw = self._case()
        out = ternary_lut_mpgemm(a, tw)
        ref = ternary_dequant_reference(a, tw)
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_gemv_path(self):
        a, tw = self._case(seed=3)
        engine = TernaryLutEngine(tw)
        np.testing.assert_allclose(
            engine.matmul(a[0]),
            ternary_dequant_reference(a[0], tw),
            atol=1e-12,
        )

    def test_int8_tables_small_error(self):
        from repro.datatypes.formats import INT8

        a, tw = self._case(n=16, kdim=48, m=4, seed=4)
        ref = ternary_dequant_reference(a, tw)
        out = ternary_lut_mpgemm(a, tw, table_dtype=INT8)
        assert 0 < np.abs(out - ref).max() / np.abs(ref).max() < 0.02

    def test_k_not_multiple_of_3_rejected(self):
        rng = np.random.default_rng(5)
        tw = quantize_ternary(rng.normal(size=(4, 8)))
        with pytest.raises(LutError):
            TernaryLutEngine(tw)

    def test_activation_shape_checked(self):
        _, tw = self._case()
        engine = TernaryLutEngine(tw)
        with pytest.raises(LutError):
            engine.matmul(np.zeros((2, 9)))

    def test_storage_density(self):
        _, tw = self._case()
        assert TernaryLutEngine(tw).storage_bits_per_weight() == pytest.approx(
            5.0 / 3.0
        )

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_hypothesis(self, seed):
        rng = np.random.default_rng(seed)
        tw = quantize_ternary(rng.normal(size=(5, 9)))
        a = rng.normal(size=(2, 9))
        np.testing.assert_allclose(
            ternary_lut_mpgemm(a, tw),
            ternary_dequant_reference(a, tw),
            atol=1e-10,
        )
