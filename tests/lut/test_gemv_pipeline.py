"""Tests for the GEMV path and the precompute-as-operator pipeline."""

import numpy as np
import pytest

from repro.errors import LutError
from repro.lut.gemv import lut_gemv
from repro.lut.mpgemm import LutMpGemmConfig, dequant_mpgemm_reference
from repro.lut.pipeline import (
    LutGemmOperator,
    PrecomputeOperator,
    run_fused_pipeline,
    run_split_pipeline,
)
from repro.lut.mpgemm import LutMpGemmEngine
from repro.quant.weight import quantize_weights


def make_case(m=4, n=8, kdim=16, bits=2, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(m, kdim)), quantize_weights(
        rng.normal(size=(n, kdim)), bits
    )


class TestGemv:
    def test_matches_reference(self):
        a, qw = make_case(seed=1)
        ref = dequant_mpgemm_reference(a[0], qw)
        np.testing.assert_allclose(lut_gemv(a[0], qw), ref, atol=1e-9)

    def test_rejects_2d(self):
        a, qw = make_case()
        with pytest.raises(LutError):
            lut_gemv(a, qw)


class TestPipelines:
    def test_split_and_fused_identical(self):
        a, qw = make_case(seed=2)
        out_split, _ = run_split_pipeline(a, qw)
        out_fused, _ = run_fused_pipeline(a, qw)
        np.testing.assert_array_equal(out_split, out_fused)

    def test_both_match_reference(self):
        a, qw = make_case(seed=3)
        ref = dequant_mpgemm_reference(a, qw)
        out, _ = run_fused_pipeline(a, qw)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_prologue_applied(self):
        a, qw = make_case(seed=4)
        gelu = lambda x: 0.5 * x * (1 + np.tanh(0.7978845608 * (x + 0.044715 * x**3)))
        out, _ = run_fused_pipeline(a, qw, prologue=gelu)
        ref = dequant_mpgemm_reference(gelu(a), qw)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    def test_split_pipeline_has_extra_traffic(self):
        a, qw = make_case(seed=5)
        _, split_traffic = run_split_pipeline(a, qw)
        _, fused_traffic = run_fused_pipeline(a, qw)
        assert split_traffic["precompute_write_bytes"] > 0
        assert split_traffic["table_reload_bytes"] > 0
        assert sum(fused_traffic.values()) == 0

    def test_rejects_1d(self):
        a, qw = make_case()
        with pytest.raises(LutError):
            run_split_pipeline(a[0], qw)

    def test_precompute_operator_traffic_accounting(self):
        a, qw = make_case(m=8, kdim=16, seed=6)
        engine = LutMpGemmEngine(
            qw, LutMpGemmConfig(act_dtype=None, table_dtype=None)
        )
        pre = PrecomputeOperator(engine)
        # 16 K / k=4 -> 4 groups, 8 symmetric entries, fp16 entries.
        assert pre.bytes_written(8) == 8 * 4 * 8 * 16 // 8
        table = pre(a)
        assert table.shape == (8, 4, 8)

    def test_operators_compose_to_matmul(self):
        a, qw = make_case(seed=7)
        engine = LutMpGemmEngine(qw)
        table = PrecomputeOperator(engine)(a)
        out = LutGemmOperator(engine)(a, table)
        np.testing.assert_allclose(out, engine.matmul(a), atol=1e-12)
