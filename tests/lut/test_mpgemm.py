"""Tests for the LUT mpGEMM engine — the paper's core numerical claim.

The headline invariant: the LUT pipeline (reinterpret -> symmetrized
table -> bit-serial lookup -> affine correction) computes *exactly* the
same result as the dequantization-based reference, for every weight
width, activation format, quantization granularity, and symmetry mode.
The only lossy knob is INT8 table quantization, whose error is bounded.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.formats import FP16, FP8_E4M3, INT8
from repro.errors import LutError
from repro.lut.mpgemm import (
    LutMpGemmConfig,
    LutMpGemmEngine,
    dequant_mpgemm_reference,
    lut_mpgemm,
)
from repro.quant.reinterpret import reinterpret_symmetric
from repro.quant.weight import quantize_weights


def make_case(m=3, n=8, kdim=16, bits=2, seed=0, **quant_kwargs):
    rng = np.random.default_rng(seed)
    activations = rng.normal(size=(m, kdim))
    weights = rng.normal(size=(n, kdim))
    qw = quantize_weights(weights, bits, **quant_kwargs)
    return activations, qw


class TestExactEquivalence:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 8])
    def test_matches_dequant_reference(self, bits):
        a, qw = make_case(bits=bits, seed=bits)
        ref = dequant_mpgemm_reference(a, qw)
        out = lut_mpgemm(a, qw)
        np.testing.assert_allclose(out, ref, atol=1e-9)

    @pytest.mark.parametrize("symmetric_table", [True, False])
    @pytest.mark.parametrize("offline_remap", [True, False])
    def test_all_symmetry_modes_agree(self, symmetric_table, offline_remap):
        a, qw = make_case(bits=2, seed=42)
        ref = dequant_mpgemm_reference(a, qw)
        cfg = LutMpGemmConfig(
            symmetric_table=symmetric_table, offline_remap=offline_remap
        )
        np.testing.assert_allclose(lut_mpgemm(a, qw, cfg), ref, atol=1e-9)

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_group_length_k(self, k):
        a, qw = make_case(kdim=16, bits=2, seed=k)
        ref = dequant_mpgemm_reference(a, qw)
        np.testing.assert_allclose(
            lut_mpgemm(a, qw, LutMpGemmConfig(k=k)), ref, atol=1e-9
        )

    def test_per_channel_scales(self):
        a, qw = make_case(bits=2, seed=3, axis=0)
        ref = dequant_mpgemm_reference(a, qw)
        np.testing.assert_allclose(lut_mpgemm(a, qw), ref, atol=1e-9)

    def test_per_group_scales(self):
        a, qw = make_case(kdim=32, bits=2, seed=4, axis=1, group_size=8)
        ref = dequant_mpgemm_reference(a, qw)
        np.testing.assert_allclose(lut_mpgemm(a, qw), ref, atol=1e-9)

    def test_group_smaller_than_k_rejected(self):
        a, qw = make_case(kdim=32, bits=2, seed=5, axis=1, group_size=2)
        with pytest.raises(LutError):
            lut_mpgemm(a, qw)

    def test_symmetric_weights_zero_correction(self):
        a, qw = make_case(bits=2, seed=6, symmetric=True)
        ref = dequant_mpgemm_reference(a, qw)
        np.testing.assert_allclose(lut_mpgemm(a, qw), ref, atol=1e-9)

    def test_reinterpreted_weight_accepted_directly(self):
        a, qw = make_case(bits=2, seed=7)
        rw = reinterpret_symmetric(qw)
        np.testing.assert_allclose(
            lut_mpgemm(a, rw), dequant_mpgemm_reference(a, qw), atol=1e-9
        )

    @pytest.mark.parametrize("act_dtype", [FP16, FP8_E4M3])
    def test_float_activation_formats(self, act_dtype):
        """With rounded activations, LUT and reference still agree exactly
        because both consume the same rounded values."""
        a, qw = make_case(bits=2, seed=8)
        cfg = LutMpGemmConfig(act_dtype=act_dtype)
        ref = dequant_mpgemm_reference(a, qw, act_dtype=act_dtype)
        np.testing.assert_allclose(lut_mpgemm(a, qw, cfg), ref, atol=1e-9)


class TestEngineInterface:
    def test_1d_activation_gives_1d_output(self):
        a, qw = make_case(bits=1, seed=9)
        engine = LutMpGemmEngine(qw)
        out = engine.matmul(a[0])
        assert out.shape == (qw.codes.shape[0],)

    def test_accumulator_input(self):
        a, qw = make_case(bits=2, seed=10)
        engine = LutMpGemmEngine(qw)
        base = engine.matmul(a)
        accum = np.ones_like(base)
        np.testing.assert_allclose(engine.matmul(a, accum=accum), base + 1.0)

    def test_shape_mismatch_rejected(self):
        _, qw = make_case(bits=2)
        engine = LutMpGemmEngine(qw)
        with pytest.raises(LutError):
            engine.matmul(np.zeros((2, 5)))

    def test_kdim_not_divisible_rejected(self):
        rng = np.random.default_rng(0)
        qw = quantize_weights(rng.normal(size=(4, 6)), 2)
        with pytest.raises(LutError):
            LutMpGemmEngine(qw, LutMpGemmConfig(k=4))

    def test_weight_must_be_2d(self):
        qw = quantize_weights(np.random.default_rng(0).normal(size=(4,)), 2)
        with pytest.raises(LutError):
            LutMpGemmEngine(qw)

    def test_properties(self):
        _, qw = make_case(n=8, kdim=16, bits=2)
        engine = LutMpGemmEngine(qw)
        assert engine.out_features == 8
        assert engine.in_features == 16

    def test_bad_config_rejected(self):
        with pytest.raises(LutError):
            LutMpGemmConfig(k=0)
        with pytest.raises(LutError):
            LutMpGemmConfig(table_dtype=FP16)


class TestTableQuantization:
    def test_error_small_and_bounded(self):
        a, qw = make_case(m=4, n=16, kdim=64, bits=2, seed=11)
        ref = dequant_mpgemm_reference(a, qw)
        out = lut_mpgemm(a, qw, LutMpGemmConfig(table_dtype=INT8))
        rel = np.abs(out - ref).max() / np.abs(ref).max()
        assert 0 < rel < 0.01  # lossy but tiny (Table 5's mechanism)

    def test_int8_tables_tighter_than_int4(self):
        from repro.datatypes.formats import INT4

        a, qw = make_case(m=4, n=16, kdim=64, bits=2, seed=12)
        ref = dequant_mpgemm_reference(a, qw)
        err8 = np.abs(
            lut_mpgemm(a, qw, LutMpGemmConfig(table_dtype=INT8)) - ref
        ).max()
        err4 = np.abs(
            lut_mpgemm(a, qw, LutMpGemmConfig(table_dtype=INT4)) - ref
        ).max()
        assert err8 < err4


class TestHypothesisEquivalence:
    @given(
        bits=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        m=st.integers(min_value=1, max_value=4),
        groups=st.integers(min_value=1, max_value=3),
        symmetric=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_lut_equals_dequant(self, bits, seed, m, groups, symmetric):
        rng = np.random.default_rng(seed)
        kdim = 4 * groups
        a = rng.normal(size=(m, kdim))
        qw = quantize_weights(
            rng.normal(size=(5, kdim)), bits, symmetric=symmetric
        )
        ref = dequant_mpgemm_reference(a, qw)
        np.testing.assert_allclose(lut_mpgemm(a, qw), ref, atol=1e-8)
