"""Tests for LUT table precompute and symmetrization (Eqs. 4-6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.formats import FP16, FP8_E4M3
from repro.errors import LutError
from repro.lut.table import (
    expand_symmetric_table,
    lookup_full,
    lookup_symmetric,
    lookup_symmetric_remapped,
    precompute_symmetric_table,
    precompute_table,
    remap_weight_bits_offline,
)


def acts(m=2, length=8, seed=0):
    return np.random.default_rng(seed).normal(size=(m, length))


class TestPrecompute:
    def test_table_shape(self):
        table = precompute_table(acts(3, 12), k=4)
        assert table.shape == (3, 3, 16)

    def test_entry_semantics(self):
        """Entry idx = sum of +-a with sign from bit pattern (Figure 3)."""
        a = np.array([1.0, 2.0, 4.0, 8.0])
        table = precompute_table(a[None, :], k=4)[0, 0]
        # idx 0b0000 -> all minus; idx 0b1111 -> all plus.
        assert table[0b0000] == -15.0
        assert table[0b1111] == 15.0
        # idx 0b0001: +a0 -a1 -a2 -a3 = 1-2-4-8.
        assert table[0b0001] == -13.0
        assert table[0b0100] == -1.0 + -2.0 + 4.0 - 8.0

    def test_odd_symmetry_eq4(self):
        """LUT[idx] == -LUT[~idx] for every index (Eq. 4)."""
        table = precompute_table(acts(4, 16, seed=1), k=4)
        idx = np.arange(16)
        comp = (~idx) & 15
        np.testing.assert_allclose(
            table[..., idx], -table[..., comp], atol=1e-12
        )

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_symmetric_table_is_half(self, k):
        a = acts(2, 2 * k, seed=k)
        half = precompute_symmetric_table(a, k)
        assert half.shape[-1] == 1 << (k - 1)

    def test_expand_reconstructs_full(self):
        a = acts(2, 8, seed=2)
        full = precompute_table(a, 4)
        half = precompute_symmetric_table(a, 4)
        np.testing.assert_allclose(expand_symmetric_table(half, 4), full)

    def test_expand_rejects_wrong_width(self):
        with pytest.raises(LutError):
            expand_symmetric_table(np.zeros((2, 2, 4)), 4)

    def test_length_must_divide(self):
        with pytest.raises(LutError):
            precompute_table(acts(1, 7), 4)

    def test_k_must_be_positive(self):
        with pytest.raises(LutError):
            precompute_table(acts(), 0)

    def test_act_dtype_rounding_applied(self):
        a = np.array([[1.0001, 2.0, 4.0, 8.0]])
        t_exact = precompute_table(a, 4)
        t_fp8 = precompute_table(a, 4, act_dtype=FP8_E4M3)
        assert not np.allclose(t_exact, t_fp8)
        # FP8 rounding of 1.0001 -> 1.0 exactly.
        assert t_fp8[0, 0, 0b1111] == 15.0


class TestLookup:
    def test_lookup_full_matches_manual(self):
        a = acts(2, 8, seed=3)
        table = precompute_table(a, 4)
        indices = np.array([[3, 9, 15], [0, 7, 8]])  # (ngroups=2, n=3)
        out = lookup_full(table, indices)
        assert out.shape == (2, 2, 3)
        for m in range(2):
            for g in range(2):
                for col in range(3):
                    assert out[m, g, col] == table[m, g, indices[g, col]]

    def test_lookup_indices_shape_checked(self):
        table = precompute_table(acts(1, 8), 4)
        with pytest.raises(LutError):
            lookup_full(table, np.array([1, 2, 3]))

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_symmetric_lookup_equals_full(self, k):
        """Eq. 5: the half table + MSB rule reproduces every entry."""
        a = acts(3, 2 * k, seed=k)
        full = precompute_table(a, k)
        half = precompute_symmetric_table(a, k)
        rng = np.random.default_rng(k)
        indices = rng.integers(0, 1 << k, size=(2, 5))
        np.testing.assert_allclose(
            lookup_symmetric(half, indices, k),
            lookup_full(full, indices),
            atol=1e-12,
        )

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_offline_remap_equals_runtime_complement(self, k):
        """Eq. 6: offline remap + sign-only lookup == Eq. 5 lookup."""
        a = acts(2, 2 * k, seed=10 + k)
        half = precompute_symmetric_table(a, k)
        rng = np.random.default_rng(20 + k)
        indices = rng.integers(0, 1 << k, size=(2, 7))
        remapped = remap_weight_bits_offline(indices, k)
        np.testing.assert_allclose(
            lookup_symmetric_remapped(half, remapped, k),
            lookup_symmetric(half, indices, k),
            atol=1e-12,
        )

    def test_remap_preserves_msb(self):
        indices = np.arange(16)
        remapped = remap_weight_bits_offline(indices, 4)
        np.testing.assert_array_equal(remapped >> 3, indices >> 3)

    def test_remap_is_involution(self):
        indices = np.arange(16)
        twice = remap_weight_bits_offline(
            remap_weight_bits_offline(indices, 4), 4
        )
        np.testing.assert_array_equal(twice, indices)


class TestHypothesis:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_symmetry_holds_for_any_activations(self, k, seed):
        a = np.random.default_rng(seed).normal(size=(1, k))
        table = precompute_table(a, k)[0, 0]
        idx = np.arange(1 << k)
        comp = (~idx) & ((1 << k) - 1)
        np.testing.assert_allclose(table[idx], -table[comp], atol=1e-9)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_table_size_halved(self, k):
        a = np.zeros((1, k))
        full = precompute_table(a, k)
        half = precompute_symmetric_table(a, k)
        assert half.shape[-1] * 2 == full.shape[-1]
