"""Tests for the multi-task evaluation suite."""

import numpy as np
import pytest

from repro.accuracy.model import TransformerConfig, TransformerLM, train_lm
from repro.accuracy.tasks import TASK_NAMES, TaskSuite
from repro.errors import AccuracyError


class TestTaskSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return TaskSuite(vocab=32, seed=3)

    def test_five_distinct_tasks(self, suite):
        assert set(suite.languages) == set(TASK_NAMES)
        transitions = [
            lang.transitions for lang in suite.languages.values()
        ]
        for i in range(len(transitions)):
            for j in range(i + 1, len(transitions)):
                assert not np.allclose(transitions[i], transitions[j])

    def test_mixture_covers_all_tasks(self, suite):
        stream = suite.mixture_stream(5000, seed=1)
        assert stream.size == 5000
        assert stream.min() >= 0
        assert stream.max() < 32

    def test_mixture_deterministic(self, suite):
        a = suite.mixture_stream(1000, seed=2)
        b = suite.mixture_stream(1000, seed=2)
        np.testing.assert_array_equal(a, b)

    def test_short_stream_rejected(self, suite):
        with pytest.raises(AccuracyError):
            suite.mixture_stream(10)

    def test_evaluate_returns_all_tasks_plus_average(self, suite):
        model = TransformerLM(
            TransformerConfig(vocab=32, dim=8, blocks=1, ctx=8), seed=0
        )
        scores = suite.evaluate(model, eval_length=500)
        assert set(scores) == set(TASK_NAMES) | {"Avg."}
        assert scores["Avg."] == pytest.approx(
            np.mean([scores[n] for n in TASK_NAMES])
        )

    def test_training_on_mixture_beats_untrained(self, suite):
        cfg = TransformerConfig(vocab=32, dim=16, blocks=1, ctx=8)
        model = TransformerLM(cfg, seed=1)
        before = suite.evaluate(model, eval_length=800)["Avg."]
        tokens = suite.mixture_stream(8000, seed=4)
        lang = next(iter(suite.languages.values()))
        train_lm(model, lang.batches(tokens, cfg.ctx, 24, seed=5), steps=200)
        after = suite.evaluate(model, eval_length=800)["Avg."]
        assert after > before + 0.03
