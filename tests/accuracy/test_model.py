"""Tests for the NumPy transformer LM, including gradient checks."""

import numpy as np
import pytest

from repro.accuracy.data import SyntheticLanguage
from repro.accuracy.model import (
    AdamOptimizer,
    TransformerConfig,
    TransformerLM,
    train_lm,
)
from repro.errors import AccuracyError


def tiny_model(seed=0):
    return TransformerLM(
        TransformerConfig(vocab=11, dim=8, blocks=2, ctx=6), seed=seed
    )


class TestForward:
    def test_logits_shape(self):
        model = tiny_model()
        tokens = np.random.default_rng(0).integers(0, 11, size=(3, 6))
        logits = model.forward(tokens)
        assert logits.shape == (3, 6, 11)

    def test_shorter_sequences_allowed(self):
        model = tiny_model()
        tokens = np.zeros((2, 4), dtype=np.int64)
        assert model.forward(tokens).shape == (2, 4, 11)

    def test_too_long_rejected(self):
        model = tiny_model()
        with pytest.raises(AccuracyError):
            model.forward(np.zeros((1, 7), dtype=np.int64))

    def test_1d_rejected(self):
        model = tiny_model()
        with pytest.raises(AccuracyError):
            model.forward(np.zeros(4, dtype=np.int64))

    def test_causality(self):
        """Changing a future token never changes past logits."""
        model = tiny_model(seed=3)
        tokens = np.random.default_rng(1).integers(0, 11, size=(1, 6))
        logits_a = model.forward(tokens).copy()
        tokens_b = tokens.copy()
        tokens_b[0, 5] = (tokens_b[0, 5] + 1) % 11
        logits_b = model.forward(tokens_b)
        np.testing.assert_allclose(
            logits_a[0, :5], logits_b[0, :5], atol=1e-12
        )
        assert not np.allclose(logits_a[0, 5], logits_b[0, 5])

    def test_loss_positive_and_near_uniform_at_init(self):
        model = tiny_model()
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, 11, size=(8, 6))
        targets = rng.integers(0, 11, size=(8, 6))
        loss = model.loss(model.forward(tokens), targets)
        assert abs(loss - np.log(11)) < 0.3


class TestGradients:
    """Numerical gradient checks for every parameter group."""

    @pytest.mark.parametrize("param_idx", range(8))
    def test_gradcheck_sampled_params(self, param_idx):
        model = tiny_model(seed=7)
        rng = np.random.default_rng(42)
        tokens = rng.integers(0, 11, size=(2, 6))
        targets = rng.integers(0, 11, size=(2, 6))

        params = model.parameters()
        param = params[param_idx % len(params)]

        model.zero_grad()
        loss0 = model.loss(model.forward(tokens), targets)
        model.backward()
        analytic = param.grad.copy()

        eps = 1e-6
        flat = param.value.reshape(-1)
        check_idx = rng.choice(flat.size, size=min(5, flat.size),
                               replace=False)
        for i in check_idx:
            original = flat[i]
            flat[i] = original + eps
            lp = model.loss(model.forward(tokens), targets)
            flat[i] = original - eps
            lm = model.loss(model.forward(tokens), targets)
            flat[i] = original
            numeric = (lp - lm) / (2 * eps)
            assert analytic.reshape(-1)[i] == pytest.approx(
                numeric, rel=1e-4, abs=1e-7
            )

    def test_gradcheck_attention_weights(self):
        model = tiny_model(seed=9)
        rng = np.random.default_rng(5)
        tokens = rng.integers(0, 11, size=(2, 5))
        targets = rng.integers(0, 11, size=(2, 5))
        model.zero_grad()
        model.loss(model.forward(tokens), targets)
        model.backward()
        for key in ("wq", "wk", "wv", "wo", "w1", "w2"):
            param = model.blocks[0][key]
            analytic = param.grad.copy()
            eps = 1e-6
            flat = param.value.reshape(-1)
            i = int(rng.integers(flat.size))
            original = flat[i]
            flat[i] = original + eps
            lp = model.loss(model.forward(tokens), targets)
            flat[i] = original - eps
            lm = model.loss(model.forward(tokens), targets)
            flat[i] = original
            numeric = (lp - lm) / (2 * eps)
            assert analytic.reshape(-1)[i] == pytest.approx(
                numeric, rel=1e-4, abs=1e-7
            ), key

    def test_backward_requires_forward_loss(self):
        model = tiny_model()
        with pytest.raises(AccuracyError):
            model.backward()


class TestTraining:
    def test_loss_decreases_on_synthetic_language(self):
        lang = SyntheticLanguage(vocab=11, branching=3, seed=1)
        tokens = lang.sample(4000, seed=2)
        model = tiny_model(seed=1)
        losses = train_lm(
            model, lang.batches(tokens, 6, 16, seed=3), steps=120, lr=5e-3
        )
        assert losses[-1] < losses[0] - 0.3

    def test_adam_updates_all_params(self):
        model = tiny_model()
        before = [p.value.copy() for p in model.parameters()]
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 11, size=(4, 6))
        targets = rng.integers(0, 11, size=(4, 6))
        optimizer = AdamOptimizer(model.parameters(), lr=1e-2)
        model.zero_grad()
        model.loss(model.forward(tokens), targets)
        model.backward()
        optimizer.step()
        changed = [
            not np.allclose(p.value, b)
            for p, b in zip(model.parameters(), before)
        ]
        assert all(changed)
