"""Tests for model quantization, the LUT inference path, and metrics."""

import numpy as np
import pytest

from repro.accuracy.data import SyntheticLanguage
from repro.accuracy.metrics import next_token_accuracy, perplexity
from repro.accuracy.model import TransformerConfig, TransformerLM, train_lm
from repro.accuracy.quantize_model import (
    LinearMode,
    apply_quantized_weights,
    make_executor,
    qat_finetune,
    quantize_lm_weights,
)
from repro.errors import AccuracyError


@pytest.fixture(scope="module")
def trained():
    """A small trained model + language shared across this module."""
    lang = SyntheticLanguage(vocab=32, branching=4, seed=5)
    train_tokens = lang.sample(8000, seed=6)
    val_tokens = lang.sample(2000, seed=7)
    cfg = TransformerConfig(vocab=32, dim=16, blocks=2, ctx=8)
    model = TransformerLM(cfg, seed=5)
    train_lm(model, lang.batches(train_tokens, cfg.ctx, 24, seed=8),
             steps=250, lr=4e-3)
    return model, lang, train_tokens, val_tokens


class TestQuantizeWeights:
    def test_covers_all_linear_weights(self, trained):
        model, *_ = trained
        quantized = quantize_lm_weights(model, bits=2)
        assert set(quantized) == {w.name for w in model.linear_weights()}

    def test_bits_validated(self, trained):
        model, *_ = trained
        with pytest.raises(AccuracyError):
            quantize_lm_weights(model, bits=0)

    def test_apply_overwrites_values(self, trained):
        model, *_ = trained
        # Work on a copy-like fresh model to avoid mutating the fixture.
        clone = TransformerLM(model.config, seed=99)
        quantized = quantize_lm_weights(clone, bits=2)
        apply_quantized_weights(clone, quantized)
        for w in clone.linear_weights():
            grid = np.unique(
                np.round(w.value / np.maximum(np.abs(w.value).max(), 1e-9), 6)
            )
            # 2-bit per-channel -> few distinct values per row.
            per_row_unique = {len(np.unique(row)) for row in w.value}
            assert max(per_row_unique) <= 4


class TestExecutors:
    def test_fp_mode_is_none(self, trained):
        model, *_ = trained
        assert make_executor(model, LinearMode.FP) is None

    def test_dequant_executor_changes_outputs(self, trained):
        model, _, _, val = trained
        ppl_fp = perplexity(model, val)
        ex = make_executor(model, LinearMode.QUANT_DEQUANT, bits=2)
        ppl_q = perplexity(model, val, executor=ex)
        assert ppl_q != ppl_fp

    def test_lut_matches_dequant_closely(self, trained):
        """INT8 table quantization on top of W2 changes PPL negligibly."""
        model, _, _, val = trained
        dequant = make_executor(model, LinearMode.QUANT_DEQUANT, bits=2)
        lut = make_executor(model, LinearMode.LUT_INT8_TABLE, bits=2)
        ppl_q = perplexity(model, val, executor=dequant)
        ppl_lut = perplexity(model, val, executor=lut)
        assert abs(ppl_lut - ppl_q) / ppl_q < 0.01

    def test_lut_executor_exact_without_final_bias(self, trained):
        """Per-token logits through LUT differ from dequant only by the
        INT8 table rounding."""
        model, lang, _, val = trained
        dequant = make_executor(model, LinearMode.QUANT_DEQUANT, bits=2)
        lut = make_executor(model, LinearMode.LUT_INT8_TABLE, bits=2)
        tokens = val[: model.config.ctx][None, :]
        a = model.forward(tokens, executor=dequant)
        b = model.forward(tokens, executor=lut)
        rel = np.abs(a - b).max() / max(np.abs(a).max(), 1e-9)
        assert rel < 0.05


class TestQat:
    def test_qat_recovers_ptq_damage(self, trained):
        model, lang, train_tokens, val = trained
        clone = TransformerLM(model.config, seed=5)
        for p_dst, p_src in zip(clone.parameters(), model.parameters()):
            p_dst.value[...] = p_src.value
        ptq = make_executor(clone, LinearMode.QUANT_DEQUANT, bits=2)
        ppl_ptq = perplexity(clone, val, executor=ptq)
        qat_finetune(clone, lang.batches(train_tokens, clone.config.ctx, 24,
                                         seed=9), bits=2, steps=120)
        qat = make_executor(clone, LinearMode.QUANT_DEQUANT, bits=2)
        ppl_qat = perplexity(clone, val, executor=qat)
        assert ppl_qat < ppl_ptq


class TestMetrics:
    def test_perplexity_bounds(self, trained):
        model, lang, _, val = trained
        ppl = perplexity(model, val)
        # Better than uniform, no better than the language entropy.
        assert np.exp(lang.entropy_bound_nats()) * 0.9 < ppl < 32

    def test_accuracy_above_chance(self, trained):
        model, _, _, val = trained
        acc = next_token_accuracy(model, val)
        assert acc > 2.0 / 32

    def test_short_stream_rejected(self, trained):
        model, *_ = trained
        with pytest.raises(AccuracyError):
            perplexity(model, np.zeros(4, dtype=np.int64))


class TestSyntheticLanguage:
    def test_deterministic(self):
        a = SyntheticLanguage(seed=3).sample(100, seed=4)
        b = SyntheticLanguage(seed=3).sample(100, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_transition_rows_normalized(self):
        lang = SyntheticLanguage(vocab=16, branching=4, seed=0)
        rows = lang.transitions.sum(axis=1)
        np.testing.assert_allclose(rows, 1.0)

    def test_entropy_below_uniform(self):
        lang = SyntheticLanguage(vocab=32, branching=4, seed=0)
        assert lang.entropy_bound_nats() < np.log(32)

    def test_branching_validation(self):
        with pytest.raises(AccuracyError):
            SyntheticLanguage(vocab=4, branching=8)

    def test_batches_shapes(self):
        lang = SyntheticLanguage(vocab=16, branching=4, seed=1)
        tokens = lang.sample(500, seed=2)
        inputs, targets = next(lang.batches(tokens, ctx=8, batch_size=4))
        assert inputs.shape == targets.shape == (4, 8)
        np.testing.assert_array_equal(inputs[:, 1:], targets[:, :-1])
