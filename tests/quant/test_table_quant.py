"""Tests for INT8 table quantization (paper Section 3.1.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes.formats import FP16, INT4, INT8
from repro.errors import LutError
from repro.quant.table_quant import (
    QuantizedTable,
    dequantize_table,
    quantize_table,
    table_quantization_error,
)


class TestQuantizeTable:
    def test_codes_within_int8(self):
        table = np.random.default_rng(0).normal(size=(16, 8)) * 100
        qt = quantize_table(table)
        assert qt.codes.min() >= -128
        assert qt.codes.max() <= 127

    def test_per_table_scale_shape(self):
        table = np.zeros((3, 5, 8))
        qt = quantize_table(table)
        assert qt.scales.shape == (3, 5, 1)

    def test_extreme_entry_maps_to_max_code(self):
        table = np.array([[1.0, -2.0, 4.0, -8.0]])
        qt = quantize_table(table)
        assert np.abs(qt.codes).max() == 127

    def test_all_zero_table_safe(self):
        qt = quantize_table(np.zeros((2, 8)))
        np.testing.assert_array_equal(qt.dequantize(), 0.0)

    def test_error_bounded_by_half_scale(self):
        table = np.random.default_rng(1).normal(size=(32, 8)) * 10
        qt = quantize_table(table)
        err = np.abs(qt.dequantize() - table)
        assert np.all(err <= qt.scales / 2 + 1e-12)

    def test_float_target_rejected(self):
        with pytest.raises(LutError):
            quantize_table(np.zeros((2, 8)), FP16)

    def test_scalar_table_rejected(self):
        with pytest.raises(LutError):
            quantize_table(np.float64(1.0))

    def test_int4_coarser_than_int8(self):
        table = np.random.default_rng(2).normal(size=(64, 8))
        assert table_quantization_error(table, INT4) > table_quantization_error(
            table, INT8
        )

    def test_dequantize_alias(self):
        table = np.random.default_rng(3).normal(size=(4, 8))
        qt = quantize_table(table)
        np.testing.assert_array_equal(dequantize_table(qt), qt.dequantize())

    def test_entries_property(self):
        assert quantize_table(np.zeros((4, 8))).entries == 8


class TestHypothesis:
    @given(
        st.lists(
            st.floats(-1000, 1000, allow_nan=False), min_size=8, max_size=8
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_relative_error_small(self, entries):
        table = np.array([entries])
        qt = quantize_table(table)
        amax = np.abs(table).max()
        if amax > 0:
            assert np.abs(qt.dequantize() - table).max() <= amax / 127.0 + 1e-9

    @given(st.integers(min_value=-20, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance_power_of_two(self, exponent):
        """Scaling by 2**e scales the reconstruction exactly (no re-rounding)."""
        factor = 2.0 ** exponent
        base = np.array([[1.0, -0.5, 0.25, -0.125, 0.8, -0.9, 0.3, -0.7]])
        q1 = quantize_table(base).dequantize()
        q2 = quantize_table(base * factor).dequantize()
        np.testing.assert_allclose(q2, q1 * factor, rtol=1e-12, atol=0)
