"""Tests for bit-plane (bit-serial) decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.bitplane import (
    from_bitplanes,
    from_signed_bitplanes,
    pack_bits,
    to_bitplanes,
    to_signed_bitplanes,
    unpack_bits,
)
from repro.quant.reinterpret import reinterpret_symmetric
from repro.quant.weight import quantize_weights


class TestBinaryPlanes:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        codes = rng.integers(0, 1 << bits, size=(8, 16))
        planes = to_bitplanes(codes, bits)
        assert planes.shape == (bits, 8, 16)
        assert set(np.unique(planes)) <= {0, 1}
        np.testing.assert_array_equal(from_bitplanes(planes), codes)

    def test_out_of_range_rejected(self):
        with pytest.raises(QuantizationError):
            to_bitplanes(np.array([4]), 2)
        with pytest.raises(QuantizationError):
            to_bitplanes(np.array([-1]), 2)

    def test_plane_order_lsb_first(self):
        planes = to_bitplanes(np.array([0b0110]), 4)
        np.testing.assert_array_equal(planes.ravel(), [0, 1, 1, 0])


class TestSignedPlanes:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_planes_are_pm1(self, bits):
        qw = quantize_weights(
            np.random.default_rng(0).normal(size=(8, 16)), bits
        )
        rw = reinterpret_symmetric(qw)
        planes = to_signed_bitplanes(rw.codes, bits)
        assert set(np.unique(planes)) <= {-1, 1}

    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_weighted_sum_recovers_code(self, bits):
        """q' = sum_i c_i 2**i with c_i in {-1,+1} (the key LUT identity)."""
        qw = quantize_weights(
            np.random.default_rng(1).normal(size=(4, 32)), bits
        )
        rw = reinterpret_symmetric(qw)
        planes = to_signed_bitplanes(rw.codes, bits)
        np.testing.assert_array_equal(from_signed_bitplanes(planes), rw.codes)

    def test_even_codes_rejected(self):
        with pytest.raises(QuantizationError):
            to_signed_bitplanes(np.array([0]), 2)

    def test_non_pm1_rejected_on_reassembly(self):
        with pytest.raises(QuantizationError):
            from_signed_bitplanes(np.array([[2]]))

    @given(st.integers(min_value=1, max_value=8), st.integers(0, 10**9))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_hypothesis(self, bits, seed):
        rng = np.random.default_rng(seed)
        unsigned = rng.integers(0, 1 << bits, size=(16,))
        codes = 2 * unsigned - ((1 << bits) - 1)
        planes = to_signed_bitplanes(codes, bits)
        np.testing.assert_array_equal(from_signed_bitplanes(planes), codes)


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        plane = rng.integers(0, 2, size=100)
        packed = pack_bits(plane)
        assert packed.dtype == np.uint8
        assert packed.size == 13  # ceil(100 / 8)
        np.testing.assert_array_equal(unpack_bits(packed, 100), plane)

    def test_nonbinary_rejected(self):
        with pytest.raises(QuantizationError):
            pack_bits(np.array([0, 2]))

    def test_short_buffer_rejected(self):
        with pytest.raises(QuantizationError):
            unpack_bits(np.array([0xFF], dtype=np.uint8), 9)

    def test_storage_is_one_bit_per_weight(self):
        plane = np.ones(1024, dtype=np.int64)
        assert pack_bits(plane).nbytes == 128
