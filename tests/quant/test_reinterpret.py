"""Tests for weight reinterpretation (paper Eq. 2/3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.reinterpret import (
    check_symmetry,
    reinterpret_params,
    reinterpret_symmetric,
)
from repro.quant.weight import quantize_weights


def random_weights(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestEquation2:
    def test_paper_example_4bit(self):
        # Figure 7: q in {0..15}, s=1, z=0 -> q' in {-15..15 odd}, s'=.5,
        # z'=-15.
        s_new, z_new = reinterpret_params(1.0, 0.0, 4)
        assert s_new == 0.5
        assert z_new == -15.0

    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 8])
    def test_codes_are_symmetric_odd_grid(self, bits):
        qw = quantize_weights(random_weights((8, 16)), bits)
        rw = reinterpret_symmetric(qw)
        check_symmetry(rw)  # raises if not odd/in-range
        expected = 2 * qw.codes - ((1 << bits) - 1)
        np.testing.assert_array_equal(rw.codes, expected)

    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_exact_value_preservation(self, bits):
        """Eq. 3: s'(q' - z') == s(q - z), bit-for-bit in float64."""
        qw = quantize_weights(random_weights((16, 32), seed=7), bits)
        rw = reinterpret_symmetric(qw)
        np.testing.assert_array_equal(rw.dequantize(), qw.dequantize())

    def test_symmetric_quant_gives_zero_zero_point(self):
        qw = quantize_weights(random_weights((8, 8)), 4, symmetric=True)
        rw = reinterpret_symmetric(qw)
        np.testing.assert_allclose(rw.zero_point, 0.0)

    def test_unsigned_codes_roundtrip(self):
        qw = quantize_weights(random_weights((8, 8)), 3)
        rw = reinterpret_symmetric(qw)
        np.testing.assert_array_equal(rw.unsigned_codes(), qw.codes)

    def test_paper_worked_example(self):
        """The paper's worked dot product: w=0100, s=2, z=0.5 -> -A+B-C-D."""
        acts = np.array([[1.0, 2.0, 4.0, 8.0]])  # A, B, C, D
        codes = np.array([[0, 1, 0, 0]])  # W0..W3 bit order along K
        from repro.quant.weight import QuantizedWeight

        qw = QuantizedWeight(
            codes=codes, scale=np.array(2.0), zero_point=np.array(0.5), bits=1
        )
        expected = -1.0 + 2.0 - 4.0 - 8.0
        assert float((acts @ qw.dequantize().T).item()) == expected
        rw = reinterpret_symmetric(qw)
        assert rw.scale == 1.0
        assert rw.zero_point == 0.0
        np.testing.assert_array_equal(rw.codes, [[-1, 1, -1, -1]])
        assert float((acts @ rw.dequantize().T).item()) == expected


class TestSymmetryChecks:
    def test_even_codes_rejected(self):
        from repro.quant.reinterpret import ReinterpretedWeight

        rw = ReinterpretedWeight(
            codes=np.array([[2]]), scale=np.array(1.0),
            zero_point=np.array(0.0), bits=2,
        )
        with pytest.raises(QuantizationError):
            check_symmetry(rw)

    def test_out_of_range_rejected(self):
        from repro.quant.reinterpret import ReinterpretedWeight

        rw = ReinterpretedWeight(
            codes=np.array([[5]]), scale=np.array(1.0),
            zero_point=np.array(0.0), bits=2,
        )
        with pytest.raises(QuantizationError):
            check_symmetry(rw)


class TestHypothesis:
    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=-10.0, max_value=10.0),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=150, deadline=None)
    def test_value_preservation_any_affine(self, bits, scale, zero, code):
        """Eq. 2 preserves the real value for any (s, z, q)."""
        from repro.quant.weight import QuantizedWeight

        code = code % (1 << bits)
        qw = QuantizedWeight(
            codes=np.array([[code]]), scale=np.array(scale),
            zero_point=np.array(zero), bits=bits,
        )
        rw = reinterpret_symmetric(qw)
        # Exact in exact arithmetic; float64 evaluation order leaves at
        # most an ulp-level difference for non-representable z.
        np.testing.assert_allclose(
            rw.dequantize(), qw.dequantize(), rtol=1e-12, atol=1e-12
        )
