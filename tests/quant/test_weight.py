"""Tests for affine weight quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.weight import QuantizedWeight, dequantize, quantize_weights


def random_weights(shape, seed=0, scale=1.0):
    return np.random.default_rng(seed).normal(scale=scale, size=shape)


class TestQuantizeWeights:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 8])
    def test_codes_in_range(self, bits):
        qw = quantize_weights(random_weights((16, 32)), bits)
        assert qw.codes.min() >= 0
        assert qw.codes.max() <= (1 << bits) - 1

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_reconstruction_error_bounded(self, bits):
        w = random_weights((8, 64), seed=3)
        qw = quantize_weights(w, bits)
        # Per-tensor scale: error bounded by half an LSB step.
        assert np.max(np.abs(qw.dequantize() - w)) <= qw.scale.max() / 2 + 1e-12

    def test_per_channel_tighter_than_per_tensor(self):
        w = random_weights((16, 64), seed=4)
        w[0] *= 100.0  # one channel with a huge range
        per_tensor = quantize_weights(w, 4)
        per_channel = quantize_weights(w, 4, axis=0)
        err_t = np.abs(per_tensor.dequantize() - w)[1:].max()
        err_c = np.abs(per_channel.dequantize() - w)[1:].max()
        assert err_c < err_t

    def test_per_group_shapes(self):
        w = random_weights((4, 64))
        qw = quantize_weights(w, 2, axis=1, group_size=16)
        assert qw.codes.shape == (4, 64)
        assert qw.scale.shape == (4, 64)
        # Scale constant within each group of 16.
        grouped = qw.scale.reshape(4, 4, 16)
        assert np.all(grouped == grouped[..., :1])

    def test_group_requires_axis(self):
        with pytest.raises(QuantizationError):
            quantize_weights(random_weights((4, 8)), 2, group_size=4)

    def test_group_must_divide(self):
        with pytest.raises(QuantizationError):
            quantize_weights(random_weights((4, 10)), 2, axis=1, group_size=4)

    def test_empty_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_weights(np.zeros((0,)), 2)

    def test_symmetric_zero_point_is_midpoint(self):
        qw = quantize_weights(random_weights((8, 8)), 4, symmetric=True)
        assert np.all(qw.zero_point == 7.5)

    def test_symmetric_binary_maps_sign(self):
        w = np.array([[-1.0, 1.0, -0.5, 0.5]])
        qw = quantize_weights(w, 1, symmetric=True)
        np.testing.assert_array_equal(qw.codes, [[0, 1, 0, 1]])

    def test_constant_tensor(self):
        qw = quantize_weights(np.full((4, 4), 3.0), 4)
        # Degenerate range: scale falls back to 1, values recoverable.
        np.testing.assert_allclose(qw.dequantize(), 3.0)

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(QuantizationError):
            QuantizedWeight(
                codes=np.array([[4]]), scale=np.array(1.0),
                zero_point=np.array(0.0), bits=2,
            )

    def test_dequantize_function_alias(self):
        qw = quantize_weights(random_weights((4, 4)), 4)
        np.testing.assert_array_equal(dequantize(qw), qw.dequantize())


class TestQuantizeHypothesis:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_idempotent_on_grid(self, bits, seed):
        w = random_weights((4, 8), seed=seed)
        qw = quantize_weights(w, bits, symmetric=True)
        # Quantizing the dequantized values again is exact.
        qw2 = quantize_weights(qw.dequantize(), bits, symmetric=True)
        np.testing.assert_allclose(qw2.dequantize(), qw.dequantize(), atol=1e-9)
