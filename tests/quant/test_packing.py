"""Tests for the deployment packing/serialization format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.packing import (
    PackedWeight,
    deployment_indices,
    load_quantized,
    pack_codes,
    pack_quantized,
    save_quantized,
    unpack_codes,
)
from repro.quant.weight import quantize_weights


def sample_weight(bits=2, n=8, k=16, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return quantize_weights(rng.normal(size=(n, k)), bits, **kwargs)


class TestBitPacking:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 5, 8])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        codes = rng.integers(0, 1 << bits, size=100)
        packed = pack_codes(codes, bits)
        np.testing.assert_array_equal(
            unpack_codes(packed, bits, 100), codes
        )

    def test_density(self):
        codes = np.zeros(64, dtype=np.int64)
        assert pack_codes(codes, 2).nbytes == 16  # 64 * 2 / 8
        assert pack_codes(codes, 1).nbytes == 8

    def test_overflow_rejected(self):
        with pytest.raises(QuantizationError):
            pack_codes(np.array([4]), 2)

    def test_short_buffer_rejected(self):
        with pytest.raises(QuantizationError):
            unpack_codes(np.zeros(1, dtype=np.uint8), 4, 100)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_hypothesis(self, bits, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 1 << bits, size=37)
        np.testing.assert_array_equal(
            unpack_codes(pack_codes(codes, bits), bits, 37), codes
        )


class TestPackedWeight:
    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_pack_unpack_preserves_values(self, bits):
        qw = sample_weight(bits=bits)
        restored = pack_quantized(qw).unpack()
        np.testing.assert_array_equal(restored.codes, qw.codes)
        # Scales/zero-points stored at fp32: matches at fp32 precision
        # (absolute tolerance covers zero-point cancellation).
        np.testing.assert_allclose(
            restored.dequantize(), qw.dequantize(), rtol=1e-5, atol=1e-5
        )

    def test_bits_per_weight(self):
        qw = sample_weight(bits=2, n=16, k=64)
        packed = pack_quantized(qw)
        assert packed.bits_per_weight == pytest.approx(2.0, abs=0.1)

    def test_payload_smaller_than_fp16(self):
        qw = sample_weight(bits=2, n=64, k=256)
        packed = pack_quantized(qw)
        fp16_bytes = 64 * 256 * 2
        assert packed.payload_bytes < fp16_bytes / 4

    def test_per_channel_scales_survive(self):
        qw = sample_weight(bits=2, axis=0)
        restored = pack_quantized(qw).unpack()
        np.testing.assert_allclose(
            restored.dequantize(), qw.dequantize(), rtol=1e-5, atol=1e-5
        )


class TestSerialization:
    def test_npz_roundtrip(self):
        qw = sample_weight(bits=4, seed=3)
        blob = save_quantized(qw)
        restored = load_quantized(blob)
        np.testing.assert_array_equal(restored.codes, qw.codes)
        assert restored.bits == 4

    def test_blob_is_compact(self):
        qw = sample_weight(bits=1, n=128, k=1024)
        blob = save_quantized(qw)
        # Packed 1-bit payload is 16 KiB; npz framing stays modest.
        assert len(blob) < 32 * 1024

    def test_loaded_weight_runs_through_lut_engine(self):
        from repro.lut.mpgemm import dequant_mpgemm_reference, lut_mpgemm

        qw = sample_weight(bits=2, seed=4)
        restored = load_quantized(save_quantized(qw))
        a = np.random.default_rng(5).normal(size=(3, 16))
        np.testing.assert_allclose(
            lut_mpgemm(a, restored),
            dequant_mpgemm_reference(a, restored),
            atol=1e-9,
        )


class TestDeploymentIndices:
    def test_matches_engine_internal_state(self):
        from repro.lut.mpgemm import LutMpGemmConfig, LutMpGemmEngine

        qw = sample_weight(bits=2, seed=6)
        indices = deployment_indices(qw)
        engine = LutMpGemmEngine(qw, LutMpGemmConfig())
        # The remapped low bits + MSB must reproduce the plan's folded
        # (half-table index, sign) pairs that every backend consumes.
        low, sign = engine.plan.sym_fold()
        half_mask = (1 << 3) - 1
        np.testing.assert_array_equal(indices & half_mask, low)
        np.testing.assert_array_equal(
            np.where((indices >> 3) & 1 == 1, -1.0, 1.0), sign
        )

    def test_shape(self):
        qw = sample_weight(bits=2, n=8, k=16)
        indices = deployment_indices(qw, lut_k=4)
        assert indices.shape == (2, 4, 8)  # (bits, K/k, N)

    def test_remap_changes_indices(self):
        qw = sample_weight(bits=2, seed=7)
        remapped = deployment_indices(qw, remap=True)
        raw = deployment_indices(qw, remap=False)
        assert not np.array_equal(remapped, raw)
        # MSBs agree (remap only rewrites the low bits).
        np.testing.assert_array_equal(remapped >> 3, raw >> 3)
