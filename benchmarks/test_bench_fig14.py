"""Bench: regenerate Figure 14 (tensor-core MNK Pareto panels)."""

from benchmarks.conftest import run_once
from repro.hw.dotprod import DotProductKind


def test_bench_fig14(benchmark, show):
    run = run_once(benchmark, "fig14")
    show(run.text)
    panels = run.value
    assert len(panels) == 12
    assert all(p.winner is DotProductKind.LUT_TENSOR_CORE for p in panels)
    w1fp16 = next(
        p for p in panels
        if p.weight_bits == 1 and p.act_dtype.name == "fp16"
    )
    assert w1fp16.best[DotProductKind.LUT_TENSOR_CORE].mnk == (2, 64, 4)
    # 4x-6x-class reduction at W1 (paper's headline).
    lut = w1fp16.best[DotProductKind.LUT_TENSOR_CORE]
    mac = w1fp16.best[DotProductKind.MAC]
    assert mac.area_um2 / lut.area_um2 >= 4.0
    assert mac.power_mw / lut.power_mw >= 4.0
