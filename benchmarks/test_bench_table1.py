"""Bench: regenerate Table 1 (overall comparison)."""

from benchmarks.conftest import run_once


def test_bench_table1(benchmark, show):
    run = run_once(benchmark, "table1")
    show(run.text)
    rows = run.value
    assert len(rows) == 7
    base, int8, lut4, lut8 = rows[:4]
    assert base.decode_ms > int8.decode_ms > lut4.decode_ms > lut8.decode_ms
    assert 3.0 <= base.decode_ms / lut8.decode_ms <= 7.0  # paper 5.51x
    assert lut8.tc_area_per_sm_mm2 < base.tc_area_per_sm_mm2
