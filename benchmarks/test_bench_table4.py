"""Bench: regenerate Table 4 (precompute fusion)."""

from benchmarks.conftest import run_once
from repro.experiments import table4_fusion


def test_bench_table4(benchmark, show):
    run = run_once(benchmark, "table4")
    show(run.text)
    rows = run.value
    naive, fused = table4_fusion.mean_overheads(rows)
    assert 12.0 <= naive <= 28.0  # paper: 16.47% / 24.41%
    assert 0.5 <= fused <= 5.0    # paper: 2.62% / 2.52%
