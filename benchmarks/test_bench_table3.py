"""Bench: regenerate Table 3 (accelerator feature comparison)."""

from benchmarks.conftest import run_once
from repro.experiments import table3_accels


def test_bench_table3(benchmark, show):
    rows = run_once(benchmark, table3_accels.run)
    show(table3_accels.format_result(rows))
    assert [r.name for r in rows][-1] == "LUT Tensor Core"
    assert rows[-1].compiler_stack
