"""Bench: regenerate Table 3 (accelerator feature comparison)."""

from benchmarks.conftest import run_once


def test_bench_table3(benchmark, show):
    run = run_once(benchmark, "table3")
    show(run.text)
    rows = run.value
    assert [r.name for r in rows][-1] == "LUT Tensor Core"
    assert rows[-1].compiler_stack
