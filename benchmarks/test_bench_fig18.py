"""Bench: regenerate Figure 18 (LUT TC vs LUT-GEMM comparison)."""

from benchmarks.conftest import run_once
from repro.experiments import fig18_lutgemm_compare


def test_bench_fig18(benchmark, show):
    run = run_once(benchmark, "fig18")
    show(run.text)
    rows = run.value
    s = fig18_lutgemm_compare.summary(rows)
    # Paper: LUT TC up to 1.42x faster GEMV, 72.2x faster GEMM.
    assert 1.2 <= s["max_gemv_ltc_vs_lutgemm"] <= 3.5
    assert 40.0 <= s["max_gemm_ltc_vs_lutgemm"] <= 120.0
    # LUT-GEMM only ever helps on GEMV.
    for r in rows:
        if r.mode == "gemm" and r.lutgemm_speedup is not None:
            assert r.lutgemm_speedup < 0.05
        if r.mode == "gemv":
            assert r.ltc_speedup >= (r.lutgemm_speedup or 0.0) * 0.99
