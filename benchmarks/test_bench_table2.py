"""Bench: regenerate Table 2 (UNPU ablation)."""

import pytest

from benchmarks.conftest import run_once


def test_bench_table2(benchmark, show):
    run = run_once(benchmark, "table2")
    show(run.text)
    rows = run.value
    for row, target in zip(rows, (1.0, 1.317, 1.351, 1.440)):
        assert row.normalized_compute_intensity == pytest.approx(
            target, rel=0.12
        )
