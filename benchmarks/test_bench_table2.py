"""Bench: regenerate Table 2 (UNPU ablation)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table2_unpu


def test_bench_table2(benchmark, show):
    rows = run_once(benchmark, table2_unpu.run)
    show(table2_unpu.format_result(rows))
    for row, target in zip(rows, (1.0, 1.317, 1.351, 1.440)):
        assert row.normalized_compute_intensity == pytest.approx(
            target, rel=0.12
        )
