"""Bench: regenerate Figure 17 (end-to-end inference speedups)."""

from benchmarks.conftest import run_once
from repro.experiments import fig17_e2e_speedup


def test_bench_fig17(benchmark, show):
    run = run_once(benchmark, "fig17")
    show(run.text)
    cells = run.value
    peak = fig17_e2e_speedup.max_speedup(cells)
    assert 6.0 <= peak <= 13.0  # paper: up to 8.2x
    # Every LUT configuration beats the FP16 baseline.
    lut_cells = [c for c in cells if "DRM" in c.config]
    assert all(c.speedup > 1.0 for c in lut_cells)
