"""Bench: regenerate Table 5 (table quantization accuracy)."""

from benchmarks.conftest import run_once


def test_bench_table5(benchmark, show):
    run = run_once(benchmark, "table5")
    show(run.text)
    result = run.value
    fp = result.row("FP full-size")
    small = result.row("FP half-size")
    quant = result.row("W2A-FP")
    assert fp.perplexity < quant.perplexity < small.perplexity
    assert result.table_quant_ppl_delta_pct < 1.0  # paper: ~0.1%
