"""Bench: regenerate Figure 16 (end-to-end simulator accuracy)."""

from benchmarks.conftest import run_once


def test_bench_fig16(benchmark, show):
    run = run_once(benchmark, "fig16")
    show(run.text)
    result = run.value
    assert len(result.cells) == 24
    assert 1.0 <= result.mape_pct <= 9.0  # paper: 5.21%
