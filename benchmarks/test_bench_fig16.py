"""Bench: regenerate Figure 16 (end-to-end simulator accuracy)."""

from benchmarks.conftest import run_once
from repro.experiments import fig16_sim_accuracy


def test_bench_fig16(benchmark, show):
    result = run_once(benchmark, fig16_sim_accuracy.run)
    show(fig16_sim_accuracy.format_result(result))
    assert len(result.cells) == 24
    assert 1.0 <= result.mape_pct <= 9.0  # paper: 5.21%
