"""Bench: regenerate Figure 11 (DSE along K)."""

from benchmarks.conftest import run_once
from repro.experiments import fig11_dse_k


def test_bench_fig11(benchmark, show):
    series = run_once(benchmark, fig11_dse_k.run)
    show(fig11_dse_k.format_result(series))
    peaks = {s.act_dtype.name: s.peak_k for s in series}
    assert peaks["int8"] == 4
    assert peaks["int16"] == 4
    assert peaks["fp16"] == 5
    assert peaks["fp8_e4m3"] in (4, 5)
