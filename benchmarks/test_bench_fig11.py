"""Bench: regenerate Figure 11 (DSE along K)."""

from benchmarks.conftest import run_once


def test_bench_fig11(benchmark, show):
    run = run_once(benchmark, "fig11")
    show(run.text)
    series = run.value
    peaks = {s.act_dtype.name: s.peak_k for s in series}
    assert peaks["int8"] == 4
    assert peaks["int16"] == 4
    assert peaks["fp16"] == 5
    assert peaks["fp8_e4m3"] in (4, 5)
