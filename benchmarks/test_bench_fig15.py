"""Bench: regenerate Figure 15 (Accel-Sim-style kernel study)."""

from benchmarks.conftest import run_once


def test_bench_fig15(benchmark, show):
    run = run_once(benchmark, "fig15")
    show(run.text)
    rows = run.value
    cublas = next(r for r in rows if r.label == "A100 cuBLAS")
    assert 0.8 * 312 <= cublas.achieved_tflops <= 312
    # LUT 1X W1AFP16 matches cuBLAS with a fraction of the area.
    lut1 = next(
        r for r in rows
        if r.array_scale == 1 and r.weight_bits == 1 and r.act_bits == 16
    )
    assert abs(lut1.achieved_tflops - cublas.achieved_tflops) < 0.15 * (
        cublas.achieved_tflops
    )
    # Register scaling matters at 8X.
    w1_8x = [r for r in rows if r.weight_bits == 1 and r.act_bits == 16
             and r.array_scale == 8]
    stock = next(r for r in w1_8x if r.reg_scale == 1.0)
    wide = next(r for r in w1_8x if r.reg_scale == 8.0)
    assert wide.achieved_tflops > 1.2 * stock.achieved_tflops
