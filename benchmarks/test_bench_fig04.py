"""Bench: regenerate Figure 4 (kernel performance gap)."""

from benchmarks.conftest import run_once
from repro.experiments import fig04_kernel_gap


def test_bench_fig04(benchmark, show):
    rows = run_once(benchmark, fig04_kernel_gap.run)
    show(fig04_kernel_gap.format_result(rows))
    gemv = [r for r in rows if r.batch == 1]
    assert all(3.0 <= r.cutlass_speedup <= 4.3 for r in gemv)
    big = [r for r in rows if r.batch >= 1024]
    assert any(r.lutgemm_speedup is None for r in big)  # Seg. Error
    assert all(
        r.lutgemm_speedup is None or r.lutgemm_speedup < 0.05 for r in big
    )
