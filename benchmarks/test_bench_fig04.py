"""Bench: regenerate Figure 4 (kernel performance gap)."""

from benchmarks.conftest import run_once


def test_bench_fig04(benchmark, show):
    run = run_once(benchmark, "fig4")
    show(run.text)
    rows = run.value
    gemv = [r for r in rows if r.batch == 1]
    assert all(3.0 <= r.cutlass_speedup <= 4.3 for r in gemv)
    big = [r for r in rows if r.batch >= 1024]
    assert any(r.lutgemm_speedup is None for r in big)  # Seg. Error
    assert all(
        r.lutgemm_speedup is None or r.lutgemm_speedup < 0.05 for r in big
    )
