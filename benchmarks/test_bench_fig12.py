"""Bench: regenerate Figure 12 (DP4 PPA comparison)."""

from benchmarks.conftest import run_once
from repro.experiments import fig12_dp4_ppa


def test_bench_fig12(benchmark, show):
    rows = run_once(benchmark, fig12_dp4_ppa.run)
    show(fig12_dp4_ppa.format_result(rows))
    by = {r.label: r for r in rows}
    assert 0.6 * 61.55 <= (
        by["WINT1AFP16 LUT"].compute_density_tflops_mm2
    ) <= 1.4 * 61.55
    assert 0.7 * 3.39 <= (
        by["WFP16AFP16 MAC"].compute_density_tflops_mm2
    ) <= 1.3 * 3.39
    assert by["WINT1AFP16 LUT"].power_mw < by["WFP16AFP16 MAC"].power_mw
