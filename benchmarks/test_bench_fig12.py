"""Bench: regenerate Figure 12 (DP4 PPA comparison)."""

from benchmarks.conftest import run_once


def test_bench_fig12(benchmark, show):
    run = run_once(benchmark, "fig12")
    show(run.text)
    rows = run.value
    by = {r.label: r for r in rows}
    assert 0.6 * 61.55 <= (
        by["WINT1AFP16 LUT"].compute_density_tflops_mm2
    ) <= 1.4 * 61.55
    assert 0.7 * 3.39 <= (
        by["WFP16AFP16 MAC"].compute_density_tflops_mm2
    ) <= 1.3 * 3.39
    assert by["WINT1AFP16 LUT"].power_mw < by["WFP16AFP16 MAC"].power_mw
