"""Bench: time the mpGEMM kernel backends (reference/naive/blocked).

This is the acceptance gate for the kernel-backend subsystem: the
blocked default must beat the legacy naive path on the prefill shape
(M=64, N=K=1024, bits=4) while never materializing the naive path's
``(M, bits, G, N)`` intermediate, and every LUT backend must agree with
the dequantization reference to float noise in the lossless config.
"""

from benchmarks.conftest import run_once


def test_bench_backends(benchmark, show):
    run = run_once(benchmark, "bench_backends")
    show(run.text)
    rows = {(r.shape_label, r.backend): r for r in run.value}

    naive = rows[("prefill", "lut-naive")]
    blocked = rows[("prefill", "lut-blocked")]
    # The blocked fast path must be strictly faster than the legacy path.
    assert blocked.time_s < naive.time_s
    # ... without ever allocating an (M, bits, G, N)-sized intermediate:
    # its traced peak must sit far below that single naive allocation
    # (which the naive run must itself exceed).
    assert blocked.peak_traced_bytes is not None
    assert blocked.peak_traced_bytes < naive.naive_intermediate_bytes // 4
    assert naive.peak_traced_bytes >= naive.naive_intermediate_bytes

    # Lossless configuration: LUT backends match the dequant reference
    # to float accumulation noise, the reference backend exactly.
    for (label, backend), row in rows.items():
        if backend == "reference":
            assert row.max_abs_err == 0.0, (label, backend)
        else:
            assert row.max_abs_err < 1e-9, (label, backend)
