"""Benches: the ablation/extension studies beyond the paper's tables."""

from benchmarks.conftest import run_once
from repro.experiments import (
    ablation_kv_attention,
    ablation_sensitivity,
    ablation_sw_opts,
)
from repro.hw.sensitivity import conclusions_robust


def test_bench_ablation_sw_opts(benchmark, show):
    rows = run_once(benchmark, ablation_sw_opts.run)
    show(ablation_sw_opts.format_result(rows))
    assert rows[0].table_mbytes / rows[-1].table_mbytes >= 4.0
    assert rows[0].precompute_mops / rows[-1].precompute_mops >= 64


def test_bench_ablation_kv_attention(benchmark, show):
    rows = run_once(benchmark, ablation_kv_attention.run)
    show(ablation_kv_attention.format_result(rows))
    for r in rows:
        # LUT adds only table rounding, far below the cache-quant damage
        # (except at 8-bit caches, where both are tiny).
        assert r.lut_rel_error < 0.02
    assert rows[-1].memory_reduction >= 8.0


def test_bench_sensitivity(benchmark, show):
    reports = run_once(benchmark, ablation_sensitivity.run)
    show(ablation_sensitivity.format_result(reports))
    assert conclusions_robust(reports)
