"""Benches: the ablation/extension studies beyond the paper's tables."""

from benchmarks.conftest import run_once
from repro.hw.sensitivity import conclusions_robust


def test_bench_ablation_sw_opts(benchmark, show):
    run = run_once(benchmark, "ablation_sw")
    show(run.text)
    rows = run.value
    assert rows[0].table_mbytes / rows[-1].table_mbytes >= 4.0
    assert rows[0].precompute_mops / rows[-1].precompute_mops >= 64


def test_bench_ablation_kv_attention(benchmark, show):
    run = run_once(benchmark, "ablation_kv")
    show(run.text)
    rows = run.value
    for r in rows:
        # LUT adds only table rounding, far below the cache-quant damage
        # (except at 8-bit caches, where both are tiny).
        assert r.lut_rel_error < 0.02
    assert rows[-1].memory_reduction >= 8.0


def test_bench_sensitivity(benchmark, show):
    run = run_once(benchmark, "sensitivity")
    show(run.text)
    reports = run.value
    assert conclusions_robust(reports)
