"""Bench: regenerate Figure 13 (area vs weight bit-width)."""

from benchmarks.conftest import run_once


def test_bench_fig13(benchmark, show):
    run = run_once(benchmark, "fig13")
    show(run.text)
    series = run.value
    by = {s.label: s for s in series}
    mac = by["MAC WFP16AFP16"].areas_um2[1]
    ltc = by["LUT WINTXAFP16 LUT Tensor Core"]
    conv = by["LUT WINTXAFP16 Conventional"]
    add = by["ADD WINTXAFP16"]
    # ADD wins only at 1-2 bits; conventional loses past 2; LTC wins to 6.
    assert add.areas_um2[1] < mac and add.areas_um2[2] < mac
    assert add.areas_um2[4] > mac
    assert conv.areas_um2[4] > mac
    assert ltc.areas_um2[4] < mac
    assert ltc.areas_um2[8] > mac
