"""Bench: regenerate Figure 19 (roofline analysis)."""

from benchmarks.conftest import run_once


def test_bench_fig19(benchmark, show):
    run = run_once(benchmark, "fig19")
    show(run.text)
    result = run.value
    naive = result.point("WINT1AFP16 LUT naive")
    opt = result.point("WINT1AFP16 LUT + all opt. + double reg")
    assert naive.operational_intensity < result.lut_ridge
    assert opt.operational_intensity > result.lut_ridge
    assert opt.achieved_flops > 2.0 * naive.achieved_flops
