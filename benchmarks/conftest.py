"""Shared pytest-benchmark configuration for the experiment benches.

Every bench regenerates one of the paper's tables/figures, prints the
formatted rows (run pytest with ``-s`` to see them), and asserts the
headline shape so a bench run doubles as a reproduction check.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--print-results",
        action="store_true",
        default=False,
        help="print each experiment's formatted table/figure output",
    )


@pytest.fixture
def show(request, capsys):
    """Printer honoring --print-results."""
    enabled = request.config.getoption("--print-results")

    def _show(text: str) -> None:
        if enabled:
            with capsys.disabled():
                print("\n" + text)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
