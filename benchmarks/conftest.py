"""Shared pytest-benchmark configuration for the experiment benches.

Every bench regenerates one of the paper's tables/figures through the
same harness the CLI uses (:mod:`repro.experiments.harness`), prints the
formatted rows (run pytest with ``--print-results`` to see them), and
asserts the headline shape so a bench run doubles as a reproduction
check. Benches always execute uncached — the point is to time the real
computation.
"""

from dataclasses import dataclass
from typing import Any

import pytest

from repro.experiments.harness import get_spec


def pytest_addoption(parser):
    parser.addoption(
        "--print-results",
        action="store_true",
        default=False,
        help="print each experiment's formatted table/figure output",
    )


@pytest.fixture
def show(request, capsys):
    """Printer honoring --print-results."""
    enabled = request.config.getoption("--print-results")

    def _show(text: str) -> None:
        if enabled:
            with capsys.disabled():
                print("\n" + text)

    return _show


@dataclass(frozen=True)
class BenchRun:
    """What a bench sees: the live result object plus the formatted text."""

    value: Any
    text: str


def run_once(benchmark, name: str) -> BenchRun:
    """Run one experiment exactly once, uncached, under the benchmark timer.

    Resolves the experiment through the harness registry but times only
    ``run()`` itself — formatting stays outside the measured region.
    """
    spec = get_spec(name)
    value = benchmark.pedantic(spec.run, rounds=1, iterations=1)
    return BenchRun(value=value, text=spec.format(value))
