"""Tensor-core-level PPA composition (paper Figs. 9 and 14, Table 1).

A tensor core of shape ``(M, N, K)`` computes
``O[M, N] += A[M, K] x W[N, K]`` per (bit-serial) cycle. Per Fig. 9, the
LUT-based array consists of:

- ``M`` tables of ``2**(K-1)`` entries (table-shared parallelism: each
  entry broadcast to ``N`` MUX units),
- ``N`` grouped binary weight sets of ``K`` bits (query-shared
  parallelism: each set broadcast to ``M`` MUX units),
- ``M x N`` MUX-based lanes with bit-serial accumulators.

The paper's Eq. 7/8: total table size ``M * 2**(K-1) * LUT_BIT`` and
grouped weight size ``K * N * W_BIT``.

The elongated-tile result (optimal ``M2 N64 K4``) emerges from the
structure: tables grow with ``M * 2**(K-1)``, MUX lanes with ``M * N``,
weight registers with ``K * N``, and I/O with the operand perimeter — so
a long-N, small-M, K=4 array minimizes area x power at fixed
``M * N * K``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.datatypes.formats import DataType, FP16
from repro.errors import HardwareModelError
from repro.hw.dotprod import (
    DEFAULT_PARAMS,
    DotProductKind,
    DotProdParams,
    _accum_bits,
    _rescale_cost,
)
from repro.hw.tech import TSMC28, TechnologyModel
from repro.hw.units import (
    CircuitCost,
    ZERO_COST,
    adder_for,
    adder_tree,
    barrel_shifter,
    int_adder,
    int_addsub,
    multiplier_for,
    mux,
    register,
)


@dataclass(frozen=True)
class TensorCoreConfig:
    """Shape + datapath style of one tensor core."""

    kind: DotProductKind
    m: int
    n: int
    k: int
    act_dtype: DataType = FP16
    weight_bits: int = 1
    iso_throughput: bool = True
    params: DotProdParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise HardwareModelError("tensor core dims must be positive")
        if self.kind is DotProductKind.LUT_TENSOR_CORE and self.k > 8:
            raise HardwareModelError(
                "LUT tensor core k > 8 would need a 128+-entry table"
            )

    @property
    def macs_per_cycle(self) -> int:
        return self.m * self.n * self.k

    @property
    def serial_cycles(self) -> int:
        if self.kind is DotProductKind.MAC:
            return 1
        return self.weight_bits


@dataclass(frozen=True)
class TensorCoreCost:
    """PPA of one tensor core."""

    config: TensorCoreConfig
    cost: CircuitCost
    breakdown: dict[str, CircuitCost] = field(compare=False, default_factory=dict)
    wire_power_mw: float = 0.0
    tech: TechnologyModel = TSMC28

    @property
    def area_um2(self) -> float:
        return self.tech.area_um2(self.cost.total_ge)

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1.0e6

    @property
    def power_mw(self) -> float:
        return (
            self.tech.power_mw(self.cost.logic_ge, self.cost.storage_ge)
            + self.wire_power_mw
        )

    @property
    def flops_per_cycle(self) -> float:
        cfg = self.config
        flops = 2.0 * cfg.macs_per_cycle
        if cfg.iso_throughput:
            return flops
        return flops / cfg.serial_cycles

    @property
    def tflops(self) -> float:
        return self.flops_per_cycle * self.tech.frequency_ghz / 1000.0

    @property
    def compute_density_tflops_mm2(self) -> float:
        return self.tflops / self.area_mm2

    @property
    def energy_efficiency_tflops_w(self) -> float:
        return self.tflops / (self.power_mw / 1000.0)

    @property
    def area_power_product(self) -> float:
        """The DSE objective of Fig. 14 (µm² x mW)."""
        return self.area_um2 * self.power_mw


def _lut_tc_breakdown(cfg: TensorCoreConfig) -> tuple[dict[str, CircuitCost], float]:
    params = cfg.params
    entries = 1 << (cfg.k - 1)
    tb = params.table_bits
    replicas = cfg.weight_bits if cfg.iso_throughput else 1
    lanes = cfg.m * cfg.n * replicas
    outputs = cfg.m * cfg.n
    breakdown: dict[str, CircuitCost] = {}
    # Tables: M per array, shared by all N lanes and all bit-plane
    # replicas. Double-buffered: the next tile's tables (precomputed in
    # software) load while the current ones are consumed.
    breakdown["table"] = 2.0 * register(cfg.m * entries * tb)
    breakdown["mux"] = lanes * mux(entries, tb)
    breakdown["weight_regs"] = register(cfg.k * cfg.n * cfg.weight_bits * replicas)
    width = _accum_bits(cfg.act_dtype, params, cfg.weight_bits)
    # Bit-plane replicas combine through a small adder tree into one
    # shift-accumulator per output element.
    combine = max(replicas - 1, 0) * int_adder(width)
    psum = int_addsub(width) + barrel_shifter(width, max(cfg.weight_bits, 2))
    breakdown["psum"] = outputs * (psum + combine) + register(outputs * width)
    # Rescale stations are time-shared: psums drain once per tile
    # K-iteration, so one station serves many lanes.
    share = (
        params.tc_rescale_share_float
        if cfg.act_dtype.is_float
        else params.tc_rescale_share_int
    )
    stations = max(outputs * share, 1.0)
    breakdown["rescale"] = stations * _rescale_cost(cfg.act_dtype, params)
    breakdown["ctrl"] = CircuitCost(logic_ge=params.ctrl_ge * (1 + 0.05 * lanes))

    # Broadcast wiring power: each of M*entries table words drives a wire
    # spanning the N lanes; each weight set spans M lanes.
    tech = TSMC28
    span_mm = 0.004 * cfg.n  # lane pitch ~4 µm in the modelled node
    table_bits_moved = cfg.m * entries * tb
    weight_span_mm = 0.004 * cfg.m
    weight_bits_moved = cfg.k * cfg.n * replicas
    wire_fj = (
        table_bits_moved * span_mm + weight_bits_moved * weight_span_mm
    ) * tech.wire_energy_fj_per_bit_mm
    wire_power_mw = wire_fj * tech.frequency_ghz * tech.storage_activity / 1.0e6
    return breakdown, wire_power_mw


def _mac_tc_breakdown(cfg: TensorCoreConfig) -> tuple[dict[str, CircuitCost], float]:
    act = cfg.act_dtype
    lanes = cfg.m * cfg.n
    breakdown: dict[str, CircuitCost] = {}
    breakdown["multipliers"] = lanes * cfg.k * multiplier_for(act, act)
    breakdown["adder_tree"] = lanes * adder_tree(act, cfg.k)
    accum_bits = max(act.bits, 32) if act.is_float else 32
    breakdown["psum"] = lanes * (adder_for(act) + register(accum_bits))
    breakdown["operand_regs"] = register(
        (cfg.m * cfg.k + cfg.n * cfg.k) * act.bits
    )
    breakdown["ctrl"] = CircuitCost(logic_ge=cfg.params.ctrl_ge * (1 + 0.05 * lanes))
    tech = TSMC28
    # Operand broadcast: A rows span N, B columns span M.
    wire_fj = (
        cfg.m * cfg.k * act.bits * 0.004 * cfg.n
        + cfg.n * cfg.k * act.bits * 0.004 * cfg.m
    ) * tech.wire_energy_fj_per_bit_mm
    wire_power_mw = wire_fj * tech.frequency_ghz * tech.logic_activity / 1.0e6
    return breakdown, wire_power_mw


def _add_tc_breakdown(cfg: TensorCoreConfig) -> tuple[dict[str, CircuitCost], float]:
    act = cfg.act_dtype
    params = cfg.params
    replicas = cfg.weight_bits if cfg.iso_throughput else 1
    lanes = cfg.m * cfg.n * replicas
    breakdown: dict[str, CircuitCost] = {}
    breakdown["adder_tree"] = lanes * adder_tree(act, cfg.k, addsub=True)
    breakdown["sign_ctrl"] = CircuitCost(logic_ge=1.0 * lanes * cfg.k)
    width = _accum_bits(act, params, cfg.weight_bits)
    outputs = cfg.m * cfg.n
    combine = max(replicas - 1, 0) * (
        adder_for(act) if act.is_float else int_adder(width)
    )
    psum = int_addsub(width) + barrel_shifter(width, max(cfg.weight_bits, 2))
    if act.is_float:
        psum = psum + adder_for(act)
    breakdown["psum"] = outputs * (psum + combine) + register(outputs * width)
    breakdown["operand_regs"] = register(
        cfg.m * cfg.k * act.bits + cfg.n * cfg.k * cfg.weight_bits * replicas
    )
    breakdown["ctrl"] = CircuitCost(logic_ge=params.ctrl_ge * (1 + 0.05 * lanes))
    tech = TSMC28
    wire_fj = (
        cfg.m * cfg.k * act.bits * 0.004 * cfg.n
        + cfg.n * cfg.k * cfg.weight_bits * replicas * 0.004 * cfg.m
    ) * tech.wire_energy_fj_per_bit_mm
    wire_power_mw = wire_fj * tech.frequency_ghz * tech.logic_activity / 1.0e6
    return breakdown, wire_power_mw


def _lut_conventional_tc_breakdown(
    cfg: TensorCoreConfig,
) -> tuple[dict[str, CircuitCost], float]:
    act = cfg.act_dtype
    params = cfg.params
    entries = 1 << cfg.k
    tb = act.bits  # full-precision table, no table quantization
    replicas = cfg.weight_bits if cfg.iso_throughput else 1
    lanes = cfg.m * cfg.n * replicas
    breakdown: dict[str, CircuitCost] = {}
    # On-array precompute adjacent to the tables (one station per table).
    breakdown["precompute"] = cfg.m * max(entries - cfg.k, 1) * adder_for(
        act, addsub=True
    )
    breakdown["table"] = register(cfg.m * entries * tb)
    breakdown["mux"] = lanes * mux(entries, tb)
    breakdown["negation"] = lanes * CircuitCost(logic_ge=1.2 * tb)
    breakdown["weight_regs"] = register(cfg.k * cfg.n * cfg.weight_bits * replicas)
    width = _accum_bits(act, params, cfg.weight_bits)
    outputs = cfg.m * cfg.n
    combine = max(replicas - 1, 0) * (
        adder_for(act) if act.is_float else int_adder(width)
    )
    psum = int_addsub(width) + barrel_shifter(width, max(cfg.weight_bits, 2))
    if act.is_float:
        psum = psum + adder_for(act)
    breakdown["psum"] = outputs * (psum + combine) + register(outputs * width)
    breakdown["ctrl"] = CircuitCost(logic_ge=params.ctrl_ge * (1 + 0.05 * lanes))
    tech = TSMC28
    wire_fj = (
        cfg.m * entries * tb * 0.004 * cfg.n
        + cfg.k * cfg.n * cfg.weight_bits * replicas * 0.004 * cfg.m
    ) * tech.wire_energy_fj_per_bit_mm
    wire_power_mw = wire_fj * tech.frequency_ghz * tech.storage_activity / 1.0e6
    return breakdown, wire_power_mw


_BUILDERS = {
    DotProductKind.MAC: _mac_tc_breakdown,
    DotProductKind.ADD_SERIAL: _add_tc_breakdown,
    DotProductKind.LUT_CONVENTIONAL: _lut_conventional_tc_breakdown,
    DotProductKind.LUT_TENSOR_CORE: _lut_tc_breakdown,
}


def tensor_core_cost(
    config: TensorCoreConfig, tech: TechnologyModel = TSMC28
) -> TensorCoreCost:
    """PPA of a tensor core described by *config*."""
    breakdown, wire_power = _BUILDERS[config.kind](config)
    total = ZERO_COST
    for part in breakdown.values():
        total = total + part
    return TensorCoreCost(
        config=config,
        cost=total,
        breakdown=breakdown,
        wire_power_mw=wire_power,
        tech=tech,
    )
