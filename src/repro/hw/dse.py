"""Design-space exploration utilities (paper Section 4.2).

Provides the MNK sweep used for Fig. 14 (all power-of-two factorizations
of a fixed array size), Pareto-frontier extraction over (area, power),
and the argmin-area-x-power selection the paper draws as dashed contours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datatypes.formats import DataType, FP16
from repro.errors import HardwareModelError
from repro.hw.dotprod import DEFAULT_PARAMS, DotProductKind, DotProdParams
from repro.hw.tensor_core import TensorCoreConfig, TensorCoreCost, tensor_core_cost


@dataclass(frozen=True)
class DsePoint:
    """One evaluated configuration in the design space."""

    config: TensorCoreConfig
    cost: TensorCoreCost

    @property
    def mnk(self) -> tuple[int, int, int]:
        return (self.config.m, self.config.n, self.config.k)

    @property
    def area_um2(self) -> float:
        return self.cost.area_um2

    @property
    def power_mw(self) -> float:
        return self.cost.power_mw


def _power_of_two_factorizations(
    array_size: int, max_k: int
) -> Iterable[tuple[int, int, int]]:
    m = 1
    while m <= array_size:
        n = 1
        while m * n <= array_size:
            if array_size % (m * n) == 0:
                k = array_size // (m * n)
                if k <= max_k and (k & (k - 1)) == 0:
                    yield (m, n, k)
            n *= 2
        m *= 2


def sweep_mnk(
    kind: DotProductKind,
    act_dtype: DataType = FP16,
    weight_bits: int = 1,
    array_size: int = 512,
    max_k: int = 32,
    params: DotProdParams = DEFAULT_PARAMS,
) -> list[DsePoint]:
    """Evaluate every power-of-two (M, N, K) with ``M*N*K == array_size``.

    ``max_k`` bounds the reduction length; LUT cores are additionally
    capped at K = 8 by the register-resident-table rule.
    """
    if array_size < 1:
        raise HardwareModelError("array_size must be positive")
    points: list[DsePoint] = []
    kind_max_k = min(max_k, 8) if kind in (
        DotProductKind.LUT_TENSOR_CORE, DotProductKind.LUT_CONVENTIONAL
    ) else max_k
    for m, n, k in _power_of_two_factorizations(array_size, kind_max_k):
        if k < 2:
            continue
        config = TensorCoreConfig(
            kind=kind,
            m=m,
            n=n,
            k=k,
            act_dtype=act_dtype,
            weight_bits=weight_bits,
            params=params,
        )
        points.append(DsePoint(config=config, cost=tensor_core_cost(config)))
    return points


def pareto_frontier(points: Sequence[DsePoint]) -> list[DsePoint]:
    """Non-dominated subset under (minimize area, minimize power).

    A point is dominated if another point is <= in both coordinates and
    strictly < in at least one.
    """
    frontier: list[DsePoint] = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            if (
                other.area_um2 <= candidate.area_um2
                and other.power_mw <= candidate.power_mw
                and (
                    other.area_um2 < candidate.area_um2
                    or other.power_mw < candidate.power_mw
                )
            ):
                dominated = True
                break
        if not dominated:
            frontier.append(candidate)
    frontier.sort(key=lambda p: (p.area_um2, p.power_mw))
    return frontier


def best_by_area_power(points: Sequence[DsePoint]) -> DsePoint:
    """The paper's DSE objective: argmin area x power."""
    if not points:
        raise HardwareModelError("no DSE points to select from")
    return min(points, key=lambda p: p.area_um2 * p.power_mw)
