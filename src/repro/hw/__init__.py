"""Gate-level hardware PPA (power / performance / area) cost model.

Replaces the paper's Verilog + Design Compiler + TSMC 28 nm flow with an
analytical model in NAND2-gate-equivalents (GE):

- :mod:`repro.hw.tech` — process constants (GE area/energy, flip-flop and
  SRAM-bit costs, frequency);
- :mod:`repro.hw.units` — primitive circuit costs (integer/float adders and
  multipliers, MUX trees, barrel shifters, registers);
- :mod:`repro.hw.dotprod` — dot-product-unit builders: MAC, bit-serial ADD,
  conventional LUT, and the paper's LUT Tensor Core unit;
- :mod:`repro.hw.tensor_core` — tensor-core-level composition (M x N lanes,
  tables amortized across N, operand registers, I/O energy);
- :mod:`repro.hw.dse` — design-space sweeps and Pareto extraction;
- :mod:`repro.hw.unpu` — the UNPU baseline with the paper's ablation
  switches (Table 2).
"""

from repro.hw.tech import TechnologyModel, TSMC28
from repro.hw.units import CircuitCost
from repro.hw.dotprod import (
    DotProductKind,
    dp_unit_cost,
    dp_compute_density,
    iso_throughput_area,
)
from repro.hw.tensor_core import (
    TensorCoreConfig,
    TensorCoreCost,
    tensor_core_cost,
)
from repro.hw.dse import (
    pareto_frontier,
    sweep_mnk,
    best_by_area_power,
)
from repro.hw.unpu import UnpuConfig, unpu_ablation
from repro.hw.sensitivity import run_sensitivity, conclusions_robust

__all__ = [
    "TechnologyModel",
    "TSMC28",
    "CircuitCost",
    "DotProductKind",
    "dp_unit_cost",
    "dp_compute_density",
    "iso_throughput_area",
    "TensorCoreConfig",
    "TensorCoreCost",
    "tensor_core_cost",
    "pareto_frontier",
    "sweep_mnk",
    "best_by_area_power",
    "UnpuConfig",
    "unpu_ablation",
    "run_sensitivity",
    "conclusions_robust",
]
