"""Primitive circuit cost models (gate-equivalent counts).

Each builder returns a :class:`CircuitCost` with separate logic and
storage GE counts, so the technology model can apply different activity
factors. Gate counts follow standard-cell rules of thumb:

- full adder ~ 5 GE/bit (carry-lookahead overhead folded in),
- array multiplier ~ 6 GE per partial-product bit,
- 2:1 MUX ~ 1 GE/bit, a W-way tree costs (W-1) 2:1 stages,
- barrel shifter ~ 1 GE per bit per stage,
- float add/mul decomposed into align/normalize shifters, significand
  adder/multiplier, exponent logic and rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.datatypes.formats import DataType
from repro.errors import HardwareModelError


@dataclass(frozen=True)
class CircuitCost:
    """Gate-equivalent cost of a circuit block."""

    logic_ge: float = 0.0
    storage_ge: float = 0.0

    @property
    def total_ge(self) -> float:
        return self.logic_ge + self.storage_ge

    def __add__(self, other: "CircuitCost") -> "CircuitCost":
        return CircuitCost(
            self.logic_ge + other.logic_ge, self.storage_ge + other.storage_ge
        )

    def __mul__(self, factor: float) -> "CircuitCost":
        return CircuitCost(self.logic_ge * factor, self.storage_ge * factor)

    __rmul__ = __mul__


ZERO_COST = CircuitCost()


def int_adder(bits: int) -> CircuitCost:
    """Two's-complement adder."""
    if bits < 1:
        raise HardwareModelError("adder width must be >= 1")
    return CircuitCost(logic_ge=5.0 * bits)


def int_addsub(bits: int) -> CircuitCost:
    """Adder/subtractor: adder plus an XOR row and carry-in control."""
    return CircuitCost(logic_ge=6.0 * bits)


def int_multiplier(bits_a: int, bits_b: int) -> CircuitCost:
    """Array multiplier: ~6 GE per partial-product bit."""
    if min(bits_a, bits_b) < 1:
        raise HardwareModelError("multiplier widths must be >= 1")
    return CircuitCost(logic_ge=6.0 * bits_a * bits_b)


def mux(ways: int, width: int) -> CircuitCost:
    """W-way one-hot/binary MUX of *width*-bit words."""
    if ways < 1:
        raise HardwareModelError("mux needs >= 1 way")
    return CircuitCost(logic_ge=max(ways - 1, 0) * width * 1.0)


def barrel_shifter(width: int, positions: int) -> CircuitCost:
    """Barrel shifter over *positions* shift amounts."""
    if positions <= 1:
        return ZERO_COST
    stages = math.ceil(math.log2(positions))
    return CircuitCost(logic_ge=width * stages * 1.0)


def register(width: int, ff_ge: float = 4.0) -> CircuitCost:
    """A *width*-bit register file fragment (DFF/latch array)."""
    return CircuitCost(storage_ge=width * ff_ge)


def _mantissa_bits(fmt: DataType) -> int:
    # +1 for the implicit leading one.
    return fmt.mantissa_bits + 1


def fp_adder(fmt: DataType) -> CircuitCost:
    """Floating-point adder for format *fmt*.

    align shifter + significand add + normalize shifter (leading-zero
    count folded in) + exponent compare/adjust + rounding.
    """
    if not fmt.is_float:
        raise HardwareModelError(f"{fmt.name} is not a float format")
    mant = _mantissa_bits(fmt)
    exp = fmt.exponent_bits
    align = barrel_shifter(mant + 3, mant + 3).logic_ge
    normalize = barrel_shifter(mant + 3, mant + 3).logic_ge
    significand = int_adder(mant + 3).logic_ge
    lzc = 1.5 * mant
    exponent = 10.0 * exp
    rounding = 2.0 * mant
    return CircuitCost(
        logic_ge=align + normalize + significand + lzc + exponent + rounding
    )


def fp_multiplier(fmt_a: DataType, fmt_b: DataType | None = None) -> CircuitCost:
    """Floating-point multiplier (possibly mixed formats)."""
    fmt_b = fmt_b or fmt_a
    if not (fmt_a.is_float and fmt_b.is_float):
        raise HardwareModelError("fp_multiplier expects float formats")
    mant = int_multiplier(_mantissa_bits(fmt_a), _mantissa_bits(fmt_b)).logic_ge
    exp = int_adder(max(fmt_a.exponent_bits, fmt_b.exponent_bits) + 1).logic_ge
    rounding = 2.0 * (_mantissa_bits(fmt_a) + _mantissa_bits(fmt_b)) / 2.0
    return CircuitCost(logic_ge=mant + exp + rounding)


def multiplier_for(fmt_a: DataType, fmt_b: DataType) -> CircuitCost:
    """Multiplier for any format pair (int x int, fp x fp, int x fp).

    An int x fp multiplier treats the integer as a fixed-point significand
    (FIGNA-style pre-aligned integer unit).
    """
    if fmt_a.is_float and fmt_b.is_float:
        return fp_multiplier(fmt_a, fmt_b)
    if not fmt_a.is_float and not fmt_b.is_float:
        return int_multiplier(fmt_a.bits, fmt_b.bits)
    fp_fmt = fmt_a if fmt_a.is_float else fmt_b
    int_fmt = fmt_b if fmt_a.is_float else fmt_a
    mant = int_multiplier(_mantissa_bits(fp_fmt), max(int_fmt.bits, 1)).logic_ge
    exp = int_adder(fp_fmt.exponent_bits + 1).logic_ge
    return CircuitCost(logic_ge=mant + exp + 1.5 * _mantissa_bits(fp_fmt))


def adder_for(fmt: DataType, addsub: bool = False) -> CircuitCost:
    """Adder (or adder/subtractor) for an int or float format."""
    if fmt.is_float:
        base = fp_adder(fmt)
        if addsub:
            # Sign-flip on a float operand is a single XOR on the sign bit.
            base = base + CircuitCost(logic_ge=1.0)
        return base
    return int_addsub(fmt.bits) if addsub else int_adder(fmt.bits)


def accumulator_width(fmt: DataType, terms: int) -> int:
    """Accumulator width that avoids overflow over *terms* additions."""
    if fmt.is_float:
        return fmt.bits
    return fmt.bits + max(1, math.ceil(math.log2(max(terms, 2))))


def adder_tree(fmt: DataType, leaves: int, addsub: bool = False) -> CircuitCost:
    """A balanced reduction tree over *leaves* operands.

    Float trees use fixed-width FP adders; integer trees widen one bit
    per level (level ``l`` has ``leaves / 2**(l+1)`` adders of width
    ``fmt.bits + l + 1``), which is what makes deep integer reductions
    more expensive than ``(leaves - 1) x`` the leaf adder.
    """
    if leaves < 2:
        return ZERO_COST
    if fmt.is_float:
        return (leaves - 1) * adder_for(fmt, addsub=addsub)
    total = ZERO_COST
    count = leaves
    level = 0
    builder = int_addsub if addsub else int_adder
    while count > 1:
        adders = count // 2
        total = total + adders * builder(fmt.bits + level + 1)
        count = count - adders
        level += 1
    return total
