"""Sensitivity analysis of the hardware model's conclusions.

The PPA model rests on calibrated constants: control overhead, rescale
station sharing, accumulator guard bits, table width. This module
perturbs those assumptions and re-runs the headline design-space
conclusions, demonstrating that the paper's qualitative results — the
LUT design winning min(area x power), the elongated M2 N64 K4 optimum,
and the K ~ 4 sweet spot — are properties of the design structure
(exponential tables, amortized broadcast, bit-serial lanes), not of the
specific calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datatypes.formats import DataType, FP16, INT8
from repro.hw.dotprod import (
    DEFAULT_PARAMS,
    DotProductKind,
    DotProdParams,
    dp_unit_cost,
)
from repro.hw.dse import best_by_area_power, sweep_mnk


@dataclass(frozen=True)
class SensitivityReport:
    """Outcome of one perturbed-assumption run."""

    label: str
    params: DotProdParams
    lut_wins_w1_fp16: bool
    lut_vs_mac_objective_ratio: float
    lut_best_mnk: tuple[int, int, int]
    int8_peak_k: int
    fp16_peak_k: int


def _peak_k(act: DataType, params: DotProdParams) -> int:
    densities = {
        k: dp_unit_cost(
            DotProductKind.LUT_TENSOR_CORE, k, act, 1, params=params
        ).compute_density_tflops_mm2
        for k in range(2, 9)
    }
    return max(densities, key=densities.get)


def default_perturbations() -> dict[str, DotProdParams]:
    """±50%-class perturbations of every calibrated model assumption."""
    base = DEFAULT_PARAMS
    return {
        "baseline": base,
        "ctrl x2": replace(base, ctrl_ge=base.ctrl_ge * 2.0),
        "ctrl /2": replace(base, ctrl_ge=base.ctrl_ge / 2.0),
        "guard +2 bits": replace(
            base, accum_guard_bits=base.accum_guard_bits + 2
        ),
        "guard -2 bits": replace(
            base, accum_guard_bits=max(base.accum_guard_bits - 2, 0)
        ),
        "rescale stations x2": replace(
            base,
            tc_rescale_share_float=min(base.tc_rescale_share_float * 2, 1.0),
            tc_rescale_share_int=min(base.tc_rescale_share_int * 2, 1.0),
        ),
        "rescale stations /2": replace(
            base,
            tc_rescale_share_float=base.tc_rescale_share_float / 2,
            tc_rescale_share_int=base.tc_rescale_share_int / 2,
        ),
    }


def run_sensitivity(
    perturbations: dict[str, DotProdParams] | None = None,
) -> list[SensitivityReport]:
    """Re-evaluate headline conclusions under each parameter set."""
    if perturbations is None:
        perturbations = default_perturbations()
    reports = []
    for label, params in perturbations.items():
        lut = best_by_area_power(
            sweep_mnk(DotProductKind.LUT_TENSOR_CORE, FP16, 1, params=params)
        )
        mac = best_by_area_power(
            sweep_mnk(DotProductKind.MAC, FP16, 1, params=params)
        )
        lut_objective = lut.area_um2 * lut.power_mw
        mac_objective = mac.area_um2 * mac.power_mw
        reports.append(
            SensitivityReport(
                label=label,
                params=params,
                lut_wins_w1_fp16=lut_objective < mac_objective,
                lut_vs_mac_objective_ratio=mac_objective / lut_objective,
                lut_best_mnk=lut.mnk,
                int8_peak_k=_peak_k(INT8, params),
                fp16_peak_k=_peak_k(FP16, params),
            )
        )
    return reports


def conclusions_robust(reports: list[SensitivityReport]) -> bool:
    """True iff every perturbation preserves the headline conclusions:
    LUT wins, the optimum stays elongated (N >= 8M with K = 4), and the
    DP-unit sweet spot stays in the K = 3..5 neighbourhood."""
    for r in reports:
        m, n, k = r.lut_best_mnk
        if not r.lut_wins_w1_fp16:
            return False
        if k != 4 or n < 8 * m:
            return False
        if r.int8_peak_k not in (3, 4, 5):
            return False
        if r.fp16_peak_k not in (4, 5, 6):
            return False
    return True
