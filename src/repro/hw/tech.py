"""Process-technology constants for the gate-level PPA model.

The model counts NAND2 gate equivalents (GE) and converts to area and
dynamic power with per-node constants. The defaults approximate a TSMC
28 nm HPC library at 1 GHz — the node and frequency the paper synthesizes
at — and were calibrated so the model lands on the paper's absolute
anchors (MAC FP16 DP4 ~ 3.4 TFLOPs/mm², LUT W1A16 DP4 ~ 60 TFLOPs/mm²).

Only *relative* PPA across designs matters for the conclusions; see
DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class TechnologyModel:
    """Area/energy conversion constants for one process node.

    Attributes
    ----------
    name:
        Node label, e.g. ``"tsmc28"``.
    ge_area_um2:
        Area of one NAND2-equivalent gate in square microns.
    ge_energy_fj:
        Dynamic energy of one GE toggling once, in femtojoules.
    ff_ge:
        Flip-flop cost in GE (area); storage cells are denser than the
        ~6-GE standard-cell DFF because LUT tables can use latch arrays.
    logic_activity / storage_activity:
        Mean switching-activity factors applied to combinational logic and
        to storage cells when computing dynamic power.
    wire_energy_fj_per_bit_mm:
        Interconnect energy for broadcast wiring, per bit per millimetre.
    frequency_ghz:
        Synthesis target clock.
    """

    name: str = "tsmc28"
    ge_area_um2: float = 0.49
    ge_energy_fj: float = 2.2
    ff_ge: float = 4.0
    logic_activity: float = 0.18
    storage_activity: float = 0.08
    wire_energy_fj_per_bit_mm: float = 25.0
    frequency_ghz: float = 1.0

    def __post_init__(self) -> None:
        if self.ge_area_um2 <= 0 or self.ge_energy_fj <= 0:
            raise HardwareModelError("technology constants must be positive")
        if self.frequency_ghz <= 0:
            raise HardwareModelError("frequency must be positive")

    def area_um2(self, gates: float) -> float:
        """Convert a GE count to area in µm²."""
        return gates * self.ge_area_um2

    def power_mw(self, logic_ge: float, storage_ge: float = 0.0) -> float:
        """Dynamic power in mW for the given logic/storage GE counts.

        power = GE * activity * E_ge * f; 1 GE at 1 GHz toggling every
        cycle with E = 1 fJ dissipates 1 µW.
        """
        freq = self.frequency_ghz
        logic_uw = logic_ge * self.logic_activity * self.ge_energy_fj * freq
        storage_uw = storage_ge * self.storage_activity * self.ge_energy_fj * freq
        return (logic_uw + storage_uw) / 1000.0

    def scaled(self, **overrides: float) -> "TechnologyModel":
        """A copy with some constants overridden (for sensitivity studies)."""
        params = {
            "name": self.name,
            "ge_area_um2": self.ge_area_um2,
            "ge_energy_fj": self.ge_energy_fj,
            "ff_ge": self.ff_ge,
            "logic_activity": self.logic_activity,
            "storage_activity": self.storage_activity,
            "wire_energy_fj_per_bit_mm": self.wire_energy_fj_per_bit_mm,
            "frequency_ghz": self.frequency_ghz,
        }
        params.update(overrides)
        return TechnologyModel(**params)


#: Default node used throughout the evaluation (the paper's node).
TSMC28 = TechnologyModel()
