"""Dot-product-unit cost models (paper Figs. 11-13).

Four design styles are modelled:

- **MAC** — the conventional Tensor Core datapath: K multipliers + an
  adder tree at the activation precision. For uniform GEMM both operands
  share the activation format; for mpGEMM the MAC baseline dequantizes
  weights upstream, so its datapath cost is independent of weight bits.
- **ADD** — bit-serial (Stripes-style): per cycle, a sign-controlled adder
  tree combines ±activations selected by one weight bit-plane; a result
  takes ``W_BIT`` cycles.
- **LUT conventional** — table precompute adjacent to the unit (shared
  over a small ``N`` neighbourhood), full ``2**K`` table at activation
  width, ``2**K``-way MUX.
- **LUT Tensor Core** — the paper's unit: precompute offloaded to software
  (no precompute circuitry), table symmetrized to ``2**(K-1)`` entries and
  quantized to INT8, MUX halved, negation circuit folded into the
  accumulator's add/sub control via offline weight remapping.

All bit-serial styles report ``cycles_per_result = W_BIT``;
:func:`iso_throughput_area` replicates the per-lane datapath (sharing
tables) to compare designs at equal throughput, which is how Fig. 13's
area axis is constructed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.datatypes.formats import DataType, FP16
from repro.errors import HardwareModelError
from repro.hw.tech import TSMC28, TechnologyModel
from repro.hw.units import (
    CircuitCost,
    ZERO_COST,
    adder_for,
    adder_tree,
    barrel_shifter,
    fp_adder,
    int_addsub,
    multiplier_for,
    mux,
    register,
)


class DotProductKind(enum.Enum):
    """Datapath style of a dot-product unit."""

    MAC = "mac"
    ADD_SERIAL = "add"
    LUT_CONVENTIONAL = "lut_conventional"
    LUT_TENSOR_CORE = "lut_tensor_core"


@dataclass(frozen=True)
class DotProdParams:
    """Tunable constants of the dot-product cost model.

    The defaults are calibrated against the paper's anchors; tests in
    ``tests/hw`` pin the resulting figure shapes (peaks, crossovers),
    not individual constants.
    """

    #: Width of table entries after INT8 table quantization.
    table_bits: int = 8
    #: Control/FSM overhead per unit, in GE.
    ctrl_ge: float = 150.0
    #: Guard bits on integer accumulators beyond table + shift width.
    accum_guard_bits: int = 4
    #: Fraction of the rescale datapath charged per lane (the per-table
    #: scale multiply can be time-shared across the serial cycles).
    rescale_amortization: float = 1.0
    #: Rescale stations per output lane at the tensor-core level: psums
    #: drain through a time-shared conversion pipeline. Float outputs
    #: convert once per table (per-table scales change every group), so
    #: they need denser stations than integer outputs, whose scale folds
    #: into the final output quantization.
    tc_rescale_share_float: float = 1.0 / 4.0
    tc_rescale_share_int: float = 1.0 / 16.0
    #: Share factor for conventional-LUT precompute + table (the paper's
    #: N = 4 neighbourhood; 1 for a standalone unit).
    conventional_share: int = 4
    #: Share factor for the LUT Tensor Core table at the DP level
    #: (1 = standalone micro-benchmark unit).
    ltc_share: int = 1


DEFAULT_PARAMS = DotProdParams()


@dataclass(frozen=True)
class DotProductCost:
    """PPA result for one dot-product unit."""

    kind: DotProductKind
    k: int
    act_dtype: DataType
    weight_bits: int
    cost: CircuitCost
    breakdown: dict[str, CircuitCost] = field(compare=False, default_factory=dict)
    cycles_per_result: int = 1
    tech: TechnologyModel = TSMC28

    @property
    def area_um2(self) -> float:
        return self.tech.area_um2(self.cost.total_ge)

    @property
    def power_mw(self) -> float:
        return self.tech.power_mw(self.cost.logic_ge, self.cost.storage_ge)

    @property
    def flops_per_cycle(self) -> float:
        """Equivalent FLOPs per clock (2 per MAC, serialized over W bits)."""
        return 2.0 * self.k / self.cycles_per_result

    @property
    def tflops(self) -> float:
        return self.flops_per_cycle * self.tech.frequency_ghz / 1000.0

    @property
    def compute_density_tflops_mm2(self) -> float:
        """TFLOPs per mm² at the technology's clock."""
        area_mm2 = self.area_um2 / 1.0e6
        return self.tflops / area_mm2

    @property
    def energy_efficiency_tflops_w(self) -> float:
        """TFLOPs per watt (dynamic power only, like the paper's DC data)."""
        return self.tflops / (self.power_mw / 1000.0)


def _accum_bits(
    act_dtype: DataType, params: DotProdParams, weight_bits: int = 1
) -> int:
    """Integer psum width: entry width + bit-serial shift room + guard."""
    if act_dtype.is_float:
        base = params.table_bits
    else:
        base = min(act_dtype.bits + 2, params.table_bits + 4)
    return base + weight_bits + params.accum_guard_bits


def _rescale_cost(act_dtype: DataType, params: DotProdParams) -> CircuitCost:
    """Per-lane cost of turning integer lookups back into scaled outputs.

    Float activations: the INT8 table entry must be multiplied by the
    per-table FP scale and accumulated in float — an INT8 x FP multiplier
    plus an FP adder. Integer activations: a shift/scale and an integer
    accumulate; far cheaper. This asymmetry is what moves the optimal K
    from 4 (INT) to 5 (FP) in Fig. 11.
    """
    from repro.datatypes.formats import INT8

    if act_dtype.is_float:
        cost = multiplier_for(INT8, act_dtype) + fp_adder(act_dtype)
        out_reg = register(act_dtype.bits)
    else:
        width = _accum_bits(act_dtype, params)
        cost = int_addsub(width) + barrel_shifter(width, 8)
        out_reg = register(width)
    return params.rescale_amortization * cost + out_reg


def _serial_psum_int(
    act_dtype: DataType, weight_bits: int, params: DotProdParams
) -> CircuitCost:
    """Integer shift-accumulate stage of a LUT lane (no register)."""
    width = _accum_bits(act_dtype, params, weight_bits)
    return int_addsub(width) + barrel_shifter(width, max(weight_bits, 2))


def _serial_psum(act_dtype: DataType, weight_bits: int, params: DotProdParams) -> CircuitCost:
    """Bit-serial shift-accumulate stage (FSM shifter + psum add/sub + reg)."""
    width = _accum_bits(act_dtype, params, weight_bits)
    shifter = barrel_shifter(width, max(weight_bits, 2))
    return int_addsub(width) + shifter + register(width)


def dp_unit_cost(
    kind: DotProductKind,
    k: int,
    act_dtype: DataType = FP16,
    weight_bits: int = 1,
    tech: TechnologyModel = TSMC28,
    params: DotProdParams = DEFAULT_PARAMS,
    include_post: bool = True,
) -> DotProductCost:
    """Cost of one K-element dot-product unit of the given *kind*.

    ``include_post=False`` drops the psum/rescale stage, matching the
    paper's "No Psum" DP4 micro-benchmark (Fig. 12).
    """
    if k < 1:
        raise HardwareModelError("k must be >= 1")
    if weight_bits < 1:
        raise HardwareModelError("weight_bits must be >= 1")
    breakdown: dict[str, CircuitCost] = {}
    cycles = 1

    if kind is DotProductKind.MAC:
        # Dequantized weights share the activation format, so the MAC
        # datapath is a uniform-precision multiply-add tree.
        breakdown["multipliers"] = k * multiplier_for(act_dtype, act_dtype)
        breakdown["adder_tree"] = adder_tree(act_dtype, k)
        breakdown["operand_regs"] = register(2 * k * act_dtype.bits)
        if include_post:
            breakdown["psum"] = adder_for(act_dtype) + register(
                max(act_dtype.bits, 32)
            )
            breakdown["ctrl"] = CircuitCost(logic_ge=params.ctrl_ge / 2)

    elif kind is DotProductKind.ADD_SERIAL:
        cycles = weight_bits
        # Sign-controlled adder tree over one weight bit-plane.
        breakdown["adder_tree"] = adder_tree(act_dtype, k, addsub=True)
        breakdown["sign_ctrl"] = CircuitCost(logic_ge=1.0 * k)
        breakdown["operand_regs"] = register(k * act_dtype.bits + k * weight_bits)
        if include_post:
            breakdown["psum"] = _serial_psum(act_dtype, weight_bits, params)
            if act_dtype.is_float:
                # Shift of a float psum is an exponent adjust.
                breakdown["psum"] = breakdown["psum"] + adder_for(act_dtype)
            breakdown["ctrl"] = CircuitCost(logic_ge=params.ctrl_ge)

    elif kind is DotProductKind.LUT_CONVENTIONAL:
        cycles = weight_bits
        entries = 1 << k
        table_width = act_dtype.bits
        share = params.conventional_share
        # Precompute adjacent to the unit: a signed-sum network producing
        # all 2**k combinations (one adder per non-trivial entry).
        precompute = max(entries - k, 1) * adder_for(act_dtype, addsub=True)
        table = register(entries * table_width)
        breakdown["precompute"] = (1.0 / share) * precompute
        breakdown["table"] = (1.0 / share) * table
        breakdown["mux"] = mux(entries, table_width)
        # Tables on the raw {0, 1} interpretation are not symmetric, so a
        # negation stage and a zero-point correction unit remain per lane.
        breakdown["negation"] = CircuitCost(logic_ge=1.2 * table_width)
        breakdown["zero_point"] = int_addsub(
            _accum_bits(act_dtype, params, weight_bits)
        ) + register(act_dtype.bits)
        breakdown["weight_regs"] = register(k * weight_bits)
        if include_post:
            breakdown["psum"] = _serial_psum(act_dtype, weight_bits, params)
            if act_dtype.is_float:
                breakdown["psum"] = breakdown["psum"] + adder_for(act_dtype)
            breakdown["ctrl"] = CircuitCost(logic_ge=params.ctrl_ge)

    elif kind is DotProductKind.LUT_TENSOR_CORE:
        cycles = weight_bits
        entries = 1 << (k - 1)  # symmetrized table
        table_width = params.table_bits
        share = params.ltc_share
        breakdown["table"] = (1.0 / share) * register(entries * table_width)
        breakdown["mux"] = mux(entries, table_width)
        breakdown["weight_regs"] = register(k * weight_bits)
        # Negation circuit eliminated by offline remapping (Eq. 6): the
        # MSB only drives the accumulator's existing add/sub control.
        if include_post:
            width = _accum_bits(act_dtype, params, weight_bits)
            psum = _serial_psum_int(act_dtype, weight_bits, params) + register(width)
            breakdown["psum"] = psum
            breakdown["rescale"] = _rescale_cost(act_dtype, params)
            breakdown["ctrl"] = CircuitCost(logic_ge=params.ctrl_ge)
    else:  # pragma: no cover - exhaustive enum
        raise HardwareModelError(f"unknown dot-product kind {kind}")

    total = ZERO_COST
    for part in breakdown.values():
        total = total + part
    return DotProductCost(
        kind=kind,
        k=k,
        act_dtype=act_dtype,
        weight_bits=weight_bits,
        cost=total,
        breakdown=breakdown,
        cycles_per_result=cycles,
        tech=tech,
    )


def dp_compute_density(
    kind: DotProductKind,
    k: int,
    act_dtype: DataType = FP16,
    weight_bits: int = 1,
    tech: TechnologyModel = TSMC28,
    params: DotProdParams = DEFAULT_PARAMS,
    include_post: bool = True,
) -> float:
    """Convenience: compute density (TFLOPs/mm²) of one unit."""
    return dp_unit_cost(
        kind, k, act_dtype, weight_bits, tech, params, include_post
    ).compute_density_tflops_mm2


def iso_throughput_area(
    unit: DotProductCost, params: DotProdParams = DEFAULT_PARAMS
) -> float:
    """Area (µm²) at MAC-equal throughput.

    Bit-serial designs produce one result every ``W_BIT`` cycles; matching
    a MAC unit's rate takes ``W_BIT`` parallel lanes. Tables are shared
    across the replicas (the replicas process different bit-planes of the
    *same* activations), so only the non-table datapath replicates.
    """
    if unit.cycles_per_result == 1:
        return unit.area_um2
    replicas = unit.cycles_per_result
    # Tables/precompute serve all bit-plane replicas (same activations);
    # the rescale station serves one *output* regardless of replication
    # (replicas are partial contributions to the same accumulator).
    shared = (
        unit.breakdown.get("table", ZERO_COST)
        + unit.breakdown.get("precompute", ZERO_COST)
        + unit.breakdown.get("rescale", ZERO_COST)
    )
    replicated = CircuitCost(
        logic_ge=unit.cost.logic_ge - shared.logic_ge,
        storage_ge=unit.cost.storage_ge - shared.storage_ge,
    )
    total_ge = shared.total_ge + replicas * replicated.total_ge
    return unit.tech.area_um2(total_ge)
