"""UNPU baseline and the paper's ablation ladder (Table 2).

UNPU (Lee et al., JSSC'19) is the prior state-of-the-art LUT-based DNN
accelerator. Relative to the paper's design it lacks:

1. **weight reinterpretation** — its tables cover all ``2**K`` patterns
   (full size), so tables, MUX trees, and the on-array precompute network
   are twice as large;
2. **negation-circuit elimination** — each lane carries conditional
   negation logic;
3. **DFG transformation + kernel fusion** — table precompute runs on
   dedicated on-array circuitry (one station per lane neighbourhood)
   instead of being folded into the software pipeline.

:func:`unpu_ablation` reproduces Table 2 by starting from the UNPU
configuration and flipping one optimization at a time. The modelled array
is the bit-serial array itself (weights are processed over ``W_BIT``
cycles, no replication), matching the paper's Tensor Core case study at
``M x N x K = 512``. Throughput is identical across rows, so normalized
compute intensity and power efficiency are pure area and power ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes.formats import DataType, INT8
from repro.errors import HardwareModelError
from repro.hw.dotprod import (
    DEFAULT_PARAMS,
    DotProductKind,
    DotProdParams,
    _rescale_cost,
)
from repro.hw.tech import TSMC28, TechnologyModel
from repro.hw.tensor_core import TensorCoreConfig, TensorCoreCost
from repro.hw.units import (
    CircuitCost,
    ZERO_COST,
    adder_for,
    barrel_shifter,
    int_addsub,
    mux,
    register,
)

#: Lanes served by one on-array precompute station in the UNPU model.
PRECOMPUTE_NEIGHBOURHOOD = 16


@dataclass(frozen=True)
class UnpuConfig:
    """Feature switches separating UNPU from the LUT Tensor Core."""

    weight_reinterpretation: bool = False
    negation_elimination: bool = False
    software_precompute: bool = False
    act_dtype: DataType = INT8
    weight_bits: int = 2
    array_size: int = 512
    params: DotProdParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if self.negation_elimination and not self.weight_reinterpretation:
            raise HardwareModelError(
                "negation elimination requires the symmetric (reinterpreted) "
                "table; Eq. 6 folds the complement into remapped weights"
            )

    @property
    def label(self) -> str:
        if (
            self.weight_reinterpretation
            and self.negation_elimination
            and self.software_precompute
        ):
            return "LUT Tensor Core (Proposed)"
        if self.weight_reinterpretation and self.negation_elimination:
            return "+ Negation Circuit Elimination"
        if self.weight_reinterpretation:
            return "+ Weight Reinterpretation"
        return "UNPU (DSE Enabled)"


def _unpu_tc_cost(
    mnk: tuple[int, int, int], cfg: UnpuConfig, tech: TechnologyModel = TSMC28
) -> TensorCoreCost:
    """Cost of one LUT array under the given feature switches."""
    m, n, k = mnk
    params = cfg.params
    act = cfg.act_dtype
    lanes = m * n
    entries = 1 << (k - 1) if cfg.weight_reinterpretation else 1 << k
    tb = params.table_bits

    breakdown: dict[str, CircuitCost] = {}
    breakdown["table"] = register(m * entries * tb)
    breakdown["mux"] = lanes * mux(entries, tb)
    if not cfg.negation_elimination:
        breakdown["negation"] = lanes * CircuitCost(logic_ge=1.0 * tb)
    if not cfg.software_precompute:
        stations = max(lanes // PRECOMPUTE_NEIGHBOURHOOD, m)
        breakdown["precompute"] = stations * max(entries - k, 1) * adder_for(
            act, addsub=True
        )
    breakdown["weight_regs"] = register(k * n * cfg.weight_bits)
    width = tb + cfg.weight_bits + 4
    psum = int_addsub(width) + barrel_shifter(width, max(cfg.weight_bits, 2))
    breakdown["psum"] = lanes * psum + register(lanes * width)
    stations = max(lanes * params.tc_rescale_share_int, 1.0)
    breakdown["rescale"] = stations * _rescale_cost(act, params)
    breakdown["ctrl"] = CircuitCost(logic_ge=params.ctrl_ge * (1 + 0.05 * lanes))

    total = ZERO_COST
    for part in breakdown.values():
        total = total + part
    span_mm = 0.004 * n
    wire_fj = m * entries * tb * span_mm * tech.wire_energy_fj_per_bit_mm
    wire_power_mw = wire_fj * tech.frequency_ghz * tech.storage_activity / 1.0e6
    config = TensorCoreConfig(
        kind=DotProductKind.LUT_TENSOR_CORE,
        m=m,
        n=n,
        k=k,
        act_dtype=act,
        weight_bits=cfg.weight_bits,
        params=params,
    )
    return TensorCoreCost(
        config=config,
        cost=total,
        breakdown=breakdown,
        wire_power_mw=wire_power_mw,
        tech=tech,
    )


@dataclass(frozen=True)
class AblationRow:
    """One row of Table 2."""

    label: str
    mnk: tuple[int, int, int]
    area_um2: float
    power_mw: float
    normalized_compute_intensity: float
    normalized_power_efficiency: float


def _best_mnk(cfg: UnpuConfig) -> tuple[int, int, int]:
    """DSE over MNK for the given feature set (paper runs DSE per design)."""
    best: tuple[float, tuple[int, int, int]] | None = None
    m = 1
    while m <= cfg.array_size:
        n = 1
        while m * n <= cfg.array_size:
            if cfg.array_size % (m * n) == 0:
                k = cfg.array_size // (m * n)
                if 2 <= k <= 8 and (k & (k - 1)) == 0:
                    cost = _unpu_tc_cost((m, n, k), cfg)
                    objective = cost.area_um2 * cost.power_mw
                    if best is None or objective < best[0]:
                        best = (objective, (m, n, k))
            n *= 2
        m *= 2
    assert best is not None
    return best[1]


def unpu_ablation(
    act_dtype: DataType = INT8,
    weight_bits: int = 2,
    array_size: int = 512,
    params: DotProdParams = DEFAULT_PARAMS,
) -> list[AblationRow]:
    """Reproduce Table 2: UNPU -> +reinterp -> +negation-elim -> +fusion."""
    steps = [
        UnpuConfig(False, False, False, act_dtype, weight_bits, array_size, params),
        UnpuConfig(True, False, False, act_dtype, weight_bits, array_size, params),
        UnpuConfig(True, True, False, act_dtype, weight_bits, array_size, params),
        UnpuConfig(True, True, True, act_dtype, weight_bits, array_size, params),
    ]
    rows: list[AblationRow] = []
    base_area = base_power = None
    for cfg in steps:
        mnk = _best_mnk(cfg)
        cost = _unpu_tc_cost(mnk, cfg)
        if base_area is None:
            base_area, base_power = cost.area_um2, cost.power_mw
        rows.append(
            AblationRow(
                label=cfg.label,
                mnk=mnk,
                area_um2=cost.area_um2,
                power_mw=cost.power_mw,
                normalized_compute_intensity=base_area / cost.area_um2,
                normalized_power_efficiency=base_power / cost.power_mw,
            )
        )
    return rows
