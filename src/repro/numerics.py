"""Shared numeric helpers used across the stack.

Small, dependency-free routines that several subsystems need with
*identical* numerics: the accuracy model, the LUT decode attention, and
the serving runtime all softmax the same way, so parity tests between
the full-sequence forward and the KV-cached decode compare like with
like instead of chasing copy-pasted variants.
"""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along *axis*.

    Shifts by the running max so ``exp`` never overflows; masked entries
    at ``-1e30`` (the causal-mask convention used throughout the repo)
    underflow to exactly ``0.0`` in float64, which the KV-cache padding
    in :mod:`repro.runtime` relies on.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def masked_width_softmax(scores: np.ndarray, widths) -> np.ndarray:
    """Last-axis softmax whose denominators sum each row's true width.

    ``scores`` is a padded layout in which every position at or past a
    row's valid width already sits at the masked-score sentinel
    (``-1e30``); *widths* is an integer array broadcastable against
    ``scores.shape[:-1]`` giving each row's valid leading width. The
    exponentials are elementwise, but each row's denominator sums only
    its own leading ``width`` entries: appending even *exact zeros* to a
    sum changes numpy's pairwise reduction tree (and hence the last
    ulp), so summing the full padded width would break bit-parity with
    :func:`softmax` over a ``width``-long vector. Rows are processed
    grouped by width; a row's contiguous leading slice reduces with the
    same pairwise tree as the 1-D case.

    Both exact-width softmaxes in the runtime delegate here: the fused
    paged decode path (per-sequence padded context widths) and the
    causal prefill path (per-row ``past + i + 1`` causal widths).
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.shape[-1]
    width_rows = np.broadcast_to(
        np.asarray(widths, dtype=np.int64), scores.shape[:-1]
    ).reshape(-1)
    shifted = scores - scores.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    flat = e.reshape(-1, n)
    denom = np.empty((flat.shape[0], 1))
    for w in np.unique(width_rows):
        rows = width_rows == w
        denom[rows] = flat[rows][..., : int(w)].sum(axis=-1, keepdims=True)
    return (flat / denom).reshape(scores.shape)


__all__ = ["masked_width_softmax", "softmax"]
