"""Shared numeric helpers used across the stack.

Small, dependency-free routines that several subsystems need with
*identical* numerics: the accuracy model, the LUT decode attention, and
the serving runtime all softmax the same way, so parity tests between
the full-sequence forward and the KV-cached decode compare like with
like instead of chasing copy-pasted variants.
"""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along *axis*.

    Shifts by the running max so ``exp`` never overflows; masked entries
    at ``-1e30`` (the causal-mask convention used throughout the repo)
    underflow to exactly ``0.0`` in float64, which the KV-cache padding
    in :mod:`repro.runtime` relies on.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


__all__ = ["softmax"]
