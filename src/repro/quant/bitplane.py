"""Bit-plane (bit-serial) decomposition of weight codes.

The hardware processes a ``W_BIT``-bit weight over ``W_BIT`` cycles, one
bit-plane per cycle (Stripes-style bit-serial computing, paper
Section 3.2.1). Two decompositions are provided:

- :func:`to_bitplanes` — plain binary planes ``b_i in {0, 1}`` with
  ``q = sum_i b_i * 2**i`` for unsigned codes;
- :func:`to_signed_bitplanes` — planes ``c_i in {-1, +1}`` with
  ``q' = sum_i c_i * 2**i`` for *reinterpreted* codes. This works because
  Eq. 2 gives ``q' = 2q - (2**b - 1) = sum_i (2 b_i - 1) 2**i``; every
  plane of the symmetric representation is a sign pattern, which is what
  lets one shared ±1 lookup table serve all weight precisions.

:func:`pack_bits` / :func:`unpack_bits` round-trip planes to the packed
uint8 storage a real implementation would ship to the accelerator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError


def to_bitplanes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Split unsigned *codes* into *bits* binary planes.

    Returns an array of shape ``(bits, *codes.shape)`` with plane *i*
    holding bit *i* (LSB first), values in {0, 1}.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.min(initial=0) < 0 or codes.max(initial=0) >= (1 << bits):
        raise QuantizationError(f"codes do not fit in {bits} unsigned bits")
    planes = [(codes >> i) & 1 for i in range(bits)]
    return np.stack(planes, axis=0)


def from_bitplanes(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_bitplanes`: ``sum_i planes[i] * 2**i``."""
    planes = np.asarray(planes, dtype=np.int64)
    weights = (1 << np.arange(planes.shape[0], dtype=np.int64))
    return np.tensordot(weights, planes, axes=(0, 0))


def to_signed_bitplanes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Split symmetric odd *codes* (from reinterpretation) into ±1 planes.

    Given ``q' = 2q - (2**b - 1)``, plane *i* is ``2*b_i - 1`` where
    ``b_i`` is bit *i* of the unsigned code *q*. Shape ``(bits, ...)``,
    values in {-1, +1}.
    """
    codes = np.asarray(codes, dtype=np.int64)
    limit = (1 << bits) - 1
    if np.any((codes % 2) == 0) and bits >= 1:
        raise QuantizationError("signed bit-planes require odd symmetric codes")
    if codes.min(initial=-1) < -limit or codes.max(initial=1) > limit:
        raise QuantizationError(f"codes exceed ±(2**{bits} - 1)")
    unsigned = (codes + limit) // 2
    return 2 * to_bitplanes(unsigned, bits) - 1


def from_signed_bitplanes(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_signed_bitplanes`: ``sum_i planes[i] * 2**i``."""
    planes = np.asarray(planes, dtype=np.int64)
    if planes.size and not np.all(np.abs(planes) == 1):
        raise QuantizationError("signed planes must contain only ±1")
    weights = (1 << np.arange(planes.shape[0], dtype=np.int64))
    return np.tensordot(weights, planes, axes=(0, 0))


def pack_bits(plane: np.ndarray) -> np.ndarray:
    """Pack a flat {0,1} plane into uint8 bytes (LSB-first within a byte)."""
    plane = np.asarray(plane).astype(np.uint8).ravel()
    if plane.size and plane.max() > 1:
        raise QuantizationError("pack_bits expects a binary plane")
    return np.packbits(plane, bitorder="little")


def unpack_bits(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack *count* bits from :func:`pack_bits` output."""
    bits = np.unpackbits(np.asarray(packed, dtype=np.uint8), bitorder="little")
    if bits.size < count:
        raise QuantizationError("packed buffer shorter than requested count")
    return bits[:count].astype(np.int64)
