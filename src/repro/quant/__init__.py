"""Quantization substrate.

Implements the weight-side numerics of the paper:

- affine weight quantization ``r = s * (q - z)`` at per-tensor /
  per-channel / per-group granularity (:mod:`repro.quant.weight`),
- the paper's **weight reinterpretation** (Section 3.1.2, Eq. 2) that maps
  unsigned codes onto a zero-symmetric odd grid so the lookup table halves
  (:mod:`repro.quant.reinterpret`),
- **bit-plane (bit-serial) decomposition** where each reinterpreted plane
  takes values in {-1, +1} (:mod:`repro.quant.bitplane`),
- **INT8 table quantization** of precomputed LUTs (Section 3.1.3,
  :mod:`repro.quant.table_quant`).
"""

from repro.quant.weight import (
    QuantizedWeight,
    quantize_weights,
    dequantize,
)
from repro.quant.reinterpret import (
    ReinterpretedWeight,
    reinterpret_symmetric,
    reinterpret_params,
)
from repro.quant.bitplane import (
    to_bitplanes,
    from_bitplanes,
    to_signed_bitplanes,
    from_signed_bitplanes,
    pack_bits,
    unpack_bits,
)
from repro.quant.table_quant import (
    QuantizedTable,
    quantize_table,
    dequantize_table,
)
from repro.quant.ternary import (
    TernaryWeight,
    quantize_ternary,
    pack_ternary,
    unpack_ternary,
)
from repro.quant.packing import (
    PackedWeight,
    pack_quantized,
    save_quantized,
    load_quantized,
)

__all__ = [
    "QuantizedWeight",
    "quantize_weights",
    "dequantize",
    "ReinterpretedWeight",
    "reinterpret_symmetric",
    "reinterpret_params",
    "to_bitplanes",
    "from_bitplanes",
    "to_signed_bitplanes",
    "from_signed_bitplanes",
    "pack_bits",
    "unpack_bits",
    "QuantizedTable",
    "quantize_table",
    "dequantize_table",
    "TernaryWeight",
    "quantize_ternary",
    "pack_ternary",
    "unpack_ternary",
    "PackedWeight",
    "pack_quantized",
    "save_quantized",
    "load_quantized",
]
