"""Weight reinterpretation for table symmetrization (paper Section 3.1.2).

The paper's key software trick: an unsigned affine-quantized weight
``r = s * (q - z)`` with ``q in [0, 2**b - 1]`` is *reinterpreted* onto a
zero-symmetric odd grid

    q' = 2*q - (2**b - 1)        (values {-(2**b-1), ..., -1, +1, ...})
    s' = s / 2
    z' = 2*z + 1 - 2**b

which preserves the real value exactly: ``s' * (q' - z') == s * (q - z)``.

Because every bit-plane of ``q'`` is then ±1 (see
:mod:`repro.quant.bitplane`), per-group dot-product lookup tables become
odd-symmetric — ``LUT[idx] == -LUT[~idx]`` — and only half of each table
needs to be stored (Eq. 4/5). The MSB-conditioned negation can further be
folded into an *offline* remapping of the stored weight bits (Eq. 6), which
removes the negation circuit from the hardware LUT unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.quant.weight import QuantizedWeight


@dataclass(frozen=True)
class ReinterpretedWeight:
    """Weight tensor on the symmetric odd grid produced by Eq. 2.

    Attributes
    ----------
    codes:
        Symmetric odd integer codes ``q' in {-(2**b-1), ..., 2**b-1}``
        (all odd), stored as int64.
    scale, zero_point:
        Adjusted ``s' = s/2`` and ``z' = 2z + 1 - 2**b``. For weights that
        were quantized symmetrically (grid midpoint zero-point), ``z'`` is
        exactly zero and the zero-point correction term in the mpGEMM
        vanishes.
    bits:
        Original code width *b*; the signed grid has ``2**b`` points.
    """

    codes: np.ndarray
    scale: np.ndarray
    zero_point: np.ndarray
    bits: int

    @property
    def shape(self) -> tuple[int, ...]:
        return self.codes.shape

    def dequantize(self) -> np.ndarray:
        """Real-valued weights ``s' * (q' - z')``."""
        return self.scale * (self.codes.astype(np.float64) - self.zero_point)

    def unsigned_codes(self) -> np.ndarray:
        """Map back to the original unsigned codes ``q = (q' + 2**b - 1)/2``."""
        return ((self.codes + (1 << self.bits) - 1) // 2).astype(np.int64)


def reinterpret_params(
    scale: np.ndarray | float, zero_point: np.ndarray | float, bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Adjusted ``(s', z')`` from Eq. 2 for the given ``(s, z, b)``."""
    scale = np.asarray(scale, dtype=np.float64)
    zero_point = np.asarray(zero_point, dtype=np.float64)
    return scale / 2.0, 2.0 * zero_point + 1.0 - (1 << bits)


def reinterpret_symmetric(qw: QuantizedWeight) -> ReinterpretedWeight:
    """Apply Eq. 2 to map unsigned codes onto the symmetric odd grid.

    The mapping is exact: ``result.dequantize() == qw.dequantize()``
    bit-for-bit in float64 (the transform multiplies/divides by powers of
    two only).
    """
    new_codes = 2 * qw.codes - ((1 << qw.bits) - 1)
    new_scale, new_zero = reinterpret_params(qw.scale, qw.zero_point, qw.bits)
    return ReinterpretedWeight(
        codes=new_codes.astype(np.int64),
        scale=new_scale,
        zero_point=new_zero,
        bits=qw.bits,
    )


def check_symmetry(rw: ReinterpretedWeight) -> None:
    """Validate the invariants of a reinterpreted weight (used by tests).

    Raises :class:`QuantizationError` if any code is even or out of range.
    """
    limit = (1 << rw.bits) - 1
    codes = rw.codes
    if np.any((codes % 2) == 0):
        raise QuantizationError("reinterpreted codes must all be odd")
    if codes.min(initial=-1) < -limit or codes.max(initial=1) > limit:
        raise QuantizationError("reinterpreted codes out of ±(2**b - 1) range")
