"""Ternary (BitNet b1.58) weight quantization and packing.

BitNet b1.58 trains weights constrained to {-1, 0, +1} with a per-tensor
absmean scale. The paper's discussion section notes a LUT-specific
advantage: three ternary digits have 27 states and pack into **5 bits**
(the table index), whereas ADD/MAC datapaths need 2 bits per digit
(6 bits for three). This module provides:

- :func:`quantize_ternary` — absmean ternary quantization,
- :func:`pack_ternary` / :func:`unpack_ternary` — 3-trits-in-5-bits
  base-3 packing (the 1.67-bit/weight storage format),
- digit <-> index helpers used by the ternary LUT engine
  (:mod:`repro.lut.ternary`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

#: Digits per packed group and bits per packed group.
TRITS_PER_GROUP = 3
BITS_PER_GROUP = 5


@dataclass(frozen=True)
class TernaryWeight:
    """A ternary weight tensor: digits in {-1, 0, +1} and one scale."""

    digits: np.ndarray
    scale: float

    def __post_init__(self) -> None:
        if self.digits.size and not np.all(np.isin(self.digits, (-1, 0, 1))):
            raise QuantizationError("ternary digits must be -1, 0, or +1")
        if self.scale <= 0:
            raise QuantizationError("scale must be positive")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.digits.shape

    def dequantize(self) -> np.ndarray:
        return self.digits.astype(np.float64) * self.scale

    @property
    def packed_bits_per_weight(self) -> float:
        """Storage density of the base-3 packing (5/3 bits per weight)."""
        return BITS_PER_GROUP / TRITS_PER_GROUP


def quantize_ternary(weights: np.ndarray) -> TernaryWeight:
    """BitNet-style absmean ternary quantization.

    ``scale = mean(|w|)``; each weight maps to
    ``clip(round(w / scale), -1, 1)``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    scale = float(np.mean(np.abs(weights)))
    if scale == 0.0:
        scale = 1.0
    digits = np.clip(np.round(weights / scale), -1, 1).astype(np.int64)
    return TernaryWeight(digits=digits, scale=scale)


def digits_to_index(digits: np.ndarray) -> np.ndarray:
    """Map groups of 3 digits (last axis = 3) to base-3 indices 0..26.

    Digit d maps to trit (d + 1); index = t0 + 3 t1 + 9 t2.
    """
    digits = np.asarray(digits, dtype=np.int64)
    if digits.shape[-1] != TRITS_PER_GROUP:
        raise QuantizationError("last axis must hold 3 ternary digits")
    trits = digits + 1
    if trits.min(initial=0) < 0 or trits.max(initial=0) > 2:
        raise QuantizationError("digits out of {-1, 0, 1}")
    weights_of = np.array([1, 3, 9], dtype=np.int64)
    return trits @ weights_of


def index_to_digits(indices: np.ndarray) -> np.ndarray:
    """Inverse of :func:`digits_to_index`: (..., ) -> (..., 3) digits."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.min(initial=0) < 0 or indices.max(initial=0) > 26:
        raise QuantizationError("ternary indices must be in 0..26")
    t0 = indices % 3
    t1 = (indices // 3) % 3
    t2 = indices // 9
    return np.stack([t0, t1, t2], axis=-1) - 1


def pack_ternary(digits: np.ndarray) -> np.ndarray:
    """Pack a flat digit array into 5-bit groups stored in a uint8 stream.

    Length must be a multiple of 3. The 1.67-bit/weight density is the
    LUT-friendly format the paper contrasts with 2-bit-per-digit storage.
    """
    flat = np.asarray(digits, dtype=np.int64).ravel()
    if flat.size % TRITS_PER_GROUP != 0:
        raise QuantizationError("digit count must be a multiple of 3")
    indices = digits_to_index(flat.reshape(-1, TRITS_PER_GROUP))
    # Write each 5-bit index into a bit stream.
    bits = np.zeros(indices.size * BITS_PER_GROUP, dtype=np.uint8)
    for bit in range(BITS_PER_GROUP):
        bits[bit::BITS_PER_GROUP] = (indices >> bit) & 1
    return np.packbits(bits, bitorder="little")


def unpack_ternary(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack *count* digits (multiple of 3) from :func:`pack_ternary`."""
    if count % TRITS_PER_GROUP != 0:
        raise QuantizationError("count must be a multiple of 3")
    groups = count // TRITS_PER_GROUP
    bits = np.unpackbits(np.asarray(packed, dtype=np.uint8),
                         bitorder="little")
    needed = groups * BITS_PER_GROUP
    if bits.size < needed:
        raise QuantizationError("packed buffer too short")
    bits = bits[:needed].astype(np.int64)
    indices = np.zeros(groups, dtype=np.int64)
    for bit in range(BITS_PER_GROUP):
        indices |= bits[bit::BITS_PER_GROUP] << bit
    return index_to_digits(indices).reshape(-1)


def packed_bytes(count: int) -> int:
    """Bytes needed to store *count* ternary weights in base-3 packing."""
    if count % TRITS_PER_GROUP != 0:
        raise QuantizationError("count must be a multiple of 3")
    total_bits = count // TRITS_PER_GROUP * BITS_PER_GROUP
    return (total_bits + 7) // 8
