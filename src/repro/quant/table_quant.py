"""INT8 table quantization (paper Section 3.1.3).

High-precision activations (FP16/FP32) would make the precomputed lookup
tables wide and the MUX/broadcast datapath expensive. The paper instead
quantizes each precomputed table to a unified low precision (INT8 by
default) with a *per-table* dynamic scale — one scale per group of
``2**(K-1)`` symmetrized entries (K = 4 -> 8 entries per table).

Because the scale is chosen per table at precompute time, the quantization
is much finer-grained than per-tensor activation quantization, which is
why Table 5 finds no measurable accuracy loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatypes.formats import DataType, INT8
from repro.errors import LutError


@dataclass(frozen=True)
class QuantizedTable:
    """A LUT quantized to a narrow integer format with per-table scales.

    Attributes
    ----------
    codes:
        Integer table entries, shape ``(..., entries)`` where the last axis
        is the table (one table per activation group).
    scales:
        Per-table scales, shape ``(..., 1)`` broadcastable against codes.
    dtype:
        The storage format (INT8 in the paper's configuration).
    """

    codes: np.ndarray
    scales: np.ndarray
    dtype: DataType = INT8

    def dequantize(self) -> np.ndarray:
        """Real-valued table entries ``codes * scales``."""
        return self.codes.astype(np.float64) * self.scales

    @property
    def entries(self) -> int:
        return self.codes.shape[-1]


def quantize_table(
    table: np.ndarray, dtype: DataType = INT8
) -> QuantizedTable:
    """Quantize *table* (last axis = entries of one table) to *dtype*.

    The scale for each table is ``max|entry| / qmax`` so the largest entry
    maps to the extreme code; all-zero tables get scale 1 to avoid
    division by zero. Symmetric (no zero-point) quantization is used since
    symmetrized tables are odd around zero by construction.
    """
    if dtype.is_float:
        raise LutError(f"table quantization target must be integer, got {dtype}")
    table = np.asarray(table, dtype=np.float64)
    if table.ndim == 0:
        raise LutError("table must have at least one axis (the entries axis)")
    qmax = dtype.max_int
    amax = np.max(np.abs(table), axis=-1, keepdims=True)
    scales = np.where(amax > 0, amax / qmax, 1.0)
    codes = np.clip(np.round(table / scales), dtype.min_int, qmax)
    return QuantizedTable(codes=codes.astype(np.int64), scales=scales, dtype=dtype)


def dequantize_table(qt: QuantizedTable) -> np.ndarray:
    """Functional alias for :meth:`QuantizedTable.dequantize`."""
    return qt.dequantize()


def table_quantization_error(table: np.ndarray, dtype: DataType = INT8) -> float:
    """Max absolute error introduced by quantizing *table* to *dtype*.

    Bounded by ``scale / 2`` per entry; exposed for the property tests and
    the Table 5 analysis.
    """
    qt = quantize_table(table, dtype)
    return float(np.max(np.abs(qt.dequantize() - np.asarray(table, dtype=np.float64))))
