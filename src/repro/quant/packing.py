"""Deployment storage format for quantized weights.

Packs :class:`~repro.quant.weight.QuantizedWeight` /
:class:`~repro.quant.reinterpret.ReinterpretedWeight` tensors into the
bit-dense buffers an accelerator would actually ship:

- codes bit-packed at their true width (1-8 bits per weight),
- scales/zero-points stored alongside,
- offline-remapped LUT indices optionally precomputed so the device does
  zero weight-side work at load time (the paper's "offline remapping"),
- ``save_quantized`` / ``load_quantized`` round-trip to ``.npz``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError
from repro.quant.reinterpret import ReinterpretedWeight, reinterpret_symmetric
from repro.quant.weight import QuantizedWeight


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Bit-pack unsigned *codes* (< 2**bits) into a uint8 stream."""
    flat = np.asarray(codes, dtype=np.int64).ravel()
    if flat.size and (flat.min() < 0 or flat.max() >= (1 << bits)):
        raise QuantizationError(f"codes do not fit in {bits} bits")
    bit_rows = ((flat[:, None] >> np.arange(bits)) & 1).astype(np.uint8)
    return np.packbits(bit_rows.ravel(), bitorder="little")


def unpack_codes(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`."""
    total_bits = count * bits
    bit_stream = np.unpackbits(
        np.asarray(packed, dtype=np.uint8), bitorder="little"
    )
    if bit_stream.size < total_bits:
        raise QuantizationError("packed buffer too short")
    bit_rows = bit_stream[:total_bits].reshape(count, bits).astype(np.int64)
    return (bit_rows << np.arange(bits)).sum(axis=1)


@dataclass(frozen=True)
class PackedWeight:
    """Serialized form of a quantized weight tensor."""

    packed: np.ndarray
    scale: np.ndarray
    zero_point: np.ndarray
    bits: int
    shape: tuple[int, ...]

    @property
    def payload_bytes(self) -> int:
        return int(
            self.packed.nbytes + self.scale.nbytes + self.zero_point.nbytes
        )

    @property
    def bits_per_weight(self) -> float:
        count = int(np.prod(self.shape))
        return 8.0 * self.packed.nbytes / count

    def unpack(self) -> QuantizedWeight:
        count = int(np.prod(self.shape))
        codes = unpack_codes(self.packed, self.bits, count).reshape(self.shape)
        return QuantizedWeight(
            codes=codes, scale=self.scale, zero_point=self.zero_point,
            bits=self.bits,
        )


def pack_quantized(qw: QuantizedWeight) -> PackedWeight:
    """Pack a quantized weight into its dense storage form."""
    return PackedWeight(
        packed=pack_codes(qw.codes, qw.bits),
        scale=np.asarray(qw.scale, dtype=np.float32),
        zero_point=np.asarray(qw.zero_point, dtype=np.float32),
        bits=qw.bits,
        shape=qw.codes.shape,
    )


def save_quantized(qw: QuantizedWeight) -> bytes:
    """Serialize to an in-memory ``.npz`` byte string."""
    packed = pack_quantized(qw)
    buffer = io.BytesIO()
    np.savez(
        buffer,
        packed=packed.packed,
        scale=packed.scale,
        zero_point=packed.zero_point,
        bits=np.int64(packed.bits),
        shape=np.asarray(packed.shape, dtype=np.int64),
    )
    return buffer.getvalue()


def load_quantized(blob: bytes) -> QuantizedWeight:
    """Inverse of :func:`save_quantized`."""
    with np.load(io.BytesIO(blob)) as data:
        packed = PackedWeight(
            packed=data["packed"],
            scale=data["scale"],
            zero_point=data["zero_point"],
            bits=int(data["bits"]),
            shape=tuple(int(x) for x in data["shape"]),
        )
    return packed.unpack()


def deployment_indices(
    qw: QuantizedWeight, lut_k: int = 4, remap: bool = True
) -> np.ndarray:
    """Precompute the per-plane LUT indices shipped to the accelerator.

    Returns an int64 array of shape ``(bits, K/lut_k, N)`` matching what
    the shared :class:`~repro.kernels.WeightPlan` builds offline for
    every kernel backend — doing it here is exactly the paper's offline
    weight remapping.
    """
    from repro.kernels import build_weight_plan
    from repro.lut.table import remap_weight_bits_offline

    plan = build_weight_plan(qw, lut_k)
    if remap:
        return remap_weight_bits_offline(plan.indices, lut_k)
    return plan.indices.copy()
