"""Affine weight quantization ``r = s * (q - z)``.

Weights are quantized offline (they are static), which is why the paper
targets weight-only quantization. Codes ``q`` are *unsigned* integers in
``[0, 2**bits - 1]`` — this is the representation the reinterpretation
step (:mod:`repro.quant.reinterpret`) starts from.

Granularity:

- ``axis=None`` — per-tensor scale/zero-point,
- ``axis=k``   — per-slice along axis *k* (per output channel in LLM linear
  layers),
- ``group_size=g`` with ``axis=k`` — per-group of *g* consecutive elements
  along axis *k* (GPTQ/AWQ-style group quantization).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class QuantizedWeight:
    """A weight tensor in the paper's unsigned affine representation.

    Attributes
    ----------
    codes:
        int64 array of unsigned codes in ``[0, 2**bits - 1]``, same shape
        as the original tensor.
    scale, zero_point:
        Arrays broadcastable against ``codes``; the dequantized value is
        ``scale * (codes - zero_point)``. ``zero_point`` is real-valued
        (the reinterpretation step produces non-integer zero-points).
    bits:
        Code width in bits (1..8 in the paper's experiments).
    """

    codes: np.ndarray
    scale: np.ndarray
    zero_point: np.ndarray
    bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise QuantizationError(f"unsupported weight bits: {self.bits}")
        if self.codes.min(initial=0) < 0 or self.codes.max(initial=0) >= (1 << self.bits):
            raise QuantizationError(
                f"codes out of range for {self.bits}-bit unsigned storage"
            )

    @property
    def shape(self) -> tuple[int, ...]:
        return self.codes.shape

    def dequantize(self) -> np.ndarray:
        """Real-valued weights ``scale * (codes - zero_point)``."""
        return self.scale * (self.codes.astype(np.float64) - self.zero_point)


def _grouped_view(
    values: np.ndarray, axis: int, group_size: int
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Reshape so the grouped axis becomes (ngroups, group_size) at the end."""
    moved = np.moveaxis(values, axis, -1)
    length = moved.shape[-1]
    if length % group_size != 0:
        raise QuantizationError(
            f"axis length {length} not divisible by group_size {group_size}"
        )
    grouped = moved.reshape(*moved.shape[:-1], length // group_size, group_size)
    return grouped, moved.shape


def quantize_weights(
    weights: np.ndarray,
    bits: int,
    axis: int | None = None,
    group_size: int | None = None,
    symmetric: bool = False,
) -> QuantizedWeight:
    """Quantize real *weights* to *bits*-bit unsigned affine codes.

    Parameters
    ----------
    weights:
        Real-valued weight tensor.
    bits:
        Target code width; codes land in ``[0, 2**bits - 1]``.
    axis:
        Axis for per-channel scales; ``None`` means per-tensor.
    group_size:
        Optional group size along *axis* for per-group scales (requires
        ``axis`` to be set).
    symmetric:
        If ``True``, force the zero-point to the grid midpoint
        ``(2**bits - 1) / 2`` so the representable reals are symmetric
        around zero (the natural choice before reinterpretation; BitNet's
        binary/ternary formats are symmetric).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        raise QuantizationError("cannot quantize an empty tensor")
    if group_size is not None and axis is None:
        raise QuantizationError("group_size requires axis")

    qmax = (1 << bits) - 1

    if axis is None:
        reduce_axes: tuple[int, ...] | None = None
        lo = weights.min()
        hi = weights.max()
        lo = np.asarray(lo)
        hi = np.asarray(hi)
    elif group_size is None:
        reduce_axes = tuple(i for i in range(weights.ndim) if i != axis % weights.ndim)
        lo = weights.min(axis=reduce_axes, keepdims=True)
        hi = weights.max(axis=reduce_axes, keepdims=True)
    else:
        grouped, moved_shape = _grouped_view(weights, axis, group_size)
        lo_g = grouped.min(axis=-1, keepdims=True)
        hi_g = grouped.max(axis=-1, keepdims=True)
        lo_g, hi_g = np.broadcast_arrays(lo_g, hi_g)
        lo = np.moveaxis(
            np.broadcast_to(lo_g, grouped.shape).reshape(moved_shape), -1, axis
        )
        hi = np.moveaxis(
            np.broadcast_to(hi_g, grouped.shape).reshape(moved_shape), -1, axis
        )

    if symmetric:
        amax = np.maximum(np.abs(lo), np.abs(hi))
        # Map [-amax, amax] onto [0, qmax] with midpoint zero.
        scale = np.where(amax > 0, 2.0 * amax / qmax, 1.0)
        zero_point = np.full_like(scale, qmax / 2.0)
    else:
        span = hi - lo
        scale = np.where(span > 0, span / qmax, 1.0)
        zero_point = -lo / scale

    codes = np.round(weights / scale + zero_point)
    codes = np.clip(codes, 0, qmax).astype(np.int64)
    return QuantizedWeight(
        codes=codes,
        scale=np.asarray(scale, dtype=np.float64),
        zero_point=np.asarray(zero_point, dtype=np.float64),
        bits=bits,
    )


def dequantize(qw: QuantizedWeight) -> np.ndarray:
    """Functional alias for :meth:`QuantizedWeight.dequantize`."""
    return qw.dequantize()
