"""cuBLAS FP16 GEMM performance model (the Fig. 4 / Fig. 18 reference)."""

from __future__ import annotations

from repro.models.workloads import GemmShape
from repro.sim.gpu_specs import A100, GpuSpec
from repro.sim.memory import MemoryModel


def cublas_gemm_time_s(
    shape: GemmShape,
    spec: GpuSpec = A100,
    compute_efficiency: float = 0.90,
) -> float:
    """Wall time of a WFP16·AFP16 GEMM under a roofline + launch model.

    cuBLAS kernels on big GEMMs achieve ~90% of tensor-core peak; small-M
    problems (GEMV) are bound by streaming the FP16 weight matrix.
    """
    memory = MemoryModel(spec)
    compute = shape.flops / (spec.fp16_tflops * 1e12 * compute_efficiency)
    traffic = (
        shape.activation_bytes(16)
        + shape.weight_bytes(16)
        + shape.output_bytes(16)
    )
    mem = memory.dram_time_s(traffic)
    return max(compute, mem) + spec.launch_overhead_us * 1e-6
