"""CUTLASS dequantization-based mpGEMM model (Fig. 2b / Fig. 4).

Weights stream at their low-bit width (the GEMV win), but every weight
element must be dequantized to FP16 before the tensor-core MMA. The
conversion instructions contend with the MMA pipeline, so the effective
compute rate drops below cuBLAS — mildly at moderate batch, more at very
large batch where the extra registers for conversion buffers reduce
occupancy (the Fig. 4c regression).
"""

from __future__ import annotations

from repro.models.workloads import GemmShape
from repro.sim.gpu_specs import A100, GpuSpec
from repro.sim.memory import MemoryModel

#: Compute-rate derate from interleaved dequantization instructions.
_DEQUANT_COMPUTE_PENALTY = 0.78
#: Additional occupancy-driven derate at very large batch.
_LARGE_BATCH_PENALTY = 0.62
_LARGE_BATCH_THRESHOLD = 2048


def cutlass_dequant_time_s(
    shape: GemmShape,
    weight_bits: int = 4,
    spec: GpuSpec = A100,
    compute_efficiency: float = 0.90,
) -> float:
    """Wall time of the dequantization-based mpGEMM kernel."""
    memory = MemoryModel(spec)
    rate = spec.fp16_tflops * 1e12 * compute_efficiency
    rate *= _DEQUANT_COMPUTE_PENALTY
    if shape.m >= _LARGE_BATCH_THRESHOLD:
        rate *= _LARGE_BATCH_PENALTY
    compute = shape.flops / rate
    traffic = (
        shape.activation_bytes(16)
        + shape.weight_bytes(weight_bits)
        + shape.output_bytes(16)
    )
    mem = memory.dram_time_s(traffic)
    return max(compute, mem) + spec.launch_overhead_us * 1e-6
