"""LUT-GEMM (Park et al.) software kernel model (Figs. 4 and 18).

Two models live here: an *analytical* timing model
(:func:`lutgemm_time_s`) used by the figure experiments, and a *numeric*
stand-in (:func:`lutgemm_software_mpgemm`) that actually computes the
product through :mod:`repro.kernels` with LUT-GEMM's table layout —
full ``2**k``-entry tables, no symmetrization and no offline remap
(the two optimizations the paper adds on top of it).

LUT-GEMM computes mpGEMM on **CUDA cores** via per-tile lookup tables:

- batch 1 (GEMV): the kernel is weight-traffic-bound, so low-bit weights
  give a solid speedup over cuBLAS — though below the dequant kernel's,
  because table construction and uncoalesced lookups eat bandwidth;
- large batch (GEMM): lookups cannot use tensor cores, so throughput is
  capped by the CUDA-core rate further degraded by shared-memory bank
  conflicts — orders of magnitude below cuBLAS (the paper's 0.01-0.02x);
- very large batches duplicate tables across more thread blocks until the
  working set exceeds what the kernel handles — the paper observes
  segmentation faults (Fig. 4's "Seg. Error"), which we model as a
  failure flag on the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.workloads import GemmShape
from repro.sim.gpu_specs import A100, GpuSpec
from repro.sim.memory import MemoryModel

#: Fraction of CUDA-core throughput achieved under bank conflicts.
_LOOKUP_EFFICIENCY = 0.16
#: GEMV bandwidth efficiency (table build + uncoalesced gathers).
_GEMV_BW_EFFICIENCY = 0.55
#: Reduction depth beyond which the GEMM-path kernel's per-block tables
#: spill past local memory and crash (the paper's "Seg. Error" bars land
#: on the deepest-K shape, LLAMA2-70B's FFN-down with K = 28672).
_SEGFAULT_K_THRESHOLD = 16384


@dataclass(frozen=True)
class LutGemmResult:
    """Outcome of the LUT-GEMM model: a time or a crash."""

    time_s: float | None
    segfault: bool = False

    @property
    def ok(self) -> bool:
        return not self.segfault and self.time_s is not None


def lutgemm_time_s(
    shape: GemmShape,
    weight_bits: int = 4,
    spec: GpuSpec = A100,
) -> LutGemmResult:
    """Wall time (or crash) of the LUT-GEMM kernel."""
    memory = MemoryModel(spec)
    # Table working set: 8 FP16 entries per 4-element group per row of M,
    # duplicated across resident thread blocks.
    groups = shape.k / 4.0
    table_bytes = shape.m * groups * 8 * 2.0
    if shape.m >= 1024 and shape.k > _SEGFAULT_K_THRESHOLD:
        return LutGemmResult(time_s=None, segfault=True)

    cuda_rate = spec.cuda_tflops * 1e12 * _LOOKUP_EFFICIENCY
    compute = shape.flops / cuda_rate
    traffic = (
        shape.activation_bytes(16)
        + shape.weight_bytes(weight_bits)
        + shape.output_bytes(16)
        + table_bytes
    )
    mem = traffic / (spec.dram_gbs * 1e9 * _GEMV_BW_EFFICIENCY)
    time = max(compute, mem) + spec.launch_overhead_us * 1e-6
    return LutGemmResult(time_s=time)


def lutgemm_software_mpgemm(
    activations: np.ndarray,
    weight,
    k: int = 4,
    backend: str | None = None,
) -> np.ndarray:
    """Numerically execute LUT-GEMM's software kernel strategy.

    LUT-GEMM stores the *full* ``2**k``-entry table per activation group
    (no Eq. 4 symmetrization, no Eq. 6 offline remap — those are the
    paper's contributions on top of it). Routing the computation through
    :mod:`repro.kernels` with that configuration makes the baseline a
    checkable numeric artifact instead of a timing curve only: any
    kernel backend must reproduce the dequantization reference exactly.

    Parameters mirror :func:`repro.lut.mpgemm.lut_mpgemm`; *weight* is a
    :class:`~repro.quant.weight.QuantizedWeight` or
    :class:`~repro.quant.reinterpret.ReinterpretedWeight`.
    """
    from repro.lut.mpgemm import LutMpGemmConfig, lut_mpgemm

    config = LutMpGemmConfig(
        k=k, symmetric_table=False, offline_remap=False, backend=backend
    )
    return lut_mpgemm(activations, weight, config)
