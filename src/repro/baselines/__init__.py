"""Kernel baselines: cuBLAS, CUTLASS dequant-mpGEMM, and LUT-GEMM.

Analytical performance models of the three software kernels the paper
compares against on the A100 (Figs. 4 and 18). Each model encodes the
*mechanism* that produces the paper's measured shape:

- **cuBLAS** — uniform FP16 GEMM on tensor cores: compute-bound at large
  batch, weight-traffic-bound at batch 1.
- **CUTLASS dequant mpGEMM** — low-bit weights in memory (so GEMV wins
  ~4x at W4) but compute at FP16 rate plus a dequantization overhead
  growing with batch (register pressure + conversion instructions).
- **LUT-GEMM** — tables on CUDA cores (no tensor cores): fine for
  memory-bound GEMV, catastrophic for compute-bound GEMM; large batches
  additionally spill tables and segfault for some shapes (the paper's
  "Seg. Error" annotations).
"""

from repro.baselines.cublas import cublas_gemm_time_s
from repro.baselines.cutlass import cutlass_dequant_time_s
from repro.baselines.lutgemm import (
    LutGemmResult,
    lutgemm_software_mpgemm,
    lutgemm_time_s,
)

__all__ = [
    "cublas_gemm_time_s",
    "cutlass_dequant_time_s",
    "LutGemmResult",
    "lutgemm_software_mpgemm",
    "lutgemm_time_s",
]
