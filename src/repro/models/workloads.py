"""Concrete GEMM shapes used in the paper's kernel-level experiments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.models.configs import LLAMA2_13B, LLAMA2_70B, ModelConfig


@dataclass(frozen=True)
class GemmShape:
    """An ``O[M, N] = A[M, K] x W[N, K]`` problem size."""

    m: int
    n: int
    k: int
    label: str = ""

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise SimulationError("GEMM dimensions must be positive")

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    def with_batch(self, m: int) -> "GemmShape":
        """Same weight matrix, different activation batch."""
        return GemmShape(m, self.n, self.k, self.label)

    def weight_bytes(self, weight_bits: int) -> int:
        return self.n * self.k * weight_bits // 8

    def activation_bytes(self, act_bits: int) -> int:
        return self.m * self.k * act_bits // 8

    def output_bytes(self, out_bits: int = 16) -> int:
        return self.m * self.n * out_bits // 8


def layer_gemm_shapes(config: ModelConfig, m: int) -> dict[str, GemmShape]:
    """The mpGEMM shapes of one transformer layer at batch-tokens *m*."""
    h = config.hidden
    shapes = {
        "qkv": GemmShape(m, h + 2 * config.kv_dim, h, "qkv"),
        "out_proj": GemmShape(m, h, h, "out_proj"),
        "ffn_down": GemmShape(m, h, config.ffn, "ffn_down"),
    }
    if config.gated_ffn:
        shapes["ffn_up"] = GemmShape(m, 2 * config.ffn, h, "ffn_up")
    else:
        shapes["ffn_up"] = GemmShape(m, config.ffn, h, "ffn_up")
    return shapes


def _fig4_shapes() -> tuple[GemmShape, ...]:
    """M0-M3: the four weight shapes of a LLAMA2-70B layer (Fig. 4).

    Fig. 4 sweeps the batch size (1 / 1024 / 4096) over these fixed
    (N, K) weight shapes; ``with_batch`` sets M.
    """
    base = layer_gemm_shapes(LLAMA2_70B, m=1)
    return (
        GemmShape(1, base["qkv"].n, base["qkv"].k, "M0"),
        GemmShape(1, base["out_proj"].n, base["out_proj"].k, "M1"),
        GemmShape(1, base["ffn_up"].n, base["ffn_up"].k, "M2"),
        GemmShape(1, base["ffn_down"].n, base["ffn_down"].k, "M3"),
    )


#: The four LLAMA2-70B kernel shapes benchmarked in Fig. 4.
FIG4_SHAPES: tuple[GemmShape, ...] = _fig4_shapes()

#: The LLAMA2-13B mpGEMM shape used for the Accel-Sim study (Section 4.3):
#: M=2048, N=27648 (fused gate+up FFN), K=5120.
FIG15_SHAPE = GemmShape(2048, 27648, 5120, "llama2-13b-ffn")

assert FIG15_SHAPE.n == 2 * LLAMA2_13B.ffn
assert FIG15_SHAPE.k == LLAMA2_13B.hidden
