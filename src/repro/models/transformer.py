"""Transformer-layer DFG builders.

Builds the operator graph of one decoder layer (Figure 1's block) for the
compiler passes and the end-to-end simulator:

    norm -> qkv mpGEMM -> attention (score GEMM, softmax, value GEMM)
         -> output mpGEMM -> residual add
         -> norm -> FFN up mpGEMM [-> gate mul] -> activation
         -> FFN down mpGEMM -> residual add

Two inference phases are modelled:

- **prefill**: ``tokens = batch x seqlen`` rows flow through every linear
  layer; attention is quadratic in ``seqlen``.
- **decode**: one token per sequence (``tokens = batch``); attention reads
  the KV cache of length ``context``.
"""

from __future__ import annotations

import enum

from repro.datatypes.formats import DataType, FP16, dtype_from_name
from repro.errors import CompilerError
from repro.compiler.dfg import DataflowGraph, OpKind, Operator, TensorSpec
from repro.models.configs import ModelConfig


class InferencePhase(enum.Enum):
    """Which phase of autoregressive inference the graph models."""

    PREFILL = "prefill"
    DECODE = "decode"


def _mpgemm(
    name: str,
    x: TensorSpec,
    n: int,
    weight_bits: int,
    act_dtype: DataType,
) -> Operator:
    m, k = x.shape
    weight = TensorSpec(f"{name}.weight", (n, k), dtype_from_name("int8"),
                        bits_override=weight_bits)
    out = TensorSpec(f"{name}.out", (m, n), act_dtype)
    return Operator(
        name=name,
        kind=OpKind.MPGEMM,
        inputs=(x, weight),
        outputs=(out,),
        flops=2.0 * m * n * k,
        attrs={"weight_bits": weight_bits},
    )


def _gemm(name: str, m: int, n: int, k: int, dtype: DataType,
          inputs: tuple[TensorSpec, ...]) -> Operator:
    out = TensorSpec(f"{name}.out", (m, n), dtype)
    return Operator(
        name=name, kind=OpKind.GEMM, inputs=inputs, outputs=(out,),
        flops=2.0 * m * n * k,
    )


def _elementwise(name: str, x: TensorSpec, extra: TensorSpec | None = None,
                 flops_per_element: float = 1.0) -> Operator:
    inputs = (x,) if extra is None else (x, extra)
    out = TensorSpec(f"{name}.out", x.shape, x.dtype)
    return Operator(
        name=name, kind=OpKind.ELEMENTWISE, inputs=inputs, outputs=(out,),
        flops=flops_per_element * x.elements,
    )


def _norm(name: str, x: TensorSpec) -> Operator:
    out = TensorSpec(f"{name}.out", x.shape, x.dtype)
    return Operator(
        name=name, kind=OpKind.NORM, inputs=(x,), outputs=(out,),
        flops=5.0 * x.elements,
    )


def build_layer_graph(
    config: ModelConfig,
    batch: int,
    seqlen: int,
    phase: InferencePhase = InferencePhase.PREFILL,
    weight_bits: int = 16,
    act_dtype: DataType = FP16,
    context: int | None = None,
) -> DataflowGraph:
    """Build the DFG of one transformer layer.

    Parameters
    ----------
    config:
        Model architecture.
    batch, seqlen:
        Request shape. In the decode phase ``seqlen`` is the generated
        position (one token per sequence flows through the layer) and
        ``context`` defaults to ``seqlen``.
    weight_bits:
        Linear-layer weight precision; 16 means unquantized GEMM, lower
        values produce ``MPGEMM`` operators for the compiler to transform.
    act_dtype:
        Activation storage format.
    context:
        Attention context length (decode phase only).
    """
    if batch < 1 or seqlen < 1:
        raise CompilerError("batch and seqlen must be positive")
    if phase is InferencePhase.PREFILL:
        tokens = batch * seqlen
        attn_context = seqlen
    else:
        tokens = batch
        attn_context = context if context is not None else seqlen

    h = config.hidden
    graph = DataflowGraph(
        f"{config.name}-{phase.value}-b{batch}-s{seqlen}-w{weight_bits}"
    )
    x = TensorSpec("layer.in", (tokens, h), act_dtype)

    norm1 = graph.add(_norm("attn.norm", x))
    use_mpgemm = weight_bits < 16

    def linear(name: str, inp: TensorSpec, n: int) -> Operator:
        if use_mpgemm:
            return graph.add(_mpgemm(name, inp, n, weight_bits, act_dtype))
        weight = TensorSpec(f"{name}.weight", (n, inp.shape[1]), act_dtype)
        return graph.add(
            _gemm(name, inp.shape[0], n, inp.shape[1], act_dtype,
                  (inp, weight))
        )

    qkv = linear("attn.qkv", norm1.outputs[0], h + 2 * config.kv_dim)

    # Attention: scores = Q K^T, probs = softmax, ctx = probs V. Uniform
    # precision (activations x activations), stays GEMM under any
    # weight quantization.
    q = TensorSpec("attn.q", (tokens, h), act_dtype)
    kcache = TensorSpec("attn.kcache", (batch * attn_context, config.kv_dim),
                        act_dtype)
    score_flops_k = config.head_dim
    scores = graph.add(
        Operator(
            name="attn.scores",
            kind=OpKind.GEMM,
            inputs=(qkv.outputs[0], kcache),
            outputs=(TensorSpec(
                "attn.scores.out",
                (tokens * config.heads, attn_context), act_dtype),),
            flops=2.0 * tokens * config.heads * attn_context * score_flops_k,
        )
    )
    softmax = graph.add(
        Operator(
            name="attn.softmax",
            kind=OpKind.SOFTMAX,
            inputs=(scores.outputs[0],),
            outputs=(TensorSpec(
                "attn.softmax.out",
                (tokens * config.heads, attn_context), act_dtype),),
            flops=5.0 * tokens * config.heads * attn_context,
        )
    )
    vcache = TensorSpec("attn.vcache", (batch * attn_context, config.kv_dim),
                        act_dtype)
    ctx = graph.add(
        Operator(
            name="attn.context",
            kind=OpKind.GEMM,
            inputs=(softmax.outputs[0], vcache),
            outputs=(TensorSpec("attn.context.out", (tokens, h), act_dtype),),
            flops=2.0 * tokens * config.heads * attn_context * config.head_dim,
        )
    )

    out_proj = linear("attn.out_proj", ctx.outputs[0], h)
    res1 = graph.add(
        _elementwise("attn.residual", out_proj.outputs[0], x)
    )

    norm2 = graph.add(_norm("ffn.norm", res1.outputs[0]))
    if config.gated_ffn:
        up = linear("ffn.up", norm2.outputs[0], 2 * config.ffn)
        act = graph.add(
            _elementwise("ffn.act", up.outputs[0], flops_per_element=4.0)
        )
        down_in = TensorSpec("ffn.gated", (tokens, config.ffn), act_dtype)
        gate = graph.add(
            Operator(
                name="ffn.gate_mul",
                kind=OpKind.ELEMENTWISE,
                inputs=(act.outputs[0],),
                outputs=(down_in,),
                flops=float(down_in.elements),
            )
        )
        down = linear("ffn.down", down_in, h)
    else:
        up = linear("ffn.up", norm2.outputs[0], config.ffn)
        act = graph.add(
            _elementwise("ffn.act", up.outputs[0], flops_per_element=4.0)
        )
        down = linear("ffn.down", act.outputs[0], h)
    graph.add(_elementwise("ffn.residual", down.outputs[0], res1.outputs[0]))
    graph.validate()
    return graph
