"""LLM workload definitions used throughout the evaluation.

- :mod:`repro.models.configs` — architecture parameters of the paper's
  models (LLAMA2 family, OPT-175B, BLOOM-176B, BitNet-b1.58-3B).
- :mod:`repro.models.workloads` — concrete mpGEMM shapes: the M0-M3
  kernels of Fig. 4, the LLAMA2-13B shape of Fig. 15, and helpers for
  prefill/decode GEMM dimensions.
- :mod:`repro.models.transformer` — operator-graph builders producing the
  DFG of one transformer layer for the compiler and simulators.
"""

from repro.models.configs import (
    ModelConfig,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA_3B,
    OPT_175B,
    BLOOM_176B,
    BITNET_3B,
    MODELS,
    model_by_name,
)
from repro.models.workloads import (
    GemmShape,
    FIG4_SHAPES,
    FIG15_SHAPE,
    layer_gemm_shapes,
)
from repro.models.transformer import (
    InferencePhase,
    build_layer_graph,
)

__all__ = [
    "ModelConfig",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAMA_3B",
    "OPT_175B",
    "BLOOM_176B",
    "BITNET_3B",
    "MODELS",
    "model_by_name",
    "GemmShape",
    "FIG4_SHAPES",
    "FIG15_SHAPE",
    "layer_gemm_shapes",
    "InferencePhase",
    "build_layer_graph",
]
