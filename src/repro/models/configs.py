"""Architecture parameters of the evaluated LLMs.

Dimensions follow the public model cards / papers. Only the quantities
that drive GEMM shapes and memory traffic are recorded: hidden size,
feed-forward size, head counts (incl. grouped-query KV heads), layer
count, and whether the FFN is gated (SwiGLU-style, two up projections).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class ModelConfig:
    """Transformer architecture hyper-parameters."""

    name: str
    hidden: int
    ffn: int
    layers: int
    heads: int
    kv_heads: int
    vocab: int = 32000
    gated_ffn: bool = False

    def __post_init__(self) -> None:
        if self.hidden % self.heads != 0:
            raise SimulationError(
                f"{self.name}: hidden {self.hidden} not divisible by "
                f"{self.heads} heads"
            )
        if self.heads % self.kv_heads != 0:
            raise SimulationError(
                f"{self.name}: heads {self.heads} not divisible by "
                f"{self.kv_heads} kv heads"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    @property
    def kv_dim(self) -> int:
        return self.kv_heads * self.head_dim

    @property
    def linear_weight_params(self) -> int:
        """Weight-matrix parameters of one layer's linear projections."""
        qkv = self.hidden * (self.hidden + 2 * self.kv_dim)
        out = self.hidden * self.hidden
        up_count = 2 if self.gated_ffn else 1
        ffn = (up_count + 1) * self.hidden * self.ffn
        return qkv + out + ffn

    @property
    def total_params(self) -> int:
        """Approximate parameter count (linear layers + embeddings)."""
        return self.layers * self.linear_weight_params + 2 * self.vocab * self.hidden

    def layer_flops(self, tokens: int, context: int) -> float:
        """FLOPs for one layer processing *tokens* against *context* length.

        Linear projections: 2 * tokens * params; attention score/value
        GEMMs: 2 * 2 * tokens * context * hidden.
        """
        linear = 2.0 * tokens * self.linear_weight_params
        attention = 4.0 * tokens * context * self.hidden
        return linear + attention


LLAMA2_7B = ModelConfig(
    "llama2-7b", hidden=4096, ffn=11008, layers=32, heads=32, kv_heads=32,
    gated_ffn=True,
)
LLAMA2_13B = ModelConfig(
    "llama2-13b", hidden=5120, ffn=13824, layers=40, heads=40, kv_heads=40,
    gated_ffn=True,
)
LLAMA2_70B = ModelConfig(
    "llama2-70b", hidden=8192, ffn=28672, layers=80, heads=64, kv_heads=8,
    gated_ffn=True,
)
#: The FP16 LLAMA-3B reference model of the BitNet-b1.58 paper.
LLAMA_3B = ModelConfig(
    "llama-3b", hidden=3200, ffn=8640, layers=26, heads=32, kv_heads=32,
    gated_ffn=True,
)
OPT_175B = ModelConfig(
    "opt-175b", hidden=12288, ffn=49152, layers=96, heads=96, kv_heads=96,
    vocab=50272,
)
BLOOM_176B = ModelConfig(
    "bloom-176b", hidden=14336, ffn=57344, layers=70, heads=112, kv_heads=112,
    vocab=250880,
)
#: BitNet b1.58 3B (ternary weights trained from scratch).
BITNET_3B = ModelConfig(
    "bitnet-3b", hidden=3200, ffn=8640, layers=26, heads=32, kv_heads=32,
    gated_ffn=True,
)

MODELS: dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (
        LLAMA2_7B,
        LLAMA2_13B,
        LLAMA2_70B,
        LLAMA_3B,
        OPT_175B,
        BLOOM_176B,
        BITNET_3B,
    )
}


def model_by_name(name: str) -> ModelConfig:
    """Look up a model config by its canonical name."""
    try:
        return MODELS[name.lower()]
    except KeyError:
        raise SimulationError(f"unknown model {name!r}") from None
