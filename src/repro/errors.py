"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them.
"""


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class DataTypeError(ReproError):
    """Raised for unknown, malformed, or unsupported numeric formats."""


class QuantizationError(ReproError):
    """Raised when a quantization request is invalid (bad bits, axis, ...)."""


class LutError(ReproError):
    """Raised for invalid LUT configurations (group size, table shape, ...)."""


class IsaError(ReproError):
    """Raised for malformed or illegal LMMA/MMA instructions."""


class HardwareModelError(ReproError):
    """Raised for invalid hardware-model configurations."""


class CompilerError(ReproError):
    """Raised by the DFG / scheduling / codegen stack."""


class SimulationError(ReproError):
    """Raised by the kernel and end-to-end simulators."""


class AccuracyError(ReproError):
    """Raised by the accuracy-evaluation substrate."""


class ExperimentError(ReproError):
    """Raised by the experiment harness (unknown names, bad selections)."""


class ServingError(ReproError):
    """Raised by the serving runtime (bad requests, capacity violations)."""
