"""Codegen: lower a schedule to an executable kernel program.

The "generated kernel" of this reproduction is a :class:`KernelProgram`
that (a) carries the instruction mix / traffic statistics the simulators
consume, and (b) can *functionally execute* the GEMM by replaying the
tiled loop nest with the bound LMMA/MMA instruction semantics — the
Python analogue of TVM emitting CUDA with LMMA intrinsics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.compiler.scheduler import Schedule
from repro.datatypes.formats import DataType, FP16
from repro.errors import CompilerError
from repro.isa.lmma import LmmaInstruction
from repro.quant.weight import QuantizedWeight, quantize_weights


@dataclass(frozen=True)
class KernelProgram:
    """A lowered kernel: statistics plus functional execution."""

    schedule: Schedule
    act_dtype: DataType

    @property
    def name(self) -> str:
        s = self.schedule
        return (
            f"{'lut_mpgemm' if s.uses_lut else 'gemm'}"
            f"_m{s.shape.m}n{s.shape.n}k{s.shape.k}"
            f"_bm{s.tile.block_m}bn{s.tile.block_n}bk{s.tile.block_k}"
        )

    @property
    def total_instructions(self) -> int:
        s = self.schedule
        return s.blocks * s.k_iterations * s.instructions_per_block_k_iter

    @property
    def smem_bytes_per_block(self) -> float:
        from repro.compiler.tiling import tile_memory_bytes

        s = self.schedule
        w_bits = (
            s.instruction.w_dtype.bits
            if isinstance(s.instruction, LmmaInstruction)
            else self.act_dtype.bits
        )
        return tile_memory_bytes(
            s.tile, self.act_dtype.bits, w_bits,
            table_bits=8 if s.uses_lut else None,
        )["smem_bytes"]

    def execute(
        self, activations: np.ndarray, weight: QuantizedWeight | np.ndarray
    ) -> np.ndarray:
        """Functionally run the kernel tile-by-tile.

        For LUT schedules *weight* must be a :class:`QuantizedWeight`;
        the loop nest walks block tiles and issues the bound LMMA
        semantics per warp tile. For MMA schedules *weight* is a dense
        float matrix (dequantized upstream, matching Fig. 2b).
        """
        s = self.schedule
        activations = np.asarray(activations, dtype=np.float64)
        if activations.shape != (s.shape.m, s.shape.k):
            raise CompilerError(
                f"activations {activations.shape} != "
                f"({s.shape.m}, {s.shape.k})"
            )
        if s.uses_lut:
            if not isinstance(weight, QuantizedWeight):
                raise CompilerError("LUT kernel needs a QuantizedWeight")
            return self._execute_lut(activations, weight)
        dense = (
            weight.dequantize() if isinstance(weight, QuantizedWeight)
            else np.asarray(weight, dtype=np.float64)
        )
        if dense.shape != (s.shape.n, s.shape.k):
            raise CompilerError(
                f"weight {dense.shape} != ({s.shape.n}, {s.shape.k})"
            )
        return self._execute_mma(activations, dense)

    def _execute_mma(self, a: np.ndarray, w: np.ndarray) -> np.ndarray:
        s = self.schedule
        out = np.zeros((s.shape.m, s.shape.n))
        bm, bn, bk = s.tile.block_m, s.tile.block_n, s.tile.block_k
        for m0 in range(0, s.shape.m, bm):
            for n0 in range(0, s.shape.n, bn):
                acc = np.zeros((min(bm, s.shape.m - m0), min(bn, s.shape.n - n0)))
                for k0 in range(0, s.shape.k, bk):
                    a_tile = a[m0:m0 + bm, k0:k0 + bk]
                    w_tile = w[n0:n0 + bn, k0:k0 + bk]
                    acc = acc + a_tile @ w_tile.T
                out[m0:m0 + bm, n0:n0 + bn] = acc
        return out

    def _execute_lut(self, a: np.ndarray, qw: QuantizedWeight) -> np.ndarray:
        from repro.lut.mpgemm import LutMpGemmConfig, LutMpGemmEngine

        s = self.schedule
        ins = s.instruction
        assert isinstance(ins, LmmaInstruction)
        config = LutMpGemmConfig(
            k=ins.k,
            act_dtype=None if self.act_dtype.is_integer else self.act_dtype,
            table_dtype=None,
        )
        engine = LutMpGemmEngine(qw, config)
        out = np.zeros((s.shape.m, s.shape.n))
        bm = s.tile.block_m
        # Block over M only: the engine is already column-parallel, and
        # blocking M reproduces the per-block table reuse pattern.
        for m0 in range(0, s.shape.m, bm):
            out[m0:m0 + bm] = engine.matmul(a[m0:m0 + bm])
        return out


def generate_kernel(schedule: Schedule, act_dtype: DataType = FP16) -> KernelProgram:
    """Lower *schedule* to a :class:`KernelProgram`."""
    return KernelProgram(schedule=schedule, act_dtype=act_dtype)
