"""Dataflow-graph IR.

A :class:`DataflowGraph` is a DAG of :class:`Operator` nodes connected by
named tensors (:class:`TensorSpec`). The IR carries exactly what the
passes and simulators need: operator kind, tensor shapes/dtypes, FLOPs,
and byte counts — not executable kernels (execution semantics live in
:mod:`repro.lut` and are bound at codegen time).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.datatypes.formats import DataType, FP16
from repro.errors import CompilerError


class OpKind(enum.Enum):
    """Operator categories recognized by the passes and simulators."""

    MPGEMM = "mpgemm"          # low-bit weight x high-precision activation
    GEMM = "gemm"              # uniform-precision matmul (e.g. attention)
    PRECOMPUTE = "precompute"  # LUT table build (produced by the DFG pass)
    LUT_MPGEMM = "lut_mpgemm"  # table-consuming mpGEMM (produced by the pass)
    ELEMENTWISE = "elementwise"  # add, mul, activation functions
    NORM = "norm"              # layernorm / rmsnorm (row reductions)
    SOFTMAX = "softmax"
    EMBEDDING = "embedding"

    @property
    def is_elementwise_like(self) -> bool:
        """Kinds fusable into neighbouring element-wise chains."""
        return self in (OpKind.ELEMENTWISE, OpKind.PRECOMPUTE)


@dataclass(frozen=True)
class TensorSpec:
    """A named tensor with shape and storage dtype."""

    name: str
    shape: tuple[int, ...]
    dtype: DataType = FP16
    #: Storage bits override for sub-byte packed data (e.g. INT2 weights).
    bits_override: int | None = None

    @property
    def elements(self) -> int:
        return math.prod(self.shape)

    @property
    def bits(self) -> int:
        return self.bits_override if self.bits_override is not None else self.dtype.bits

    @property
    def bytes(self) -> float:
        return self.elements * self.bits / 8.0


@dataclass
class Operator:
    """One DFG node."""

    name: str
    kind: OpKind
    inputs: tuple[TensorSpec, ...]
    outputs: tuple[TensorSpec, ...]
    flops: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def input_bytes(self) -> float:
        return sum(t.bytes for t in self.inputs)

    @property
    def output_bytes(self) -> float:
        return sum(t.bytes for t in self.outputs)

    @property
    def total_bytes(self) -> float:
        return self.input_bytes + self.output_bytes


class DataflowGraph:
    """A DAG of operators connected by tensor names.

    Tensors are identified by name: an operator consuming tensor ``t``
    depends on the operator producing ``t``. Graph inputs are tensors no
    operator produces.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._ops: list[Operator] = []
        self._producers: dict[str, Operator] = {}

    def add(self, op: Operator) -> Operator:
        """Append *op*, checking name uniqueness and single production."""
        if any(existing.name == op.name for existing in self._ops):
            raise CompilerError(f"duplicate operator name {op.name!r}")
        for out in op.outputs:
            if out.name in self._producers:
                raise CompilerError(f"tensor {out.name!r} produced twice")
        self._ops.append(op)
        for out in op.outputs:
            self._producers[out.name] = op
        return op

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def operators(self) -> tuple[Operator, ...]:
        return tuple(self._ops)

    def producer_of(self, tensor_name: str) -> Operator | None:
        return self._producers.get(tensor_name)

    def consumers_of(self, tensor_name: str) -> list[Operator]:
        return [
            op for op in self._ops
            if any(t.name == tensor_name for t in op.inputs)
        ]

    def predecessors(self, op: Operator) -> list[Operator]:
        preds = []
        for t in op.inputs:
            producer = self._producers.get(t.name)
            if producer is not None and producer not in preds:
                preds.append(producer)
        return preds

    def successors(self, op: Operator) -> list[Operator]:
        out_names = {t.name for t in op.outputs}
        succs = []
        for candidate in self._ops:
            if any(t.name in out_names for t in candidate.inputs):
                succs.append(candidate)
        return succs

    def graph_inputs(self) -> list[TensorSpec]:
        seen: dict[str, TensorSpec] = {}
        for op in self._ops:
            for t in op.inputs:
                if t.name not in self._producers and t.name not in seen:
                    seen[t.name] = t
        return list(seen.values())

    def graph_outputs(self) -> list[TensorSpec]:
        consumed = {
            t.name for op in self._ops for t in op.inputs
        }
        outs = []
        for op in self._ops:
            for t in op.outputs:
                if t.name not in consumed:
                    outs.append(t)
        return outs

    def topological_order(self) -> list[Operator]:
        """Operators in dependency order; raises on cycles."""
        indegree: dict[str, int] = {op.name: 0 for op in self._ops}
        for op in self._ops:
            for pred in self.predecessors(op):
                indegree[op.name] += 1
        ready = [op for op in self._ops if indegree[op.name] == 0]
        order: list[Operator] = []
        while ready:
            op = ready.pop(0)
            order.append(op)
            for succ in self.successors(op):
                indegree[succ.name] -= 1
                if indegree[succ.name] == 0:
                    ready.append(succ)
        if len(order) != len(self._ops):
            raise CompilerError(f"cycle detected in graph {self.name!r}")
        return order

    def validate(self) -> None:
        """Check the graph is a well-formed DAG (raises otherwise)."""
        self.topological_order()

    @property
    def total_flops(self) -> float:
        return sum(op.flops for op in self._ops)

    def clone_without(self, names: Iterable[str]) -> "DataflowGraph":
        """A copy excluding the named operators (used by passes)."""
        excluded = set(names)
        clone = DataflowGraph(self.name)
        for op in self._ops:
            if op.name not in excluded:
                clone.add(op)
        return clone
