"""rTile-style tile enumeration driven by memory footprint.

Conventional GEMM tiling assumes both operands share a dtype; mpGEMM does
not (FP16 activations vs INT1-4 weights), so the paper represents tiles by
*memory size* rather than shape (Section 3.3.2). A :class:`TileConfig`
records the thread-block and warp tile shapes; :func:`tile_memory_bytes`
computes its shared-memory/register footprint given the operand formats,
and :func:`enumerate_tiles` yields every configuration that fits a GPU's
budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CompilerError


@dataclass(frozen=True)
class TileConfig:
    """Thread-block and warp tiling of a GEMM."""

    block_m: int
    block_n: int
    block_k: int
    warp_m: int
    warp_n: int
    stages: int = 2

    def __post_init__(self) -> None:
        if min(self.block_m, self.block_n, self.block_k) < 1:
            raise CompilerError("tile dims must be positive")
        if self.block_m % self.warp_m or self.block_n % self.warp_n:
            raise CompilerError("warp tile must divide block tile")

    @property
    def warps(self) -> int:
        return (self.block_m // self.warp_m) * (self.block_n // self.warp_n)

    @property
    def threads(self) -> int:
        return self.warps * 32


def tile_memory_bytes(
    tile: TileConfig,
    act_bits: int,
    weight_bits: int,
    table_bits: int | None = None,
    lut_k: int = 4,
) -> dict[str, float]:
    """Memory footprint of one thread block running *tile*.

    Returns shared-memory bytes (operand staging, double-buffered by
    ``stages``) and register bytes (accumulators + LUT tables when
    ``table_bits`` is given).
    """
    a_tile = tile.block_m * tile.block_k * act_bits / 8.0
    w_tile = tile.block_n * tile.block_k * weight_bits / 8.0
    smem = tile.stages * (a_tile + w_tile)
    accum_regs = tile.block_m * tile.block_n * 4.0  # fp32 accumulators
    table_regs = 0.0
    if table_bits is not None:
        entries = 1 << (lut_k - 1)
        groups = tile.block_k / lut_k
        # One table set per block-M row and K-group, duplicated per warp
        # along N (the broadcast penalty of software LUT; the LUT Tensor
        # Core broadcasts in hardware so only one copy is needed).
        table_regs = tile.block_m * groups * entries * table_bits / 8.0
    return {
        "smem_bytes": smem,
        "accum_reg_bytes": accum_regs,
        "table_reg_bytes": table_regs,
        "reg_bytes": accum_regs + table_regs,
    }


_BLOCK_M = (16, 32, 64, 128, 256)
_BLOCK_N = (32, 64, 128, 256, 512)
_BLOCK_K = (16, 32, 64)
_WARP = (16, 32, 64, 128, 256)


def enumerate_tiles(
    m: int,
    n: int,
    k: int,
    act_bits: int,
    weight_bits: int,
    smem_budget_bytes: float,
    reg_budget_bytes: float,
    table_bits: int | None = None,
    lut_k: int = 4,
) -> list[TileConfig]:
    """All tile configs that fit the budgets for an (M, N, K) problem."""
    if min(m, n, k) < 1:
        raise CompilerError("problem dims must be positive")
    tiles: list[TileConfig] = []
    for bm in _BLOCK_M:
        if bm > max(m, 16) * 2:
            continue
        for bn in _BLOCK_N:
            if bn > max(n, 32) * 2:
                continue
            for bk in _BLOCK_K:
                if bk > k:
                    continue
                for wm in _WARP:
                    if wm > bm or bm % wm:
                        continue
                    for wn in _WARP:
                        if wn > bn or bn % wn:
                            continue
                        tile = TileConfig(bm, bn, bk, wm, wn)
                        if not 1 <= tile.warps <= 16:
                            continue
                        cost = tile_memory_bytes(
                            tile, act_bits, weight_bits, table_bits, lut_k
                        )
                        if cost["smem_bytes"] > smem_budget_bytes:
                            continue
                        if cost["reg_bytes"] > reg_budget_bytes:
                            continue
                        tiles.append(tile)
    return tiles


def arithmetic_intensity(
    tile: TileConfig, act_bits: int, weight_bits: int
) -> float:
    """FLOPs per byte of main-memory traffic for one block K-iteration."""
    flops = 2.0 * tile.block_m * tile.block_n * tile.block_k
    bytes_moved = (
        tile.block_m * tile.block_k * act_bits
        + tile.block_n * tile.block_k * weight_bits
    ) / 8.0
    return flops / bytes_moved
