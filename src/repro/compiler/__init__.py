"""Welder/Roller/TVM-style compilation stack (paper Section 3.3).

- :mod:`repro.compiler.dfg` — dataflow-graph IR: tensors, operators,
  graphs, traversal and validation.
- :mod:`repro.compiler.passes` — graph passes: the mpGEMM ->
  precompute + LUT-mpGEMM **DFG transformation** and Welder-style
  element-wise **operator fusion**.
- :mod:`repro.compiler.tiling` — rTile-like tile enumeration driven by
  memory footprint rather than shape (the paper's fix for mixed-dtype
  tiling).
- :mod:`repro.compiler.scheduler` — picks thread-block/warp tiles for a
  GEMM on a GPU spec and binds LMMA/MMA instructions.
- :mod:`repro.compiler.codegen` — emits the kernel programs the
  simulators execute.
"""

from repro.compiler.dfg import DataflowGraph, OpKind, Operator, TensorSpec
from repro.compiler.passes import (
    split_mpgemm_pass,
    fuse_elementwise_pass,
    FusionGroup,
    fusion_groups,
)
from repro.compiler.tiling import TileConfig, enumerate_tiles, tile_memory_bytes
from repro.compiler.scheduler import Schedule, schedule_gemm
from repro.compiler.codegen import KernelProgram, generate_kernel
from repro.compiler.model_compiler import CompiledModel, compile_layer

__all__ = [
    "DataflowGraph",
    "OpKind",
    "Operator",
    "TensorSpec",
    "split_mpgemm_pass",
    "fuse_elementwise_pass",
    "FusionGroup",
    "fusion_groups",
    "TileConfig",
    "enumerate_tiles",
    "tile_memory_bytes",
    "Schedule",
    "schedule_gemm",
    "KernelProgram",
    "generate_kernel",
    "CompiledModel",
    "compile_layer",
]
