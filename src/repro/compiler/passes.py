"""Graph passes: the DFG transformation and Welder-style operator fusion.

**DFG transformation** (:func:`split_mpgemm_pass`, Section 3.1.1 / 3.3.2):
every ``MPGEMM`` operator is replaced by a ``PRECOMPUTE`` operator (table
build over the activation tensor) feeding a ``LUT_MPGEMM`` operator. The
precompute runs once per activation tile and is broadcast, eliminating the
per-LUT-unit redundancy of conventional hardware.

**Operator fusion** (:func:`fuse_elementwise_pass`): element-wise-like
operators (including ``PRECOMPUTE``) are merged into their producer's
fusion group, removing the intermediate tensor's round-trip to memory.
Fusion never changes values — only the traffic accounting used by the
end-to-end simulator (Table 4's mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes.formats import INT8
from repro.errors import CompilerError
from repro.compiler.dfg import DataflowGraph, OpKind, Operator, TensorSpec

#: Lookup-group length of the LUT pipeline (paper: K = 4).
LUT_GROUP_K = 4
#: Table entries after symmetrization.
TABLE_ENTRIES = 1 << (LUT_GROUP_K - 1)
#: Table storage bits after INT8 table quantization.
TABLE_BITS = INT8.bits


def split_mpgemm_pass(graph: DataflowGraph) -> DataflowGraph:
    """Replace each MPGEMM with PRECOMPUTE + LUT_MPGEMM.

    The precompute output is a table tensor of shape
    ``(M, K / LUT_GROUP_K, TABLE_ENTRIES)`` stored at ``TABLE_BITS``; the
    LUT-mpGEMM consumes the table plus the packed low-bit weights.
    """
    out = DataflowGraph(graph.name + "+split")
    for op in graph.topological_order():
        if op.kind is not OpKind.MPGEMM:
            out.add(op)
            continue
        activation, weight = op.inputs
        m, k = activation.shape
        if k % LUT_GROUP_K != 0:
            raise CompilerError(
                f"{op.name}: K={k} not divisible by lut group {LUT_GROUP_K}"
            )
        groups = k // LUT_GROUP_K
        table = TensorSpec(
            f"{op.name}.table", (m, groups, TABLE_ENTRIES), INT8
        )
        # Table precompute: one signed-sum network pass over the
        # activations (2**(K-1) adds of K-length patterns per group, but
        # computed incrementally: ~1 add per entry).
        precompute_flops = float(m * groups * TABLE_ENTRIES)
        out.add(
            Operator(
                name=f"{op.name}.precompute",
                kind=OpKind.PRECOMPUTE,
                inputs=(activation,),
                outputs=(table,),
                flops=precompute_flops,
                attrs={"k": LUT_GROUP_K, "source": op.name},
            )
        )
        out.add(
            Operator(
                name=op.name,
                kind=OpKind.LUT_MPGEMM,
                inputs=(table, weight),
                outputs=op.outputs,
                flops=op.flops,
                attrs={**op.attrs, "lut_k": LUT_GROUP_K},
            )
        )
    out.validate()
    return out


@dataclass
class FusionGroup:
    """A set of operators executed as one kernel."""

    operators: list[Operator] = field(default_factory=list)

    @property
    def name(self) -> str:
        return "+".join(op.name for op in self.operators)

    @property
    def anchor(self) -> Operator:
        """The non-element-wise operator the group is built around (or the
        first operator for pure element-wise chains)."""
        for op in self.operators:
            if not op.kind.is_elementwise_like:
                return op
        return self.operators[0]

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.operators)

    def external_bytes(self, graph: DataflowGraph) -> float:
        """Bytes crossing the kernel boundary after fusion.

        Tensors produced *and* consumed entirely inside the group stay in
        registers/shared memory and are not counted.
        """
        internal = {
            t.name for op in self.operators for t in op.outputs
        }
        member_names = {op.name for op in self.operators}
        read = 0.0
        for op in self.operators:
            for t in op.inputs:
                if t.name not in internal:
                    read += t.bytes
        written = 0.0
        for op in self.operators:
            for t in op.outputs:
                consumers = graph.consumers_of(t.name)
                escapes = (not consumers) or any(
                    c.name not in member_names for c in consumers
                )
                if escapes:
                    written += t.bytes
        return read + written


def fusion_groups(graph: DataflowGraph) -> list[FusionGroup]:
    """Partition *graph* into fusion groups (Welder-style greedy tiling).

    Strategy: walk in topological order; an element-wise-like operator
    joins its producer's group when it is the producer tensor's only
    consumer; a non-element-wise operator absorbs a directly preceding
    element-wise chain (prologue fusion, used for precompute) and any
    element-wise epilogue.
    """
    order = graph.topological_order()
    group_of: dict[str, FusionGroup] = {}
    groups: list[FusionGroup] = []

    for op in order:
        target: FusionGroup | None = None
        preds = graph.predecessors(op)
        if len(preds) >= 1:
            # Fuse with the producer of the first input when that edge is
            # private (single consumer) and one side is element-wise-like.
            producer = graph.producer_of(op.inputs[0].name)
            if producer is not None:
                sole_consumer = (
                    len(graph.consumers_of(op.inputs[0].name)) == 1
                )
                fusable = op.kind.is_elementwise_like or (
                    producer.kind.is_elementwise_like
                    and _group_has_no_anchor(group_of[producer.name])
                )
                if sole_consumer and fusable:
                    target = group_of[producer.name]
        if target is None:
            target = FusionGroup()
            groups.append(target)
        target.operators.append(op)
        group_of[op.name] = target
    return groups


def _group_has_no_anchor(group: FusionGroup) -> bool:
    return all(op.kind.is_elementwise_like for op in group.operators)


def fuse_elementwise_pass(graph: DataflowGraph) -> list[FusionGroup]:
    """Alias of :func:`fusion_groups` kept for pipeline readability."""
    return fusion_groups(graph)


def graph_traffic_bytes(graph: DataflowGraph, fused: bool) -> float:
    """Total memory traffic of the graph, with or without fusion."""
    if fused:
        return sum(g.external_bytes(graph) for g in fusion_groups(graph))
    return sum(op.total_bytes for op in graph)
