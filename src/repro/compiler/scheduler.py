"""Tile scheduling: bind a GEMM/mpGEMM to block/warp tiles + instructions.

Implements the Roller-style selection loop: enumerate feasible rTiles
(by memory footprint), score each by a fast analytical model (arithmetic
intensity and occupancy), and bind the warp tile to MMA or LMMA
instructions. The chosen :class:`Schedule` is what codegen lowers and the
kernel simulator executes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.tiling import (
    TileConfig,
    arithmetic_intensity,
    enumerate_tiles,
)
from repro.datatypes.formats import DataType, FP16, dtype_from_name
from repro.errors import CompilerError
from repro.isa.lmma import LmmaInstruction, default_lmma_for
from repro.isa.mma import A100_MMA_SHAPES, MmaInstruction
from repro.models.workloads import GemmShape
from repro.sim.gpu_specs import GpuSpec


@dataclass(frozen=True)
class Schedule:
    """A fully bound kernel schedule for one GEMM."""

    shape: GemmShape
    tile: TileConfig
    instruction: LmmaInstruction | MmaInstruction
    uses_lut: bool

    @property
    def instructions_per_block_k_iter(self) -> int:
        ins = self.instruction
        per_warp_m = self.tile.warp_m // ins.m
        per_warp_n = self.tile.warp_n // ins.n
        per_k = max(self.tile.block_k // ins.k, 1)
        return per_warp_m * per_warp_n * per_k * self.tile.warps

    @property
    def k_iterations(self) -> int:
        return math.ceil(self.shape.k / self.tile.block_k)

    @property
    def blocks(self) -> int:
        return math.ceil(self.shape.m / self.tile.block_m) * math.ceil(
            self.shape.n / self.tile.block_n
        )


def _score(tile: TileConfig, shape: GemmShape, act_bits: int,
           weight_bits: int, spec: GpuSpec) -> float:
    """Roller-style score: intensity, penalized for bad wave quantization."""
    intensity = arithmetic_intensity(tile, act_bits, weight_bits)
    blocks = math.ceil(shape.m / tile.block_m) * math.ceil(
        shape.n / tile.block_n
    )
    waves = max(math.ceil(blocks / spec.sms), 1)
    utilization = blocks / (waves * spec.sms)
    padding = (
        (math.ceil(shape.m / tile.block_m) * tile.block_m / shape.m)
        * (math.ceil(shape.n / tile.block_n) * tile.block_n / shape.n)
    )
    return intensity * utilization / padding


def schedule_gemm(
    shape: GemmShape,
    spec: GpuSpec,
    act_dtype: DataType = FP16,
    weight_bits: int = 16,
    use_lut: bool = False,
) -> Schedule:
    """Pick the best tile + instruction for *shape* on *spec*.

    With ``use_lut`` the warp tile is bound to an LMMA instruction whose
    shape matches the LUT tensor core (M2 N64 K4 family); otherwise to the
    GPU's native MMA shape for the activation dtype.
    """
    if use_lut and spec.lut is None:
        raise CompilerError(f"{spec.name} has no LUT extension to schedule for")
    streamed_w_bits = weight_bits if use_lut else act_dtype.bits
    tiles = enumerate_tiles(
        shape.m, shape.n, shape.k,
        act_bits=act_dtype.bits,
        weight_bits=streamed_w_bits,
        smem_budget_bytes=spec.smem_bytes_per_sm,
        reg_budget_bytes=spec.regfile_bytes_per_sm,
        table_bits=8 if use_lut else None,
    )
    if not tiles:
        raise CompilerError(f"no feasible tile for {shape} on {spec.name}")
    best_tile = max(
        tiles, key=lambda t: _score(t, shape, act_dtype.bits,
                                    streamed_w_bits, spec)
    )
    if use_lut:
        w_dtype = dtype_from_name(f"int{weight_bits}")
        n_dim = 64 if best_tile.warp_n >= 64 else max(best_tile.warp_n, 32)
        instruction: LmmaInstruction | MmaInstruction = default_lmma_for(
            w_dtype, act_dtype, shape=(2, n_dim, 4)
        )
    else:
        key = "fp16" if act_dtype.is_float else "int8"
        instruction = A100_MMA_SHAPES[key]
    return Schedule(
        shape=shape, tile=best_tile, instruction=instruction, uses_lut=use_lut
    )
