"""Whole-model compilation driver.

Ties the stack together the way the paper's Figure 10 describes: take an
LLM layer, run the DFG transformation and fusion passes, schedule every
matmul onto MMA or LMMA tiles for a target GPU, and produce a
:class:`CompiledModel` report with per-kernel schedules, instruction
mixes, and simulated times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.compiler.dfg import DataflowGraph, OpKind, Operator
from repro.compiler.passes import FusionGroup, fusion_groups, split_mpgemm_pass
from repro.compiler.scheduler import Schedule, schedule_gemm
from repro.datatypes.formats import DataType, FP16
from repro.errors import CompilerError
from repro.models.workloads import GemmShape
from repro.sim.gpu_specs import GpuSpec
from repro.sim.tile_sim import PrecomputeMode, TileSimulator

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.models.configs import ModelConfig
    from repro.models.transformer import InferencePhase


@dataclass(frozen=True)
class CompiledKernel:
    """One fused kernel with its (optional) matmul schedule."""

    name: str
    kind: str
    operators: tuple[str, ...]
    schedule: Schedule | None
    simulated_ms: float

    @property
    def instruction(self) -> str:
        if self.schedule is None:
            return "(vector kernel)"
        return self.schedule.instruction.name


@dataclass
class CompiledModel:
    """Compilation + timing report for one transformer layer."""

    graph: DataflowGraph
    kernels: list[CompiledKernel] = field(default_factory=list)

    @property
    def layer_ms(self) -> float:
        return sum(k.simulated_ms for k in self.kernels)

    @property
    def matmul_kernels(self) -> list[CompiledKernel]:
        return [k for k in self.kernels if k.schedule is not None]

    @property
    def lmma_instructions(self) -> set[str]:
        return {
            k.instruction for k in self.matmul_kernels
            if k.instruction.startswith("lmma")
        }

    def report(self) -> str:
        lines = [
            f"compiled {self.graph.name}: {len(self.kernels)} kernels, "
            f"{self.layer_ms:.3f} ms/layer",
        ]
        for k in self.kernels:
            lines.append(
                f"  {k.name[:48]:<50} {k.kind:<12} "
                f"{k.instruction:<36} {k.simulated_ms:7.3f} ms"
            )
        return "\n".join(lines)


def _matmul_shape(op: Operator) -> GemmShape:
    out = op.outputs[0]
    if op.kind is OpKind.LUT_MPGEMM:
        weight = op.inputs[1]
        n, k = weight.shape
    else:
        a = op.inputs[0]
        k = a.shape[-1]
        n = out.shape[-1]
    return GemmShape(out.shape[0], n, k, op.name)


def compile_layer(
    config: "ModelConfig",
    spec: GpuSpec,
    batch: int,
    seqlen: int,
    phase: "InferencePhase | None" = None,
    weight_bits: int = 16,
    act_dtype: DataType = FP16,
) -> CompiledModel:
    """Compile and time one transformer layer for *spec*.

    Quantized layers (``weight_bits < 16``) on LUT-equipped GPUs go
    through the DFG transformation and get LMMA schedules; everything
    else lowers to MMA.
    """
    from repro.models.transformer import InferencePhase, build_layer_graph

    if phase is None:
        phase = InferencePhase.PREFILL
    graph = build_layer_graph(
        config, batch, seqlen, phase,
        weight_bits=weight_bits, act_dtype=act_dtype,
    )
    use_lut = weight_bits < 16 and spec.lut is not None
    if use_lut:
        graph = split_mpgemm_pass(graph)
    elif weight_bits < 16:
        raise CompilerError(
            f"{spec.name} has no LUT tensor cores; compile with "
            "weight_bits=16 (dequantization path) or add an extension"
        )

    simulator = TileSimulator(spec)
    timing = simulator.time_graph(
        graph, act_bits=act_dtype.bits,
        precompute=PrecomputeMode.FUSED if use_lut else PrecomputeMode.NONE,
    )
    time_of = {t.name: t.time_s * 1e3 for t in timing.groups}

    compiled = CompiledModel(graph=graph)
    for group in fusion_groups(graph):
        anchor = group.anchor
        schedule = None
        if anchor.kind in (OpKind.GEMM, OpKind.MPGEMM, OpKind.LUT_MPGEMM):
            shape = _matmul_shape(anchor)
            schedule = schedule_gemm(
                shape, spec, act_dtype,
                weight_bits=anchor.attrs.get("weight_bits", 16),
                use_lut=anchor.kind is OpKind.LUT_MPGEMM,
            )
        compiled.kernels.append(CompiledKernel(
            name=group.name,
            kind=anchor.kind.value,
            operators=tuple(op.name for op in group.operators),
            schedule=schedule,
            simulated_ms=time_of.get(group.name, 0.0),
        ))
    # Precompute penalty entries (fused table builds) are timed by the
    # simulator outside the fusion groups; surface them as kernels too so
    # the compiled total matches the simulator's.
    group_names = {k.name for k in compiled.kernels}
    for t in timing.groups:
        if t.name not in group_names:
            compiled.kernels.append(CompiledKernel(
                name=t.name,
                kind=t.kind,
                operators=(t.name,),
                schedule=None,
                simulated_ms=t.time_s * 1e3,
            ))
    return compiled
