"""Multi-worker serving: an asyncio router over shared-nothing engines.

One Python process is the ceiling on concurrent users no matter how
fast each engine step gets. This module scales *out* instead: N
independent :class:`~repro.runtime.engine.ServingEngine` workers —
each with its own model weights, KV pool, and prefix index — behind an
:class:`AsyncRouter` front end that places requests with a pluggable
:class:`~repro.runtime.routing.RoutingPolicy`, streams tokens back per
request, and applies backpressure through a bounded in-flight window.

Transport is deliberately in-process, behind the :class:`WorkerHandle`
protocol:

- ``inline`` (default) — the router pumps each engine directly on the
  event loop. Fully deterministic: the same submissions produce the
  same event order, which is what lets the cluster be *fuzzed* for
  bit-exact parity against a single engine.
- ``thread`` — one worker thread per engine, queues across the seam,
  exercising the same message protocol (dict requests in, dict events
  out) a subprocess or RPC transport would use. Thread scheduling
  perturbs event *interleaving*, never token *content*: workers are
  shared-nothing, so per-request streams stay bit-identical.

Parity is the design invariant, not an accident: each worker is an
identically-seeded engine, the LUT backends are batch-invariant, and
preemption/sharing/speculation are output-transparent, so *where* a
request lands (any policy, any worker count) cannot change its token
stream — only its latency and how many KV blocks the cluster
allocates. The routing policy's job is purely to minimize the latter.

Wire format across the handle seam is the ``to_dict`` form of
:class:`~repro.runtime.engine.Request` /
:class:`~repro.runtime.engine.RequestResult` plus three event shapes::

    {"type": "token", "request_id": ..., "token": int}
    {"type": "done",  "request_id": ..., "result": {...}}
    {"type": "error", "request_id": ... | None, "message": str}

Quickstart::

    router = AsyncRouter(lambda: ServingEngine(build_model()),
                         workers=2, routing="prefix-aware")
    results = router.run_sync(requests)   # ordered like *requests*
"""

from __future__ import annotations

import asyncio
import queue
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import ServingError
from repro.runtime.engine import Request, RequestResult, ServingEngine
from repro.runtime.routing import (
    RoutingContext,
    RoutingPolicy,
    ShadowPrefixIndex,
    get_routing_policy,
)


@runtime_checkable
class WorkerHandle(Protocol):
    """Transport seam between the router and one engine replica.

    Requests cross as :meth:`Request.to_dict` payloads; progress comes
    back as event dicts from :meth:`drain`. ``pump`` grants the worker
    one unit of forward progress — a no-op for transports that drive
    themselves (threads).
    """

    block_size: int

    def submit(self, request: dict) -> None: ...

    def pump(self) -> None: ...

    def drain(self) -> list[dict]: ...

    def idle(self) -> bool: ...

    def summary(self) -> dict: ...

    def close(self) -> None: ...


class InlineWorkerHandle:
    """In-process handle: the caller pumps the engine one step at a
    time. Deterministic — the fuzz-parity workhorse."""

    def __init__(self, engine: ServingEngine) -> None:
        self.engine = engine
        self.block_size = engine.model.kv_pool.block_size
        #: Tokens already emitted per in-flight request id.
        self._emitted: dict[str, int] = {}
        #: Prefix of ``engine.finished`` already turned into events.
        self._done = 0
        self._events: list[dict] = []

    def submit(self, request: dict) -> None:
        self.engine.submit(Request.from_dict(request))

    def pump(self) -> None:
        if self.engine.has_work:
            self.engine.step()
            self._collect()

    def _collect(self) -> None:
        """Diff engine state into token/done events.

        In-flight sequences live in ``active``/``prefilling``/
        ``preempted``; a preempted sequence keeps its generated prefix,
        so already-emitted counts never regress.
        """
        engine = self.engine
        for seq in engine.active + engine.prefilling + engine.preempted:
            rid = seq.request.request_id
            seen = self._emitted.get(rid, 0)
            for token in seq.generated[seen:]:
                self._events.append(
                    {"type": "token", "request_id": rid,
                     "token": int(token)}
                )
            self._emitted[rid] = len(seq.generated)
        finished = engine.finished
        while self._done < len(finished):
            result = finished[self._done]
            rid = result.request_id
            seen = self._emitted.pop(rid, 0)
            for token in result.tokens[seen:]:
                self._events.append(
                    {"type": "token", "request_id": rid,
                     "token": int(token)}
                )
            self._events.append(
                {"type": "done", "request_id": rid,
                 "result": result.to_dict()}
            )
            self._done += 1

    def drain(self) -> list[dict]:
        events, self._events = self._events, []
        return events

    def idle(self) -> bool:
        return not self.engine.has_work

    def summary(self) -> dict:
        stats = self.engine.model.kv_pool.stats
        return {
            "requests": self._done,
            "blocks_allocated": int(stats["allocated"]),
            "blocks_shared": int(stats["shared"]),
            "preemptions": self.engine._preemptions,
            "swaps": self.engine._swaps,
            "swap_resumes": self.engine._swap_resumes,
            "generated_tokens": sum(
                len(r.tokens) for r in self.engine.finished
            ),
        }

    def close(self) -> None:
        pass


#: Thread-loop control values (module-level: picklable, comparable).
_SHUTDOWN = object()
_NO_ITEM = object()


class ThreadWorkerHandle:
    """One worker thread per engine, queues across the seam.

    The thread drives an :class:`InlineWorkerHandle` and forwards its
    events; the router only ever touches the two queues. Engines are
    shared-nothing, so N worker threads never contend on model or pool
    state — scheduling reorders *when* events surface, never *what*
    tokens they carry. A step failure surfaces as an ``error`` event
    and stops the thread; :meth:`summary` is only meaningful after
    :meth:`close`.
    """

    def __init__(self, engine: ServingEngine) -> None:
        self._inner = InlineWorkerHandle(engine)
        self.block_size = self._inner.block_size
        self._in: queue.SimpleQueue = queue.SimpleQueue()
        self._out: queue.SimpleQueue = queue.SimpleQueue()
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def submit(self, request: dict) -> None:
        self._idle.clear()
        self._in.put(request)

    def pump(self) -> None:
        pass  # the thread pumps itself

    def _loop(self) -> None:
        while True:
            if self._inner.idle():
                self._idle.set()
                item = self._in.get()  # block: nothing to pump
                self._idle.clear()
            else:
                try:
                    item = self._in.get(block=False)
                except queue.Empty:
                    item = _NO_ITEM
            if item is _SHUTDOWN:
                self._idle.set()
                return
            if item is not _NO_ITEM:
                try:
                    self._inner.submit(item)
                except ServingError as exc:
                    self._out.put(
                        {"type": "error",
                         "request_id": item.get("request_id"),
                         "message": str(exc)}
                    )
                continue  # ingest greedily before pumping
            try:
                self._inner.pump()
            except Exception as exc:  # noqa: BLE001 — cross the seam
                self._out.put(
                    {"type": "error", "request_id": None,
                     "message": f"{type(exc).__name__}: {exc}"}
                )
                self._idle.set()
                return
            for event in self._inner.drain():
                self._out.put(event)

    def drain(self) -> list[dict]:
        events: list[dict] = []
        while True:
            try:
                events.append(self._out.get(block=False))
            except queue.Empty:
                return events

    def idle(self) -> bool:
        return self._idle.is_set()

    def summary(self) -> dict:
        return self._inner.summary()

    def close(self) -> None:
        if self._thread.is_alive():
            self._in.put(_SHUTDOWN)
            self._thread.join(timeout=10.0)


class TokenStream:
    """Async iterator over one request's tokens.

    Yields each generated token as the cluster produces it; iteration
    ends when the request finishes, after which :attr:`result` holds
    its :class:`~repro.runtime.engine.RequestResult`. Awaiting the
    next token is what drives the router forward (there is no
    background task), so a stream can be consumed in isolation.
    """

    def __init__(self, request_id: str, router: "AsyncRouter") -> None:
        self.request_id = request_id
        self._router = router
        self._tokens: deque[int] = deque()
        self._finished = False
        self._error: Exception | None = None
        self.result: RequestResult | None = None

    def __aiter__(self) -> "TokenStream":
        return self

    async def __anext__(self) -> int:
        while True:
            if self._tokens:
                return self._tokens.popleft()
            if self._error is not None:
                raise self._error
            if self._finished:
                raise StopAsyncIteration
            await self._router._advance()


@dataclass
class ClusterStats:
    """Aggregate of one router run, from per-worker summaries."""

    workers: list[dict] = field(default_factory=list)

    def _total(self, key: str) -> int:
        return sum(int(w.get(key, 0)) for w in self.workers)

    @property
    def requests(self) -> int:
        return self._total("requests")

    @property
    def blocks_allocated(self) -> int:
        return self._total("blocks_allocated")

    @property
    def blocks_shared(self) -> int:
        return self._total("blocks_shared")

    @property
    def preemptions(self) -> int:
        return self._total("preemptions")

    @property
    def swaps(self) -> int:
        return self._total("swaps")

    @property
    def generated_tokens(self) -> int:
        return self._total("generated_tokens")


class AsyncRouter:
    """Asyncio front end over N shared-nothing engine replicas.

    ``engine_factory`` builds one independent
    :class:`~repro.runtime.engine.ServingEngine` per worker (replicas
    must be identically configured for parity; the factory is called
    ``workers`` times). ``routing`` names a policy from
    :data:`~repro.runtime.routing.ROUTING_POLICIES` or passes an
    instance. ``max_pending`` bounds cluster-wide in-flight requests:
    :meth:`submit` awaits until a slot frees (backpressure), so an
    unbounded producer cannot overrun the workers.

    The router is the only writer of its placement state — per-worker
    in-flight loads and :class:`~repro.runtime.routing.ShadowPrefixIndex`
    mirrors — so placement never reads worker memory and works
    unchanged over any transport.
    """

    def __init__(
        self,
        engine_factory: Callable[[], ServingEngine],
        workers: int = 2,
        routing: str | RoutingPolicy = "round-robin",
        transport: str = "inline",
        max_pending: int = 64,
        shadow_capacity: int = 4096,
        shadow_eviction: str = "lru",
    ) -> None:
        if workers < 1:
            raise ServingError("workers must be >= 1")
        if max_pending < 1:
            raise ServingError("max_pending must be >= 1")
        if transport not in ("inline", "thread"):
            raise ServingError(
                f"unknown transport {transport!r}; "
                "available: inline, thread"
            )
        self.policy = get_routing_policy(routing)
        self.max_pending = max_pending
        self._transport = transport
        make: Callable[[ServingEngine], WorkerHandle] = (
            InlineWorkerHandle if transport == "inline"
            else ThreadWorkerHandle
        )
        self.handles: list[WorkerHandle] = [
            make(engine_factory()) for _ in range(workers)
        ]
        self._loads = [0] * workers
        self._shadows = [
            ShadowPrefixIndex(
                handle.block_size,
                capacity=shadow_capacity,
                eviction=shadow_eviction,
            )
            for handle in self.handles
        ]
        self._streams: dict[str, TokenStream] = {}
        self._placements: dict[str, int] = {}
        self._closed = False

    @property
    def pending(self) -> int:
        """Requests submitted but not yet finished."""
        return len(self._streams)

    async def submit(self, request: Request) -> TokenStream:
        """Place *request* on a worker and return its token stream.

        Awaits while the in-flight window is full — consuming any
        stream (or awaiting another submit) drains the cluster and
        frees slots.
        """
        if self._closed:
            raise ServingError("router is closed")
        if request.request_id in self._placements:
            raise ServingError(
                f"duplicate request id {request.request_id!r}"
            )
        while len(self._streams) >= self.max_pending:
            await self._advance()
        worker = self.policy.place(
            request,
            RoutingContext(loads=tuple(self._loads),
                           shadows=tuple(self._shadows)),
        )
        if not 0 <= worker < len(self.handles):
            raise ServingError(
                f"routing policy {self.policy.name!r} placed "
                f"{request.request_id!r} on worker {worker}; "
                f"cluster has {len(self.handles)}"
            )
        stream = TokenStream(request.request_id, self)
        self._streams[request.request_id] = stream
        self._placements[request.request_id] = worker
        self._loads[worker] += 1
        # Placement record IS the shadow update — the router mirrors
        # what it just made reachable on that worker, never queries it.
        self._shadows[worker].record(request.prompt)
        try:
            self.handles[worker].submit(request.to_dict())
        except ServingError:
            # Inline transport rejects synchronously (oversize,
            # unservable); undo the placement record and re-raise.
            self._finish(request.request_id)
            raise
        return stream

    async def _advance(self) -> None:
        """One scheduling quantum: pump every worker, dispatch events."""
        for handle in self.handles:
            handle.pump()
        moved = self._dispatch()
        if self._transport == "thread" and not moved and self._streams:
            # Worker threads produce asynchronously; yield the loop a
            # real timeslice instead of spinning on empty drains.
            await asyncio.sleep(0.001)
        else:
            await asyncio.sleep(0)

    def _dispatch(self) -> bool:
        moved = False
        for handle in self.handles:
            for event in handle.drain():
                moved = True
                kind = event.get("type")
                rid = event.get("request_id")
                stream = self._streams.get(rid) if rid else None
                if kind == "token":
                    if stream is not None:
                        stream._tokens.append(int(event["token"]))
                elif kind == "done":
                    if stream is not None:
                        stream.result = RequestResult.from_dict(
                            event["result"]
                        )
                        stream._finished = True
                        self._finish(rid)
                elif kind == "error":
                    message = event.get("message", "worker error")
                    if stream is not None:
                        stream._error = ServingError(message)
                        self._finish(rid)
                    else:
                        # Worker-fatal: fail every stream it owned.
                        raise ServingError(message)
        return moved

    def _finish(self, request_id: str) -> None:
        self._streams.pop(request_id, None)
        worker = self._placements.pop(request_id, None)
        if worker is not None:
            self._loads[worker] -= 1

    async def run(
        self, requests: Sequence[Request]
    ) -> list[RequestResult]:
        """Submit *requests* and gather results in the same order."""

        async def one(request: Request) -> RequestResult:
            stream = await self.submit(request)
            async for _token in stream:
                pass
            if stream.result is None:
                raise ServingError(
                    f"request {request.request_id!r} ended without a "
                    "result"
                )
            return stream.result

        return list(await asyncio.gather(*(one(r) for r in requests)))

    def run_sync(
        self, requests: Sequence[Request]
    ) -> list[RequestResult]:
        """Blocking convenience wrapper over :meth:`run`."""
        return asyncio.run(self.run(requests))

    def stats(self) -> ClusterStats:
        """Aggregate per-worker summaries (complete once idle)."""
        return ClusterStats(
            workers=[handle.summary() for handle in self.handles]
        )

    def close(self) -> None:
        """Shut down transports; idempotent."""
        if not self._closed:
            self._closed = True
            for handle in self.handles:
                handle.close()


__all__ = [
    "AsyncRouter",
    "ClusterStats",
    "InlineWorkerHandle",
    "ThreadWorkerHandle",
    "TokenStream",
    "WorkerHandle",
]
