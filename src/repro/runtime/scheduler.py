"""Pluggable admission scheduling for the serving engine.

PR 3's engine hard-coded FIFO admission inside ``ServingEngine._admit``.
This module extracts the decision — *which waiting request joins the
batch next, if any* — behind the :class:`SchedulerPolicy` seam, so
batching policies can vary without touching the engine's lifecycle
machinery:

- ``fifo`` — arrival order, the previous behavior and the default;
- ``sjf`` — shortest-prompt-first: cheapest prefill next, which keeps
  decode slots busy when a long-prompt request would otherwise stall a
  refill (classic shortest-job-first, applied to admission);
- ``memory-aware`` — FIFO order, but a request is only admitted when
  the shared KV block pool can hold its **maximum** footprint
  (``prompt + max_new_tokens`` across all layers). With a bounded pool
  this turns mid-decode pool exhaustion — a hard
  :class:`~repro.errors.ServingError` — into back-pressure at
  admission.

Policies see an immutable :class:`SchedulingContext` snapshot (free
decode slots, pool occupancy, block geometry) plus the waiting queue in
arrival order, and return the index of the request to admit or ``None``
to admit nothing this step. The engine re-consults the policy after
every admission, so a policy can admit several requests per step.

With chunked prefill (``RuntimeConfig.prefill_chunk``) a sequence can
sit mid-prefill for several steps holding a *partial* footprint; the
engine's scheduling context counts those sequences against free slots
and reserves the rest of their worst case exactly like active ones, so
``memory-aware`` admission arithmetic is unchanged by chunking.

Admission back-pressure only gates at entry; once sequences are
running, a bounded pool that runs hot needs a relief valve. That is the
:class:`PreemptionPolicy` seam: when the next decode step cannot
allocate its blocks, the engine asks the policy to rank the active
sequences as eviction candidates and preempts from the front of that
ranking until the step fits. A preempted sequence's non-shared blocks
return to the pool and its state collapses to a recompute-on-resume
record; resumption re-prefills ``prompt + generated`` through the
prefix index, so re-admission is mostly block-table reconstruction.

- ``priority-remaining`` (default) — evict the lowest
  :attr:`~repro.runtime.engine.Request.priority` first, break ties by
  the longest remaining generation (the victim that would hold its
  blocks longest), then by latest admission;
- ``latest-first`` — LIFO: the most recently admitted sequence goes
  first, protecting the oldest in-flight work.

**SLO-aware scheduling** closes the loop between deadlines and both
seams. A request may carry an :class:`SloSpec` — a TTFT budget and a
per-output-token (TPOT) budget, both in wall milliseconds from submit.
The ``slo-aware`` admission policy runs earliest-deadline-first over
the waiting queue (each entry's TTFT deadline is ``submitted_at +
ttft_ms``; requests without an SLO sort last), and the ``slo-aware``
preemption policy ranks victims by **deadline slack** — the budget
milliseconds left once the estimated remaining work (remaining tokens
x the sequence's *observed* TPOT, falling back to the TPOT budget
before any is observed) is paid::

    slack = ttft_ms + tpot_ms * max_new_tokens      # total budget
            - elapsed_ms_since_submit               # spent
            - remaining_tokens * observed_tpot_ms   # still owed

Victims, best first: sequences whose deadline is already unmeetable
(negative slack — their tokens cannot count toward goodput, so
delaying them further loses nothing), most-blown first; then sequences
by *descending* slack (the most headroom absorbs a preemption with the
least SLO damage; no-SLO sequences have infinite slack and go first in
this tier); ties by lower priority, then latest admission. Both
policies are output-transparent like every other policy here —
admission order and eviction choice never change a request's token
stream, only its latency.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import ServingError


def worst_case_blocks(
    prompt_len: int, max_new_tokens: int, block_size: int, layers: int
) -> int:
    """KV blocks a request can ever occupy across all layers.

    The cache peaks at ``prompt + max_new_tokens - 1`` tokens: the
    final sampled token is returned to the caller but never appended
    (the sequence finishes first). The single source of the footprint
    formula — admission gating, submit-time rejection, and reservation
    accounting all call it.
    """
    tokens = max(1, prompt_len + max_new_tokens - 1)
    return layers * (-(-tokens // block_size))


def resume_blocks_needed(
    context_tokens: int,
    remaining_tokens: int,
    block_size: int,
    layers: int,
    live_shareable: int = 0,
    swapped: bool = False,
) -> int:
    """Pool headroom one preempted sequence's resumption must find.

    Both resume paths peak at the sequence's full original worst case
    (``context_tokens`` rebuilt now, ``remaining_tokens`` grown later),
    but they *acquire* blocks differently: recompute-on-resume
    re-prefills through the prefix index, so blocks *live* holders
    already keep in the pool are adopted, not allocated — discounted
    via ``live_shareable``. A **swapped** sequence restores its spilled
    slabs into freshly allocated private blocks (restore-into-pool
    never adopts: the spilled contents, not the index, are the source
    of truth), so its headroom is the undiscounted worst case.
    """
    needed = worst_case_blocks(
        context_tokens, remaining_tokens, block_size, layers
    )
    if swapped:
        return needed
    return max(0, needed - live_shareable)


@dataclass(frozen=True)
class SchedulingContext:
    """Engine/pool state a policy may consult for one admission decision.

    Attributes
    ----------
    free_slots:
        Open decode-batch slots (always >= 1 when a policy is asked).
    free_blocks:
        KV blocks the pool can still promise to a *new* sequence:
        physically free blocks minus the worst-case growth already
        reserved by admitted sequences (their ``prompt +
        max_new_tokens`` footprint is spoken for even before it is
        allocated). ``None`` when the pool is unbounded.
    block_size:
        Tokens per KV block.
    layers:
        Decoder layers — every token occupies one block slot per layer.
    live_shareable:
        Optional callable mapping a prompt (token sequence) to the
        number of its worst-case blocks *live* sequences already hold
        in the prefix index — blocks the request would adopt instead
        of allocating. Memory-gating policies subtract it so requests
        admitted through submit's sharing discount stay admissible.
    """

    free_slots: int
    free_blocks: int | None
    block_size: int
    layers: int
    live_shareable: Callable[[Sequence[int]], int] | None = None

    def blocks_needed(self, prompt_len: int, max_new_tokens: int) -> int:
        """Pool blocks a request needs at its maximum sequence length."""
        return worst_case_blocks(
            prompt_len, max_new_tokens, self.block_size, self.layers
        )


@dataclass(frozen=True)
class SloSpec:
    """Per-request latency budgets, in wall milliseconds from submit.

    ``ttft_ms`` bounds time-to-first-token; ``tpot_ms`` bounds the mean
    per-output-token latency after the first. Either may be ``None``
    (unconstrained). A request with no :class:`SloSpec` at all is
    best-effort: it never counts toward goodput and the ``slo-aware``
    policies deprioritize it behind every deadlined request.
    """

    ttft_ms: float | None = None
    tpot_ms: float | None = None

    def to_dict(self) -> dict:
        return {"ttft_ms": self.ttft_ms, "tpot_ms": self.tpot_ms}

    @classmethod
    def from_dict(cls, payload: dict) -> "SloSpec":
        return cls(
            ttft_ms=payload.get("ttft_ms"),
            tpot_ms=payload.get("tpot_ms"),
        )


class WaitingRequest:
    """A waiting-queue entry: the request plus its submit timestamp.

    The engine hands these to :meth:`SchedulerPolicy.select` so
    deadline-aware policies can order by ``submitted_at + slo.ttft_ms``.
    Every request attribute (``prompt``, ``max_new_tokens``, ``slo``,
    ...) delegates to the wrapped request, so policies written against
    bare :class:`~repro.runtime.engine.Request` objects keep working
    unchanged — and tests may still pass bare requests, which simply
    lack ``submitted_at``.
    """

    __slots__ = ("request", "submitted_at")

    def __init__(self, request, submitted_at: float):
        self.request = request
        self.submitted_at = submitted_at

    def __getattr__(self, name):
        return getattr(self.request, name)


def deadline_slack_ms(seq, now: float) -> float:
    """Budget milliseconds left for *seq* after paying estimated work.

    ``inf`` when the sequence's request carries no SLO. The remaining
    work is priced at the sequence's *observed* TPOT — falling back to
    the TPOT budget itself before any token has been produced (the
    request is presumed on-budget until measured otherwise).
    """
    slo = getattr(seq.request, "slo", None)
    if slo is None or (slo.ttft_ms is None and slo.tpot_ms is None):
        return math.inf
    budget = (slo.ttft_ms or 0.0) + (slo.tpot_ms or 0.0) * (
        seq.request.max_new_tokens
    )
    elapsed = (now - seq.submit_time) * 1e3
    est_tpot = seq.observed_tpot_ms or slo.tpot_ms or 0.0
    return budget - elapsed - seq.remaining_tokens * est_tpot


class SloAwareAdmissionPolicy:
    """Earliest-TTFT-deadline-first admission.

    Each waiting entry's deadline is ``submitted_at + slo.ttft_ms``;
    entries without a TTFT budget (or without an SLO at all) sort
    last, and ties fall back to arrival order so the policy degrades
    to FIFO on an SLO-free queue. Entries that arrive as bare requests
    (no ``submitted_at``) are ordered by budget alone.
    """

    name = "slo-aware"

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock

    def select(self, waiting, context):
        def deadline(entry) -> float:
            slo = getattr(entry, "slo", None)
            if slo is None or slo.ttft_ms is None:
                return math.inf
            submitted = getattr(entry, "submitted_at", None)
            if submitted is None:
                return slo.ttft_ms
            return submitted * 1e3 + slo.ttft_ms

        return min(range(len(waiting)), key=lambda i: (deadline(waiting[i]), i))


class SloAwarePreemptionPolicy:
    """Deadline-slack victim ranking for the pool relief valve.

    Best victims first: sequences whose deadline is already unmeetable
    (negative :func:`deadline_slack_ms` — their tokens cannot count
    toward goodput, so stalling them loses nothing), most blown first;
    then sequences by descending slack — the most headroom absorbs a
    preemption with the least SLO damage, and no-SLO sequences
    (infinite slack) lead that tier. Ties break by lower request
    priority, then latest admission.
    """

    name = "slo-aware"

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock

    def select_victims(self, active, context):
        now = self._clock()

        def key(i):
            slack = deadline_slack_ms(active[i], now)
            if slack < 0:
                return (0, slack, active[i].priority, -i)
            return (1, -slack, active[i].priority, -i)

        return sorted(range(len(active)), key=key)


@runtime_checkable
class SchedulerPolicy(Protocol):
    """Contract every admission policy implements."""

    name: str

    def select(
        self, waiting: Sequence, context: SchedulingContext
    ) -> int | None:
        """Index into *waiting* (arrival order) to admit, or ``None``.

        *waiting* holds :class:`~repro.runtime.engine.Request` objects;
        it is never empty when the engine asks.
        """
        ...


class FifoPolicy:
    """Admit strictly in arrival order (the default)."""

    name = "fifo"

    def select(self, waiting, context):
        return 0


class ShortestPromptFirstPolicy:
    """Admit the waiting request with the shortest prompt (ties by
    arrival order) — the cheapest prefill refills a free slot fastest."""

    name = "sjf"

    def select(self, waiting, context):
        return min(
            range(len(waiting)), key=lambda i: (len(waiting[i].prompt), i)
        )


class MemoryAwareAdmissionPolicy:
    """FIFO admission gated on worst-case KV pool headroom.

    The head request is admitted only when the pool can hold its full
    ``prompt + max_new_tokens`` footprint across every layer; otherwise
    admission blocks (returns ``None``) until completions free blocks.
    Strict FIFO order — no skip-ahead — so a large request cannot be
    starved by a stream of small ones.
    """

    name = "memory-aware"

    def select(self, waiting, context):
        if context.free_blocks is not None:
            request = waiting[0]
            needed = context.blocks_needed(
                len(request.prompt), request.max_new_tokens
            )
            if context.live_shareable is not None:
                # Blocks live sequences already hold for this prompt's
                # prefix are adopted, not allocated — without this
                # discount a request submit admitted via sharing could
                # wait forever.
                needed -= context.live_shareable(request.prompt)
            if needed > context.free_blocks:
                return None
        return 0


#: Built-in policy constructors by name.
SCHEDULERS: dict[str, Callable[[], SchedulerPolicy]] = {
    "fifo": FifoPolicy,
    "sjf": ShortestPromptFirstPolicy,
    "memory-aware": MemoryAwareAdmissionPolicy,
    "slo-aware": SloAwareAdmissionPolicy,
}


def get_scheduler(policy: str | SchedulerPolicy) -> SchedulerPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, str):
        try:
            return SCHEDULERS[policy]()
        except KeyError:
            raise ServingError(
                f"unknown scheduler {policy!r}; "
                f"available: {', '.join(sorted(SCHEDULERS))}"
            ) from None
    if not isinstance(policy, SchedulerPolicy):
        raise ServingError(
            "scheduler must be a policy name or implement SchedulerPolicy"
        )
    return policy


@runtime_checkable
class PreemptionPolicy(Protocol):
    """Contract every preemption (victim-selection) policy implements."""

    name: str

    def select_victims(
        self, active: Sequence, context: SchedulingContext
    ) -> Sequence[int]:
        """Rank the active sequences as eviction candidates.

        *active* holds the engine's in-flight sequence objects, each
        exposing ``priority`` (the request's priority), the live
        ``remaining_tokens`` count and the underlying ``request``; it
        is never empty when the engine asks. Returns indices into
        *active*, best-victim first; the engine preempts from the
        front of the ranking until the next decode step's block needs
        fit the pool.
        """
        ...


class PriorityRemainingPolicy:
    """Evict lowest priority first, ties by longest remaining
    generation (the sequence that would pin its blocks longest), then
    by latest admission — the default relief valve."""

    name = "priority-remaining"

    def select_victims(self, active, context):
        return sorted(
            range(len(active)),
            key=lambda i: (
                active[i].priority,
                -active[i].remaining_tokens,
                -i,
            ),
        )


class LatestAdmittedFirstPolicy:
    """LIFO eviction: newest sequence first, oldest work protected."""

    name = "latest-first"

    def select_victims(self, active, context):
        return list(range(len(active) - 1, -1, -1))


#: Built-in preemption policy constructors by name.
PREEMPTION_POLICIES: dict[str, Callable[[], PreemptionPolicy]] = {
    "priority-remaining": PriorityRemainingPolicy,
    "latest-first": LatestAdmittedFirstPolicy,
    "slo-aware": SloAwarePreemptionPolicy,
}


def get_preemption_policy(
    policy: str | PreemptionPolicy,
) -> PreemptionPolicy:
    """Resolve a preemption policy name (or pass an instance through)."""
    if isinstance(policy, str):
        try:
            return PREEMPTION_POLICIES[policy]()
        except KeyError:
            raise ServingError(
                f"unknown preemption policy {policy!r}; "
                f"available: {', '.join(sorted(PREEMPTION_POLICIES))}"
            ) from None
    if not isinstance(policy, PreemptionPolicy):
        raise ServingError(
            "preemption must be a policy name or implement "
            "PreemptionPolicy"
        )
    return policy


__all__ = [
    "FifoPolicy",
    "LatestAdmittedFirstPolicy",
    "MemoryAwareAdmissionPolicy",
    "PREEMPTION_POLICIES",
    "PreemptionPolicy",
    "PriorityRemainingPolicy",
    "SCHEDULERS",
    "SchedulerPolicy",
    "SchedulingContext",
    "ShortestPromptFirstPolicy",
    "SloAwareAdmissionPolicy",
    "SloAwarePreemptionPolicy",
    "SloSpec",
    "WaitingRequest",
    "deadline_slack_ms",
    "get_preemption_policy",
    "get_scheduler",
    "resume_blocks_needed",
    "worst_case_blocks",
]
