"""A numeric decoder-only transformer over the kernels seam.

:class:`DecoderModel` is assembled from the *same*
:class:`~repro.models.configs.ModelConfig` the analytic cost model uses
(hidden/ffn/heads/kv-heads/gated-FFN), but it actually executes: every
linear projection is a :class:`~repro.runtime.linear.QuantizedLinear`
dispatching through the registered mpGEMM kernel backend, and decoding
is **incremental and paged** — per-layer, per-sequence
:class:`~repro.runtime.paging.PagedLayerCache` block tables over the
model's shared :class:`~repro.runtime.paging.BlockAllocator` are
extended token by token and attention runs over the cached context only
(:func:`~repro.runtime.paging.paged_decode_attention` with per-block
cached K plans when the KV cache is quantized, the float reference over
block-gathered views otherwise). A full-sequence forward per generated
token never happens, and per-step weight-plan work is O(1) amortized in
the context; the parity tests assert the incremental path reproduces
the full forward's logits on every registered backend.

Weights are random (seeded) — this is a *numeric serving substrate*, not
a pretrained checkpoint loader — which is exactly what the throughput
and parity claims need: real shapes, real kernels, real cache dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatypes.formats import DataType
from repro.errors import ServingError
from repro.lut.attention import MASKED_SCORE, float_decode_attention
from repro.lut.table import DEFAULT_K
from repro.models.configs import ModelConfig
from repro.numerics import softmax
from repro.runtime.linear import QuantizedLinear
from repro.runtime.paging import (
    DEFAULT_BLOCK_SIZE,
    BlockAllocator,
    PagedLayerCache,
    paged_decode_attention,
)


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution knobs of the serving runtime.

    Attributes
    ----------
    weight_bits:
        Width of the weight quantization applied to every linear
        projection (``None`` keeps FP weights — the baseline row).
    kv_bits:
        KV-cache quantization width for decode attention. ``None`` keeps
        the cache in float and decodes through the float reference path;
        2/4/8 quantize per the KIVI-style recipe and decode through
        :func:`~repro.lut.attention.lut_decode_attention`.
    lut_k:
        LUT activation group length (paper: 4).
    backend:
        mpGEMM kernel backend name for every dispatch (``None`` defers
        to ``REPRO_MPGEMM_BACKEND``, then the default).
    table_dtype:
        Optional LUT table quantization for the linear projections.
    max_seq_len:
        Positional-embedding capacity; prompt + generation must fit.
    kv_block_size:
        Tokens per paged-KV block (must be a multiple of ``lut_k``; a
        multiple of 16 keeps V context groups block-local, which is
        what lets full blocks freeze their quantization).
    kv_pool_blocks:
        Bound on the shared KV block pool. ``None`` (default) grows the
        pool on demand; a concrete bound makes allocation fail when
        exhausted — pair it with the memory-aware scheduler so
        admission blocks instead.
    seed:
        Weight-initialization seed.
    """

    weight_bits: int | None = 4
    kv_bits: int | None = None
    lut_k: int = DEFAULT_K
    backend: str | None = None
    table_dtype: DataType | None = None
    max_seq_len: int = 256
    kv_block_size: int = DEFAULT_BLOCK_SIZE
    kv_pool_blocks: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_seq_len < 1:
            raise ServingError("max_seq_len must be positive")
        if self.kv_bits is not None and not 1 <= self.kv_bits <= 8:
            raise ServingError("kv_bits must be in 1..8 or None")
        if self.kv_block_size < 1 or self.kv_block_size % self.lut_k:
            raise ServingError(
                "kv_block_size must be a positive multiple of lut_k"
            )
        if self.kv_pool_blocks is not None and self.kv_pool_blocks < 1:
            raise ServingError("kv_pool_blocks must be >= 1 or None")


def _layer_norm(x: np.ndarray, gain: np.ndarray, bias: np.ndarray) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + 1e-5) * gain + bias


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


class _DecoderLayer:
    """One pre-norm block: attention projections + (gated) FFN."""

    def __init__(
        self, cfg: ModelConfig, rt: RuntimeConfig, rng: np.random.Generator
    ) -> None:
        d, kv_dim, f = cfg.hidden, cfg.kv_dim, cfg.ffn
        scale = 1.0 / np.sqrt(d)

        def linear(shape: tuple[int, int], name: str) -> QuantizedLinear:
            return QuantizedLinear(
                rng.normal(scale=scale, size=shape),
                bits=rt.weight_bits,
                lut_k=rt.lut_k,
                backend=rt.backend,
                table_dtype=rt.table_dtype,
                name=name,
            )

        self.wq = linear((d, d), "wq")
        self.wk = linear((kv_dim, d), "wk")
        self.wv = linear((kv_dim, d), "wv")
        self.wo = linear((d, d), "wo")
        self.gated = cfg.gated_ffn
        if cfg.gated_ffn:
            self.w_gate = linear((f, d), "w_gate")
        self.w_up = linear((f, d), "w_up")
        self.w_down = linear((d, f), "w_down")
        self.ln1_g = np.ones(d)
        self.ln1_b = np.zeros(d)
        self.ln2_g = np.ones(d)
        self.ln2_b = np.zeros(d)

    def ffn(self, h: np.ndarray) -> np.ndarray:
        if self.gated:
            return self.w_down(_silu(self.w_gate(h)) * self.w_up(h))
        return self.w_down(np.maximum(self.w_up(h), 0.0))


class DecoderModel:
    """Numeric KV-cached decoder built from a :class:`ModelConfig`."""

    def __init__(
        self, config: ModelConfig, runtime: RuntimeConfig | None = None
    ) -> None:
        self.config = config
        self.runtime = runtime or RuntimeConfig()
        rt = self.runtime
        if config.head_dim % rt.lut_k != 0:
            raise ServingError(
                f"head_dim {config.head_dim} must be a multiple of "
                f"lut_k={rt.lut_k} for the LUT decode path"
            )
        rng = np.random.default_rng(rt.seed)
        #: Shared paged-KV pool: every sequence and every layer
        #: allocates fixed-size token blocks from here; completed
        #: requests return them for reuse.
        self.kv_pool = BlockAllocator(
            config.kv_heads,
            config.head_dim,
            block_size=rt.kv_block_size,
            num_blocks=rt.kv_pool_blocks,
            bits=rt.kv_bits,
            lut_k=rt.lut_k,
        )
        d = config.hidden
        self.tok_emb = rng.normal(scale=0.08, size=(config.vocab, d))
        self.pos_emb = rng.normal(scale=0.08, size=(rt.max_seq_len, d))
        self.layers = [
            _DecoderLayer(config, rt, rng) for _ in range(config.layers)
        ]
        self.ln_f_g = np.ones(d)
        self.ln_f_b = np.zeros(d)
        self.head = QuantizedLinear(
            rng.normal(scale=1.0 / np.sqrt(d), size=(config.vocab, d)),
            bits=rt.weight_bits,
            lut_k=rt.lut_k,
            backend=rt.backend,
            table_dtype=rt.table_dtype,
            name="head",
        )
        #: Execution counters: the engine/tests read these to prove the
        #: decode path is incremental (attention cost ~ cached context).
        self.stats = {
            "prefill_tokens": 0,
            "decode_steps": 0,
            "attn_context_tokens": 0,
        }

    # ------------------------------------------------------------------
    def new_caches(self) -> list[PagedLayerCache]:
        """Fresh per-layer block tables for one sequence.

        Blocks are claimed from the shared pool as tokens arrive; call
        :meth:`free_caches` when the sequence completes so they return
        for reuse (the engine does this automatically).
        """
        return [
            PagedLayerCache(self.kv_pool) for _ in range(self.config.layers)
        ]

    def free_caches(self, caches: list[PagedLayerCache]) -> None:
        """Return a sequence's blocks to the shared pool (idempotent)."""
        for cache in caches:
            cache.release()

    def _check_tokens(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1 or tokens.size == 0:
            raise ServingError("tokens must be a non-empty 1-D sequence")
        if tokens.min() < 0 or tokens.max() >= self.config.vocab:
            raise ServingError(
                f"token ids must be in [0, {self.config.vocab})"
            )
        return tokens

    # ------------------------------------------------------------------
    def prefill(
        self, tokens: np.ndarray, caches: list[PagedLayerCache]
    ) -> np.ndarray:
        """Process a prompt chunk, filling *caches*; returns all logits.

        Attention runs in float over the (past + chunk) context — the
        standard serving split where prefill stays high-precision and KV
        quantization applies to decode. Output shape is
        ``(chunk, vocab)``; the last row feeds the first sampled token.
        """
        tokens = self._check_tokens(tokens)
        cfg, rt = self.config, self.runtime
        t = tokens.size
        past = caches[0].length
        if past + t > rt.max_seq_len:
            raise ServingError(
                f"sequence length {past + t} exceeds max_seq_len "
                f"{rt.max_seq_len}"
            )
        d, hd = cfg.hidden, cfg.head_dim
        rep = cfg.heads // cfg.kv_heads
        positions = past + np.arange(t)
        x = self.tok_emb[tokens] + self.pos_emb[positions]

        # Causal mask over the full context: new token i attends to
        # absolute positions 0..past+i.
        total = past + t
        mask = np.where(
            np.arange(total)[None, :] > (past + np.arange(t))[:, None],
            MASKED_SCORE,
            0.0,
        )
        for layer, cache in zip(self.layers, caches):
            h = _layer_norm(x, layer.ln1_g, layer.ln1_b)
            q = layer.wq(h).reshape(t, cfg.heads, hd)
            k = layer.wk(h).reshape(t, cfg.kv_heads, hd)
            v = layer.wv(h).reshape(t, cfg.kv_heads, hd)
            cache.append(k, v)
            k_all = np.repeat(cache.k_view(), rep, axis=0)
            v_all = np.repeat(cache.v_view(), rep, axis=0)
            # (heads, t, total)
            scores = (
                np.einsum("thd,hTd->htT", q, k_all) / np.sqrt(hd)
                + mask[None]
            )
            probs = softmax(scores)
            ctx = np.einsum("htT,hTd->thd", probs, v_all).reshape(t, d)
            x = x + layer.wo(ctx)
            h2 = _layer_norm(x, layer.ln2_g, layer.ln2_b)
            x = x + layer.ffn(h2)
        self.stats["prefill_tokens"] += t
        final = _layer_norm(x, self.ln_f_g, self.ln_f_b)
        return self.head(final)

    def forward_full(self, tokens: np.ndarray) -> np.ndarray:
        """Stateless full-sequence forward (the parity reference)."""
        caches = self.new_caches()
        try:
            return self.prefill(tokens, caches)
        finally:
            self.free_caches(caches)

    # ------------------------------------------------------------------
    def _decode_attention(
        self, query: np.ndarray, cache: PagedLayerCache
    ) -> np.ndarray:
        """Attention of one new token over one sequence's cached context."""
        cfg, rt = self.config, self.runtime
        rep = cfg.heads // cfg.kv_heads
        self.stats["attn_context_tokens"] += cache.length
        if rt.kv_bits is None:
            k_all = np.repeat(cache.k_view(), rep, axis=0)
            v_all = np.repeat(cache.v_view(), rep, axis=0)
            return float_decode_attention(query, k_all, v_all)
        return paged_decode_attention(
            query,
            cache,
            repeat=rep,
            table_dtype=rt.table_dtype,
            backend=rt.backend,
        )

    def decode_batch(
        self,
        tokens: np.ndarray,
        caches_per_seq: list[list[PagedLayerCache]],
    ) -> np.ndarray:
        """One KV-cached decode step for a batch of sequences.

        ``tokens[b]`` is sequence *b*'s most recent token; its position
        is that sequence's current cache length. The linear projections
        run **batched** across sequences (one ``(B, hidden)`` mpGEMM per
        projection — this is what continuous batching buys), while
        attention runs per sequence over its own cached context. Returns
        next-token logits of shape ``(B, vocab)``.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1 or tokens.size != len(caches_per_seq):
            raise ServingError("one token and one cache set per sequence")
        cfg, rt = self.config, self.runtime
        b = tokens.size
        d, hd = cfg.hidden, cfg.head_dim
        positions = np.array([c[0].length for c in caches_per_seq])
        if positions.max(initial=0) >= rt.max_seq_len:
            raise ServingError(
                f"a sequence reached max_seq_len {rt.max_seq_len}"
            )
        x = self.tok_emb[tokens] + self.pos_emb[positions]
        for li, layer in enumerate(self.layers):
            h = _layer_norm(x, layer.ln1_g, layer.ln1_b)
            q = layer.wq(h).reshape(b, cfg.heads, hd)
            k = layer.wk(h).reshape(b, cfg.kv_heads, hd)
            v = layer.wv(h).reshape(b, cfg.kv_heads, hd)
            attn = np.empty((b, d))
            for s, caches in enumerate(caches_per_seq):
                caches[li].append(k[s], v[s])
                attn[s] = self._decode_attention(q[s], caches[li]).reshape(d)
            x = x + layer.wo(attn)
            h2 = _layer_norm(x, layer.ln2_g, layer.ln2_b)
            x = x + layer.ffn(h2)
        self.stats["decode_steps"] += 1
        final = _layer_norm(x, self.ln_f_g, self.ln_f_b)
        return self.head(final)

    def decode_step(
        self, token: int, caches: list[PagedLayerCache]
    ) -> np.ndarray:
        """Single-sequence decode step; returns ``(vocab,)`` logits."""
        return self.decode_batch(np.array([token]), [caches])[0]

    # ------------------------------------------------------------------
    def kv_memory_bytes(self, caches: list[PagedLayerCache]) -> int:
        """KV footprint of one sequence's allocated blocks across layers.

        Pure shape arithmetic over the block tables — float bytes in
        float mode, packed ``kv_bits`` entries otherwise, full block
        capacity included (that is what the pool actually holds).
        """
        return sum(cache.memory_bytes() for cache in caches)


__all__ = ["DecoderModel", "RuntimeConfig"]
