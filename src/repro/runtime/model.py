"""A numeric decoder-only transformer over the kernels seam.

:class:`DecoderModel` is assembled from the *same*
:class:`~repro.models.configs.ModelConfig` the analytic cost model uses
(hidden/ffn/heads/kv-heads/gated-FFN), but it actually executes: every
linear projection is a :class:`~repro.runtime.linear.QuantizedLinear`
dispatching through the registered mpGEMM kernel backend, and decoding
is **incremental and paged** — per-layer, per-sequence
:class:`~repro.runtime.paging.PagedLayerCache` block tables over the
model's shared :class:`~repro.runtime.paging.BlockAllocator` are
extended token by token and attention runs over the cached context only
(:func:`~repro.runtime.paging.paged_decode_attention` with per-block
cached K plans when the KV cache is quantized, the float reference over
block-gathered views otherwise). A full-sequence forward per generated
token never happens, and per-step weight-plan work is O(1) amortized in
the context; the parity tests assert the incremental path reproduces
the full forward's logits on every registered backend.

Weights are random (seeded) — this is a *numeric serving substrate*, not
a pretrained checkpoint loader — which is exactly what the throughput
and parity claims need: real shapes, real kernels, real cache dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatypes.formats import DataType
from repro.errors import ServingError
from repro.lut.attention import MASKED_SCORE, float_decode_attention
from repro.lut.table import DEFAULT_K
from repro.models.configs import ModelConfig
from repro.numerics import masked_width_softmax
from repro.runtime.linear import QuantizedLinear
from repro.runtime.paging import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_PREFIX_CACHE_BLOCKS,
    BlockAllocator,
    PagedLayerCache,
    batched_decode_append,
    fused_paged_decode_attention,
    fused_paged_verify_attention,
    paged_decode_attention,
)


@dataclass(frozen=True)
class SpeculativeConfig:
    """Draft-model speculative decoding knobs.

    The engine builds a *draft* :class:`DecoderModel` sharing the
    target's token space (same vocab, same tokenizer-free numeric
    tokens) and uses it to propose ``k`` greedy tokens per live
    sequence each step; the target then scores all ``k + 1`` candidate
    rows in one batched :meth:`DecoderModel.verify_batch` pass and
    keeps the longest agreeing prefix plus one bonus token. Rejected
    rows are rolled back with
    :meth:`~repro.runtime.paging.PagedLayerCache.truncate_rows`, so
    the token stream is exactly the non-speculative stream —
    bit-identical on the LUT backends.

    Shape overrides (``layers`` / ``heads`` / ``kv_heads`` / ``ffn`` /
    ``hidden``) and ``weight_bits`` make the draft cheaper than the
    target; ``None`` inherits the target's value. ``seed`` defaults to
    the target's weight seed — with no overrides at all the draft *is*
    the target (weights and all), which makes every greedy proposal
    agree: the acceptance-rate-1.0 configuration the engine tests pin.
    ``backend`` overrides the draft's kernel backend: drafting on
    ``"reference"`` (dequantize + BLAS) while the target verifies on a
    LUT backend is *self-speculation* — the draft runs the same
    quantized weights through the fast approximate executor, agrees
    with the exact LUT argmax except at 1e-9 ties, and the verify pass
    keeps the stream exactly the LUT stream. That is the
    high-acceptance configuration the serving bench guards.
    """

    k: int = 3
    layers: int | None = None
    heads: int | None = None
    kv_heads: int | None = None
    ffn: int | None = None
    hidden: int | None = None
    weight_bits: int | None = None
    seed: int | None = None
    backend: str | None = None
    #: Draft KV-cache width. ``"inherit"`` (default) copies the
    #: target's; an int quantizes the draft cache to that width;
    #: ``None`` keeps the draft cache in float — the fast einsum
    #: decode path, which skips all per-step quantize/plan work and is
    #: the usual choice for a cheap proposer (drafts only steer; the
    #: verify pass re-scores every candidate with target numerics).
    kv_bits: int | None | str = "inherit"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ServingError("speculative k must be >= 1")
        for name in ("layers", "heads", "kv_heads", "ffn", "hidden"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ServingError(f"speculative {name} must be >= 1")
        if self.weight_bits is not None and not 1 <= self.weight_bits <= 8:
            raise ServingError("speculative weight_bits must be in 1..8")
        if isinstance(self.kv_bits, str) and self.kv_bits != "inherit":
            raise ServingError(
                'speculative kv_bits must be an int, None, or "inherit"'
            )
        if isinstance(self.kv_bits, int) and not 1 <= self.kv_bits <= 8:
            raise ServingError("speculative kv_bits must be in 1..8")


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution knobs of the serving runtime.

    Attributes
    ----------
    weight_bits:
        Width of the weight quantization applied to every linear
        projection (``None`` keeps FP weights — the baseline row).
    kv_bits:
        KV-cache quantization width for decode attention. ``None`` keeps
        the cache in float and decodes through the float reference path;
        2/4/8 quantize per the KIVI-style recipe and decode through
        :func:`~repro.lut.attention.lut_decode_attention`.
    lut_k:
        LUT activation group length (paper: 4).
    backend:
        mpGEMM kernel backend name for every dispatch (``None`` defers
        to ``REPRO_MPGEMM_BACKEND``, then the default).
    table_dtype:
        Optional LUT table quantization for the linear projections.
    max_seq_len:
        Positional-embedding capacity; prompt + generation must fit.
    kv_block_size:
        Tokens per paged-KV block (must be a multiple of ``lut_k``; a
        multiple of 16 keeps V context groups block-local, which is
        what lets full blocks freeze their quantization).
    kv_pool_blocks:
        Bound on the shared KV block pool. ``None`` (default) grows the
        pool on demand; a concrete bound makes allocation fail when
        exhausted — pair it with the memory-aware scheduler so
        admission blocks instead.
    prefix_sharing:
        Enable copy-on-write prefix sharing: prompts whose leading
        tokens match blocks already in the pool's prefix index (from
        live or recently-completed sequences) adopt those blocks
        read-only and only compute from the first divergent token.
        Bit-exact by construction; disable to force every sequence
        onto private blocks (the no-sharing baseline the bench
        compares against).
    prefix_cache_blocks:
        Bound on *parked* (recently-freed, still-indexed) blocks the
        pool retains for prefix reuse, evicted beyond it per
        ``prefix_eviction``. ``0`` disables recently-freed sharing
        entirely; ``None`` keeps every full indexed block until pool
        pressure reclaims it — unbounded memory growth on an unbounded
        pool, so only sensible with ``kv_pool_blocks`` set.
    prefix_eviction:
        Which parked block the pool reclaims first under pressure: a
        name from
        :data:`~repro.runtime.paging.PREFIX_EVICTION_POLICIES`
        (``"lru"`` — least-recently-parked, the default — or ``"lfu"``
        — least-frequently-adopted, which protects hot system-prompt
        blocks from a stream of one-off prompts). The router's shadow
        prefix indexes accept the same names.
    seed:
        Weight-initialization seed.
    fused_decode:
        Run batched decode attention through
        :func:`~repro.runtime.paging.fused_paged_decode_attention` —
        one gathered dispatch per layer across the whole batch instead
        of per-(sequence, head, block) kernel calls, with the K/V
        appends batched pool-level too
        (:func:`~repro.runtime.paging.batched_decode_append`).
        Bit-identical to the per-sequence path on the LUT backends
        (1e-9 on ``reference``, whose batched BLAS reductions differ in
        the last ulp). With ``kv_bits=None`` the float-KV fused branch
        runs batched einsum attention over gathered float slabs — 1e-9
        against the per-sequence float path, bitwise invariant to
        batch composition. ``False`` keeps the unfused per-sequence
        path (with sequential appends) as the differential-testing
        oracle.
    prefill_chunk:
        Per-engine-step prompt-token budget for **chunked prefill**.
        ``None`` (default) prefills each admitted prompt monolithically
        inside admission; an integer makes the engine process at most
        that many prompt tokens per step, interleaved with decode
        steps, so one long prompt no longer stalls every active
        decode. Token streams are bit-identical either way on the LUT
        backends: chunked prefill computes the same rows (the causal
        softmax denominators depend only on a row's absolute position,
        never on the chunk split).
    speculative:
        Draft-model speculative decoding (:class:`SpeculativeConfig`);
        ``None`` (default) keeps plain one-token-per-step decoding.
        Output-identical by construction: the verify pass scores each
        candidate row exactly as a sequential decode step would, and
        rejected rows are truncated back out of the KV pool.
    swap_threshold_tokens:
        Enable **swap-to-host preemption** for sequences whose cached
        context is at least this many tokens: eviction serializes their
        KV blocks (:meth:`~repro.runtime.paging.PagedLayerCache.serialize`)
        to a host-side spill record and resumption restores the blocks
        into the pool — O(context) memcpy — instead of re-running
        prefill + decode replay (O(context) model FLOPs). Shorter
        contexts, and ``None`` (default), keep the cheaper
        recompute-on-resume path. Output-transparent either way: the
        restored slabs are bit-identical and a restore the pool cannot
        hold falls back to recompute.
    """

    weight_bits: int | None = 4
    kv_bits: int | None = None
    lut_k: int = DEFAULT_K
    backend: str | None = None
    table_dtype: DataType | None = None
    max_seq_len: int = 256
    kv_block_size: int = DEFAULT_BLOCK_SIZE
    kv_pool_blocks: int | None = None
    prefix_sharing: bool = True
    prefix_cache_blocks: int | None = DEFAULT_PREFIX_CACHE_BLOCKS
    prefix_eviction: str = "lru"
    seed: int = 0
    fused_decode: bool = True
    prefill_chunk: int | None = None
    speculative: SpeculativeConfig | None = None
    swap_threshold_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.prefill_chunk is not None and self.prefill_chunk < 1:
            raise ServingError("prefill_chunk must be >= 1 or None")
        if self.max_seq_len < 1:
            raise ServingError("max_seq_len must be positive")
        if self.kv_bits is not None and not 1 <= self.kv_bits <= 8:
            raise ServingError("kv_bits must be in 1..8 or None")
        if self.kv_block_size < 1 or self.kv_block_size % self.lut_k:
            raise ServingError(
                "kv_block_size must be a positive multiple of lut_k"
            )
        if self.kv_pool_blocks is not None and self.kv_pool_blocks < 1:
            raise ServingError("kv_pool_blocks must be >= 1 or None")
        if self.prefix_cache_blocks is not None and self.prefix_cache_blocks < 0:
            raise ServingError("prefix_cache_blocks must be >= 0 or None")
        if (
            self.swap_threshold_tokens is not None
            and self.swap_threshold_tokens < 1
        ):
            raise ServingError(
                "swap_threshold_tokens must be >= 1 or None"
            )


def _causal_softmax(scores: np.ndarray, past: int) -> np.ndarray:
    """Row softmax over ``(heads, t, past + t)`` causal prefill scores
    whose denominators sum each row's true causal width.

    Masked (future) entries underflow to exactly ``0.0``, but summing
    them anyway would fold a *chunk-split-dependent* number of exact
    zeros into numpy's pairwise reduction tree and move the last ulp.
    Summing exactly row i's ``past + i + 1`` leading entries makes
    every prefill row a function of its absolute position only — the
    invariant that pins chunked prefill bit-identical to a monolithic
    one on the LUT backends (the fused decode side maintains the same
    invariant via ``_grouped_softmax``). Delegates to
    :func:`repro.numerics.masked_width_softmax`, the shared exact-width
    implementation, with per-row causal widths broadcast across heads.
    """
    widths = int(past) + np.arange(scores.shape[1]) + 1
    return masked_width_softmax(scores, widths)


def _layer_norm(x: np.ndarray, gain: np.ndarray, bias: np.ndarray) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + 1e-5) * gain + bias


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


class _DecoderLayer:
    """One pre-norm block: attention projections + (gated) FFN."""

    def __init__(
        self, cfg: ModelConfig, rt: RuntimeConfig, rng: np.random.Generator
    ) -> None:
        d, kv_dim, f = cfg.hidden, cfg.kv_dim, cfg.ffn
        scale = 1.0 / np.sqrt(d)

        def linear(shape: tuple[int, int], name: str) -> QuantizedLinear:
            return QuantizedLinear(
                rng.normal(scale=scale, size=shape),
                bits=rt.weight_bits,
                lut_k=rt.lut_k,
                backend=rt.backend,
                table_dtype=rt.table_dtype,
                name=name,
            )

        self.wq = linear((d, d), "wq")
        self.wk = linear((kv_dim, d), "wk")
        self.wv = linear((kv_dim, d), "wv")
        self.wo = linear((d, d), "wo")
        self.gated = cfg.gated_ffn
        if cfg.gated_ffn:
            self.w_gate = linear((f, d), "w_gate")
        self.w_up = linear((f, d), "w_up")
        self.w_down = linear((d, f), "w_down")
        self.ln1_g = np.ones(d)
        self.ln1_b = np.zeros(d)
        self.ln2_g = np.ones(d)
        self.ln2_b = np.zeros(d)

    def ffn(self, h: np.ndarray) -> np.ndarray:
        if self.gated:
            return self.w_down(_silu(self.w_gate(h)) * self.w_up(h))
        return self.w_down(np.maximum(self.w_up(h), 0.0))


class DecoderModel:
    """Numeric KV-cached decoder built from a :class:`ModelConfig`."""

    def __init__(
        self, config: ModelConfig, runtime: RuntimeConfig | None = None
    ) -> None:
        self.config = config
        self.runtime = runtime or RuntimeConfig()
        rt = self.runtime
        if config.head_dim % rt.lut_k != 0:
            raise ServingError(
                f"head_dim {config.head_dim} must be a multiple of "
                f"lut_k={rt.lut_k} for the LUT decode path"
            )
        rng = np.random.default_rng(rt.seed)
        #: Shared paged-KV pool: every sequence and every layer
        #: allocates fixed-size token blocks from here; completed
        #: requests return them for reuse.
        self.kv_pool = BlockAllocator(
            config.kv_heads,
            config.head_dim,
            block_size=rt.kv_block_size,
            num_blocks=rt.kv_pool_blocks,
            bits=rt.kv_bits,
            lut_k=rt.lut_k,
            prefix_cache_blocks=rt.prefix_cache_blocks,
            prefix_eviction=rt.prefix_eviction,
        )
        d = config.hidden
        self.tok_emb = rng.normal(scale=0.08, size=(config.vocab, d))
        self.pos_emb = rng.normal(scale=0.08, size=(rt.max_seq_len, d))
        self.layers = [
            _DecoderLayer(config, rt, rng) for _ in range(config.layers)
        ]
        self.ln_f_g = np.ones(d)
        self.ln_f_b = np.zeros(d)
        self.head = QuantizedLinear(
            rng.normal(scale=1.0 / np.sqrt(d), size=(config.vocab, d)),
            bits=rt.weight_bits,
            lut_k=rt.lut_k,
            backend=rt.backend,
            table_dtype=rt.table_dtype,
            name="head",
        )
        #: Execution counters: the engine/tests read these to prove the
        #: decode path is incremental (attention cost ~ cached context)
        #: and that prefix sharing actually skips prefill work.
        self.stats = {
            "prefill_tokens": 0,
            "decode_steps": 0,
            "verify_steps": 0,
            "attn_context_tokens": 0,
            "shared_prefix_tokens": 0,
        }

    # ------------------------------------------------------------------
    def new_caches(self) -> list[PagedLayerCache]:
        """Fresh per-layer block tables for one sequence.

        Blocks are claimed from the shared pool as tokens arrive; call
        :meth:`free_caches` when the sequence completes so they return
        for reuse (the engine does this automatically). With prefix
        sharing enabled the caches are layer-tagged so their blocks
        enter the pool's prefix index and prompts can adopt matches.
        """
        share = self.runtime.prefix_sharing
        return [
            PagedLayerCache(self.kv_pool, layer=(li if share else None))
            for li in range(self.config.layers)
        ]

    def free_caches(self, caches: list[PagedLayerCache]) -> None:
        """Return a sequence's blocks to the shared pool (idempotent)."""
        for cache in caches:
            cache.release()

    def _check_tokens(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1 or tokens.size == 0:
            raise ServingError("tokens must be a non-empty 1-D sequence")
        if tokens.min() < 0 or tokens.max() >= self.config.vocab:
            raise ServingError(
                f"token ids must be in [0, {self.config.vocab})"
            )
        return tokens

    # ------------------------------------------------------------------
    def _match_chains(
        self, ids: list[int]
    ) -> tuple[int, list[list[tuple[int, int]]]]:
        """Per-layer prefix-index chains trimmed to one common coverage.

        Adoption must be symmetric across layers (decode reads one
        sequence length from the block tables), so every layer's chain
        is trimmed until all cover the same leading token count.
        Returns ``(common_tokens, chains)``; ``common_tokens == 0``
        means no usable match.
        """
        pool = self.kv_pool
        chains = [
            pool.match_prefix(li, ids) for li in range(self.config.layers)
        ]

        def cov(chain):
            return sum(fill for _, fill in chain)

        common = min(cov(chain) for chain in chains)
        while True:
            for chain in chains:
                while chain and cov(chain) > common:
                    chain.pop()
            trimmed = min(cov(chain) for chain in chains)
            if trimmed == common:
                break
            common = trimmed
        if common == 0 or any(cov(chain) != common for chain in chains):
            return 0, chains
        return common, chains

    def _adopt_prefix(
        self, tokens: np.ndarray, caches: list[PagedLayerCache]
    ) -> int:
        """Map indexed shared blocks as the leading prompt context.

        At least the final prompt token is always left to compute (its
        logits row feeds sampling), so adoption never covers the whole
        prompt. Returns the number of adopted (skipped) tokens.
        """
        ids = [int(t) for t in tokens[:-1]]
        if not ids:
            return 0
        common, chains = self._match_chains(ids)
        if common == 0:
            return 0
        for cache, chain in zip(caches, chains):
            cache.adopt_prefix(chain, ids[:common])
        self.stats["shared_prefix_tokens"] += common
        return common

    def adopt_prompt_prefix(
        self, tokens: np.ndarray, caches: list[PagedLayerCache]
    ) -> int:
        """Adopt a full prompt's indexed prefix ahead of chunked prefill.

        Chunked prefill feeds :meth:`prefill` one slice of the prompt
        at a time, but prefix adoption must see the *whole* prompt to
        adopt as much as a monolithic prefill would (matching inside
        the first chunk alone would stop at the chunk edge). The
        engine calls this once with the full prompt before the first
        chunk; the return value is the number of leading tokens
        already cached, so chunking starts from that offset. No-op
        (returns 0) unless the same gate a monolithic prefill applies
        holds: sharing enabled, empty caches, a multi-token prompt,
        and layer-tagged caches. Like monolithic adoption, the final
        prompt token is never adopted — its logits row feeds sampling.
        """
        tokens = self._check_tokens(tokens)
        if (
            not self.runtime.prefix_sharing
            or caches[0].length != 0
            or tokens.size <= 1
            or any(c.layer is None for c in caches)
        ):
            return 0
        return self._adopt_prefix(tokens, caches)

    def shareable_blocks(self, token_ids, live_only: bool = False) -> int:
        """Pool blocks a prompt could adopt from the prefix index now.

        Counts *full* matched blocks only, across all layers: a shared
        partial block is cloned on the first append past it, so it
        does not reduce the worst-case private footprint the admission
        and submit checks reason about.

        ``live_only`` restricts the count to blocks currently held by
        another table (refcount >= 1). Those are the only matches that
        reduce *capacity* demand — adopting a parked cached-free block
        moves it back in use, costing exactly as much pool headroom as
        a fresh allocation (it only saves the recompute). Every
        capacity gate (submit's never-fitting rejection, the resume
        check) must therefore use ``live_only=True``;
        ``live_only=False`` measures compute savings, e.g. for
        reporting.
        """
        if not self.runtime.prefix_sharing:
            return 0
        ids = [int(t) for t in token_ids][:-1]
        if not ids:
            return 0
        common, chains = self._match_chains(ids)
        if common == 0:
            return 0
        pool = self.kv_pool
        return sum(
            1
            for chain in chains
            for bid, fill in chain
            if fill == pool.block_size
            and (not live_only or pool.refcount(bid) >= 1)
        )

    def prefill(
        self,
        tokens: np.ndarray,
        caches: list[PagedLayerCache],
        share: bool = True,
    ) -> np.ndarray:
        """Process a prompt chunk, filling *caches*; returns the logits
        of every *computed* row.

        Attention runs in float over the (past + chunk) context — the
        standard serving split where prefill stays high-precision and KV
        quantization applies to decode. When prefix sharing is enabled,
        *caches* are empty and *share* is true, leading tokens matching
        the pool's prefix index are adopted instead of computed; the
        output then covers only the suffix from the first divergent
        token (bit-identical rows to an unshared prefill — the parity
        tests pin this). The last row always feeds the first sampled
        token. Pass ``share=False`` to force full computation (the
        parity reference path).
        """
        tokens = self._check_tokens(tokens)
        cfg, rt = self.config, self.runtime
        past = caches[0].length
        if (
            share
            and rt.prefix_sharing
            and past == 0
            and tokens.size > 1
            and all(c.layer is not None for c in caches)
        ):
            shared = self._adopt_prefix(tokens, caches)
            if shared:
                tokens = tokens[shared:]
                past = shared
        t = tokens.size
        if past + t > rt.max_seq_len:
            raise ServingError(
                f"sequence length {past + t} exceeds max_seq_len "
                f"{rt.max_seq_len}"
            )
        d, hd = cfg.hidden, cfg.head_dim
        rep = cfg.heads // cfg.kv_heads
        positions = past + np.arange(t)
        x = self.tok_emb[tokens] + self.pos_emb[positions]

        # Causal mask over the full context: new token i attends to
        # absolute positions 0..past+i.
        total = past + t
        mask = np.where(
            np.arange(total)[None, :] > (past + np.arange(t))[:, None],
            MASKED_SCORE,
            0.0,
        )
        for layer, cache in zip(self.layers, caches):
            h = _layer_norm(x, layer.ln1_g, layer.ln1_b)
            q = layer.wq(h).reshape(t, cfg.heads, hd)
            k = layer.wk(h).reshape(t, cfg.kv_heads, hd)
            v = layer.wv(h).reshape(t, cfg.kv_heads, hd)
            cache.append(k, v, token_ids=tokens)
            k_all = cache.k_view()
            v_all = cache.v_view()
            # Grouped-query attention over the raw (kv_heads, total,
            # hd) views: q regrouped per KV head — einsum's
            # per-element reductions match the np.repeat form bit for
            # bit without materializing (heads, total, hd) copies.
            q4 = q.reshape(t, cfg.kv_heads, rep, hd)
            scores = (
                np.einsum("tkrd,kTd->krtT", q4, k_all) / np.sqrt(hd)
            ).reshape(cfg.heads, t, total) + mask[None]
            probs = _causal_softmax(scores, past)
            ctx = np.einsum(
                "krtT,kTd->tkrd",
                probs.reshape(cfg.kv_heads, rep, t, total),
                v_all,
            ).reshape(t, d)
            x = x + layer.wo(ctx)
            h2 = _layer_norm(x, layer.ln2_g, layer.ln2_b)
            x = x + layer.ffn(h2)
        self.stats["prefill_tokens"] += t
        final = _layer_norm(x, self.ln_f_g, self.ln_f_b)
        return self.head(final)

    def forward_full(self, tokens: np.ndarray) -> np.ndarray:
        """Stateless full-sequence forward (the parity reference).

        Prefix adoption is disabled so every row is computed and the
        output always has one logits row per input token.
        """
        caches = self.new_caches()
        try:
            return self.prefill(tokens, caches, share=False)
        finally:
            self.free_caches(caches)

    # ------------------------------------------------------------------
    def _decode_attention(
        self, query: np.ndarray, cache: PagedLayerCache
    ) -> np.ndarray:
        """Attention of one new token over one sequence's cached context."""
        cfg, rt = self.config, self.runtime
        rep = cfg.heads // cfg.kv_heads
        self.stats["attn_context_tokens"] += cache.length
        if rt.kv_bits is None:
            # repeat= shares each KV head's gathered view across its
            # query-head group by index — no (heads, T, hd) np.repeat
            # copies, bitwise-identical gemvs over the same rows.
            return float_decode_attention(
                query, cache.k_view(), cache.v_view(), repeat=rep
            )
        return paged_decode_attention(
            query,
            cache,
            repeat=rep,
            table_dtype=rt.table_dtype,
            backend=rt.backend,
        )

    def decode_batch(
        self,
        tokens: np.ndarray,
        caches_per_seq: list[list[PagedLayerCache]],
    ) -> np.ndarray:
        """One KV-cached decode step for a batch of sequences.

        ``tokens[b]`` is sequence *b*'s most recent token; its position
        is that sequence's current cache length. The linear projections
        run **batched** across sequences (one ``(B, hidden)`` mpGEMM per
        projection — this is what continuous batching buys). With
        ``fused_decode`` (default) the K/V appends land through one
        pool-level batched write per layer and attention runs as one
        fused dispatch over every sequence's block table — for
        quantized *and* float KV caches; unfused keeps the sequential
        per-sequence appends and attention as the differential-testing
        oracle. Returns next-token logits of shape ``(B, vocab)``.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1 or tokens.size != len(caches_per_seq):
            raise ServingError("one token and one cache set per sequence")
        cfg, rt = self.config, self.runtime
        b = tokens.size
        d, hd = cfg.hidden, cfg.head_dim
        positions = np.array([c[0].length for c in caches_per_seq])
        if positions.max(initial=0) >= rt.max_seq_len:
            raise ServingError(
                f"a sequence reached max_seq_len {rt.max_seq_len}"
            )
        x = self.tok_emb[tokens] + self.pos_emb[positions]
        fused = rt.fused_decode
        rep = cfg.heads // cfg.kv_heads
        # Hoisted once per step instead of rebuilt per layer: the
        # per-layer cache tables, and the post-append context total
        # (each sequence's pre-append length plus its one new row).
        layer_caches = [
            [caches[li] for caches in caches_per_seq]
            for li in range(len(self.layers))
        ]
        step_context = int(positions.sum()) + b
        for li, layer in enumerate(self.layers):
            h = _layer_norm(x, layer.ln1_g, layer.ln1_b)
            q = layer.wq(h).reshape(b, cfg.heads, hd)
            k = layer.wk(h).reshape(b, cfg.kv_heads, hd)
            v = layer.wv(h).reshape(b, cfg.kv_heads, hd)
            if fused:
                # Pool-level batched append (one allocation pass, one
                # stacked quantize/plan build) + one fused attention
                # dispatch for the whole batch.
                batched_decode_append(layer_caches[li], k, v, tokens)
                self.stats["attn_context_tokens"] += step_context
                attn = fused_paged_decode_attention(
                    q,
                    layer_caches[li],
                    repeat=rep,
                    table_dtype=rt.table_dtype,
                    backend=rt.backend,
                ).reshape(b, d)
            else:
                # Sequential oracle: per-sequence appends + attention,
                # kept as the differential-testing reference for both
                # the batched append and the fused kernels.
                attn = np.empty((b, d))
                for s, cache in enumerate(layer_caches[li]):
                    cache.append(k[s], v[s], token_ids=tokens[s:s + 1])
                    attn[s] = self._decode_attention(q[s], cache).reshape(d)
            x = x + layer.wo(attn)
            h2 = _layer_norm(x, layer.ln2_g, layer.ln2_b)
            x = x + layer.ffn(h2)
        self.stats["decode_steps"] += 1
        final = _layer_norm(x, self.ln_f_g, self.ln_f_b)
        return self.head(final)

    def decode_step(
        self, token: int, caches: list[PagedLayerCache]
    ) -> np.ndarray:
        """Single-sequence decode step; returns ``(vocab,)`` logits."""
        return self.decode_batch(np.array([token]), [caches])[0]

    def verify_batch(
        self,
        tokens: np.ndarray,
        caches_per_seq: list[list[PagedLayerCache]],
    ) -> np.ndarray:
        """Score ``k + 1`` speculative candidate rows per sequence in
        one batched step.

        ``tokens[b]`` holds sequence *b*'s candidate rows: its current
        last token followed by its draft proposals. Row ``j``'s logits
        are exactly what :meth:`decode_batch` would have returned after
        the sequence consumed rows ``0..j`` — every candidate's KV rows
        are appended first (a multi-row append writes the same bits the
        sequential single-row appends would), then
        :func:`~repro.runtime.paging.fused_paged_verify_attention`
        attends each row over its own causal prefix only. Bit-identical
        per row to sequential decode on the LUT backends, 1e-9 on
        ``reference`` and float-KV pools. The caller keeps the accepted
        prefix and rolls the rejected trailing rows back with
        :meth:`~repro.runtime.paging.PagedLayerCache.truncate_rows`.
        Returns logits of shape ``(B, T, vocab)``.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2 or tokens.shape[0] != len(caches_per_seq):
            raise ServingError(
                "tokens must be (batch, candidates) with one row per "
                "sequence"
            )
        cfg, rt = self.config, self.runtime
        b, t = tokens.shape
        d, hd = cfg.hidden, cfg.head_dim
        base = np.array([c[0].length for c in caches_per_seq])
        if int(base.max(initial=0)) + t > rt.max_seq_len:
            raise ServingError(
                f"a sequence's candidates exceed max_seq_len "
                f"{rt.max_seq_len}"
            )
        positions = base[:, None] + np.arange(t)[None, :]
        # Row-wise the mpGEMM backends are batch-composition invariant,
        # so flattening all B*T candidate rows into one dispatch per
        # projection reproduces the per-step rows bit for bit.
        x = (self.tok_emb[tokens] + self.pos_emb[positions]).reshape(
            b * t, d
        )
        rep = cfg.heads // cfg.kv_heads
        layer_caches = [
            [caches[li] for caches in caches_per_seq]
            for li in range(len(self.layers))
        ]
        step_context = int((positions + 1).sum())
        for li, layer in enumerate(self.layers):
            h = _layer_norm(x, layer.ln1_g, layer.ln1_b)
            q = layer.wq(h).reshape(b, t, cfg.heads, hd)
            k = layer.wk(h).reshape(b, t, cfg.kv_heads, hd)
            v = layer.wv(h).reshape(b, t, cfg.kv_heads, hd)
            for s, cache in enumerate(layer_caches[li]):
                cache.append(k[s], v[s], token_ids=tokens[s])
            self.stats["attn_context_tokens"] += step_context
            attn = fused_paged_verify_attention(
                q,
                layer_caches[li],
                base,
                repeat=rep,
                table_dtype=rt.table_dtype,
                backend=rt.backend,
            ).reshape(b * t, d)
            x = x + layer.wo(attn)
            h2 = _layer_norm(x, layer.ln2_g, layer.ln2_b)
            x = x + layer.ffn(h2)
        self.stats["verify_steps"] += 1
        final = _layer_norm(x, self.ln_f_g, self.ln_f_b)
        return self.head(final).reshape(b, t, cfg.vocab)

    # ------------------------------------------------------------------
    def kv_memory_bytes(self, caches: list[PagedLayerCache]) -> int:
        """KV footprint of one sequence's allocated blocks across layers.

        Pure shape arithmetic over the block tables — float bytes in
        float mode, packed ``kv_bits`` entries otherwise, full block
        capacity included (that is what the pool actually holds).
        """
        return sum(cache.memory_bytes() for cache in caches)


__all__ = ["DecoderModel", "RuntimeConfig", "SpeculativeConfig"]
