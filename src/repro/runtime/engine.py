"""Continuous-batching serving engine over the numeric runtime.

Request lifecycle::

    submit() -> WAITING -> (admission) -> prefill -> ACTIVE
        -> batched decode steps (continuous batching) -> FINISHED
        -> KV blocks freed back to the shared pool

The scheduler admits waiting requests whenever a decode slot is free —
sequences join and leave the running batch *between steps*, they never
wait for a whole batch to drain (continuous batching, vLLM-style, at
numeric scale). *Which* waiting request is admitted is delegated to a
pluggable :class:`~repro.runtime.scheduler.SchedulerPolicy` (``fifo``
by default; ``sjf`` and ``memory-aware`` built in — the latter gates
admission on KV block-pool headroom so a bounded pool back-pressures
instead of failing mid-decode). Each decode step runs the model's
batched step: linear projections execute as one ``(B, hidden)`` mpGEMM
per projection on the registered kernel backend, attention runs per
sequence over its own incrementally extended paged KV cache. When a
request completes, its KV blocks return to the pool for reuse.

Every decode step also appends a :class:`StepTrace` record (occupancy,
queue depth, context tokens, pool usage) to the run's
:class:`EngineStats`, so occupancy percentiles and pool behavior are
observable after the fact instead of lost.

Sampling is greedy by default; ``top_k``/``temperature`` with a
per-request seed gives reproducible stochastic decoding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServingError
from repro.numerics import softmax
from repro.runtime.model import DecoderModel
from repro.runtime.scheduler import (
    SchedulerPolicy,
    SchedulingContext,
    get_scheduler,
    worst_case_blocks,
)


@dataclass(frozen=True)
class SamplingParams:
    """How next tokens are drawn from the logits.

    ``top_k=None`` selects greedy argmax decoding; ``temperature`` then
    has no effect (argmax is invariant under positive scaling). With
    ``top_k`` set, sampling draws from the temperature-scaled softmax
    over the k highest logits, seeded per request for reproducibility.
    """

    top_k: int | None = None      # None => greedy argmax
    temperature: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.top_k is not None and self.top_k < 1:
            raise ServingError("top_k must be >= 1")
        if self.temperature <= 0:
            raise ServingError("temperature must be positive")


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: str
    prompt: tuple[int, ...]
    max_new_tokens: int
    sampling: SamplingParams = SamplingParams()
    eos_token_id: int | None = None

    def __post_init__(self) -> None:
        if not self.prompt:
            raise ServingError(f"request {self.request_id}: empty prompt")
        if self.max_new_tokens < 1:
            raise ServingError(
                f"request {self.request_id}: max_new_tokens must be >= 1"
            )


@dataclass
class RequestResult:
    """Completion record returned for every finished request."""

    request_id: str
    prompt: tuple[int, ...]
    tokens: list[int]
    finish_reason: str            # "length" | "eos"
    prefill_ms: float
    first_token_ms: float         # submit -> first sampled token
    latency_ms: float             # submit -> completion
    decode_steps: int


@dataclass(frozen=True)
class StepTrace:
    """Snapshot of one batched decode step (taken at step entry).

    Attributes
    ----------
    step:
        0-based decode-step index within the run.
    active:
        Sequences in the decode batch this step (== occupancy).
    waiting:
        Requests still queued for admission.
    finished:
        Requests completed so far.
    context_tokens:
        Summed cached context length of the active sequences.
    kv_blocks_used:
        Blocks currently allocated from the shared pool (all sequences,
        all layers).
    kv_blocks_free:
        Blocks still allocatable; ``None`` when the pool is unbounded.
    """

    step: int
    active: int
    waiting: int
    finished: int
    context_tokens: int
    kv_blocks_used: int
    kv_blocks_free: int | None


@dataclass
class EngineStats:
    """Aggregate throughput/latency statistics of one engine run."""

    requests: int
    prompt_tokens: int
    generated_tokens: int
    decode_steps: int
    wall_s: float
    #: Per-decode-step history — occupancy, queue depth, pool usage —
    #: so a finished run can be audited instead of reduced to means.
    trace: list[StepTrace] = field(default_factory=list)

    @property
    def batch_occupancy(self) -> list[int]:
        """Decode-batch size per step (derived from the trace)."""
        return [t.active for t in self.trace]

    @property
    def mean_batch(self) -> float:
        if not self.batch_occupancy:
            return 0.0
        return float(np.mean(self.batch_occupancy))

    def occupancy_percentile(self, q: float) -> float:
        """Batch-occupancy percentile over the run's decode steps."""
        if not self.batch_occupancy:
            return 0.0
        return float(np.percentile(self.batch_occupancy, q))

    @property
    def occupancy_p50(self) -> float:
        return self.occupancy_percentile(50)

    @property
    def occupancy_p95(self) -> float:
        return self.occupancy_percentile(95)

    @property
    def throughput_tok_s(self) -> float:
        return self.generated_tokens / self.wall_s if self.wall_s > 0 else 0.0


class _Sequence:
    """Mutable in-flight state of one admitted request."""

    def __init__(
        self, request: Request, model: DecoderModel, submit_time: float
    ) -> None:
        self.request = request
        self.caches = model.new_caches()
        self.generated: list[int] = []
        self.rng = np.random.default_rng(request.sampling.seed)
        # Wall-clock origin of the latency fields: when the request was
        # *submitted*, so queue-wait time counts toward ttft/latency.
        self.submit_time = submit_time
        self.prefill_ms = 0.0
        self.first_token_ms = 0.0
        self.decode_steps = 0
        self.finish_reason: str | None = None

    @property
    def last_token(self) -> int:
        if self.generated:
            return self.generated[-1]
        return self.request.prompt[-1]

    def sample(self, logits: np.ndarray) -> int:
        params = self.request.sampling
        if params.top_k is None:
            return int(np.argmax(logits))
        k = min(params.top_k, logits.size)
        top = np.argpartition(logits, -k)[-k:]
        probs = softmax(logits[top] / params.temperature)
        return int(self.rng.choice(top, p=probs))

    def accept(self, token: int) -> None:
        now = time.perf_counter()
        if not self.generated:
            self.first_token_ms = (now - self.submit_time) * 1e3
        self.generated.append(token)
        req = self.request
        if req.eos_token_id is not None and token == req.eos_token_id:
            self.finish_reason = "eos"
        elif len(self.generated) >= req.max_new_tokens:
            self.finish_reason = "length"

    def result(self) -> RequestResult:
        return RequestResult(
            request_id=self.request.request_id,
            prompt=self.request.prompt,
            tokens=list(self.generated),
            finish_reason=self.finish_reason or "length",
            prefill_ms=self.prefill_ms,
            first_token_ms=self.first_token_ms,
            latency_ms=(time.perf_counter() - self.submit_time) * 1e3,
            decode_steps=self.decode_steps,
        )


class ServingEngine:
    """Continuous-batching scheduler over a :class:`DecoderModel`.

    ``scheduler`` selects the admission policy: a name from
    :data:`~repro.runtime.scheduler.SCHEDULERS` (``"fifo"``, ``"sjf"``,
    ``"memory-aware"``) or any :class:`SchedulerPolicy` instance.
    """

    def __init__(
        self,
        model: DecoderModel,
        max_batch_size: int = 8,
        scheduler: str | SchedulerPolicy = "fifo",
    ) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        self.model = model
        self.max_batch_size = max_batch_size
        self.scheduler = get_scheduler(scheduler)
        #: (request, submit wall-clock time) pairs in arrival order; the
        #: scheduler policy picks which index is admitted next.
        self.waiting: list[tuple[Request, float]] = []
        self.active: list[_Sequence] = []
        self.finished: list[RequestResult] = []
        self._trace: list[StepTrace] = []
        self._prompt_tokens = 0
        self._ids: set[str] = set()

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue a request for admission."""
        limit = self.model.runtime.max_seq_len
        if len(request.prompt) + request.max_new_tokens > limit:
            raise ServingError(
                f"request {request.request_id}: prompt + max_new_tokens "
                f"({len(request.prompt)} + {request.max_new_tokens}) "
                f"exceeds max_seq_len {limit}"
            )
        pool = self.model.kv_pool
        if pool.num_blocks is not None:
            needed = worst_case_blocks(
                len(request.prompt), request.max_new_tokens,
                pool.block_size, self.model.config.layers,
            )
            if needed > pool.num_blocks:
                raise ServingError(
                    f"request {request.request_id}: needs {needed} KV "
                    f"blocks at full length, pool holds {pool.num_blocks}"
                )
        if request.request_id in self._ids:
            raise ServingError(
                f"duplicate request id {request.request_id!r}"
            )
        self._ids.add(request.request_id)
        self.waiting.append((request, time.perf_counter()))

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.active)

    def _scheduling_context(self) -> SchedulingContext:
        pool = self.model.kv_pool
        free = pool.free_blocks
        if free is not None:
            # Report *unreserved* headroom: blocks the pool still owes
            # already-admitted sequences at their worst-case length
            # (prompt + max_new_tokens) are spoken for, even though
            # they are not allocated yet. Without this, admitting into
            # the interim gap lets an active sequence exhaust the pool
            # at its next block boundary — mid-decode, where it is a
            # hard error instead of back-pressure.
            reserved = 0
            layers = self.model.config.layers
            for seq in self.active:
                request = seq.request
                worst = worst_case_blocks(
                    len(request.prompt), request.max_new_tokens,
                    pool.block_size, layers,
                )
                allocated = sum(len(c.block_ids) for c in seq.caches)
                reserved += max(0, worst - allocated)
            free = max(0, free - reserved)
        return SchedulingContext(
            free_slots=self.max_batch_size - len(self.active),
            free_blocks=free,
            block_size=pool.block_size,
            layers=self.model.config.layers,
        )

    def _retire(self, seq: _Sequence) -> RequestResult:
        """Record a finished sequence and return its blocks to the pool."""
        result = seq.result()
        self.finished.append(result)
        self.model.free_caches(seq.caches)
        return result

    # ------------------------------------------------------------------
    def _admit(self) -> list[RequestResult]:
        """Prefill scheduler-selected waiting requests into free slots.

        The policy is re-consulted after every admission (pool headroom
        and slot counts change); ``None`` stops admission for this
        step. Returns requests that completed already at prefill (their
        first sampled token hit EOS or ``max_new_tokens == 1``).
        """
        done: list[RequestResult] = []
        while self.waiting and len(self.active) < self.max_batch_size:
            choice = self.scheduler.select(
                [request for request, _ in self.waiting],
                self._scheduling_context(),
            )
            if choice is None:
                break
            request, submitted = self.waiting.pop(choice)
            seq = _Sequence(request, self.model, submitted)
            started = time.perf_counter()
            try:
                logits = self.model.prefill(
                    np.array(request.prompt), seq.caches
                )
            except Exception:
                # Return the partially prefilled sequence's blocks so a
                # failed admission (e.g. pool exhaustion under FIFO)
                # doesn't leak pool capacity; the request itself is
                # dropped, active sequences stay resumable.
                self.model.free_caches(seq.caches)
                raise
            seq.prefill_ms = (time.perf_counter() - started) * 1e3
            self._prompt_tokens += len(request.prompt)
            seq.accept(seq.sample(logits[-1]))
            if seq.finish_reason is not None:
                done.append(self._retire(seq))
            else:
                self.active.append(seq)
        return done

    def step(self) -> list[RequestResult]:
        """Admit, run one batched decode step, retire finished sequences.

        Returns the requests that finished during this step — at the
        decode step or already at prefill.
        """
        done = self._admit()
        if not self.active:
            return done
        pool = self.model.kv_pool
        self._trace.append(
            StepTrace(
                step=len(self._trace),
                active=len(self.active),
                waiting=len(self.waiting),
                finished=len(self.finished),
                context_tokens=sum(
                    seq.caches[0].length for seq in self.active
                ),
                kv_blocks_used=pool.used_blocks,
                kv_blocks_free=pool.free_blocks,
            )
        )
        tokens = np.array([seq.last_token for seq in self.active])
        caches = [seq.caches for seq in self.active]
        try:
            logits = self.model.decode_batch(tokens, caches)
        except Exception:
            # A failed batched step leaves per-layer cache state
            # inconsistent across the batch; the sequences cannot be
            # resumed, so return their blocks instead of leaking them
            # from the model's shared pool.
            for seq in self.active:
                self.model.free_caches(seq.caches)
            self.active = []
            raise
        still_active: list[_Sequence] = []
        for seq, row in zip(self.active, logits):
            seq.decode_steps += 1
            seq.accept(seq.sample(row))
            if seq.finish_reason is not None:
                done.append(self._retire(seq))
            else:
                still_active.append(seq)
        self.active = still_active
        return done

    def run(self) -> tuple[list[RequestResult], EngineStats]:
        """Drive the engine until every submitted request completes."""
        started = time.perf_counter()
        while self.has_work:
            self.step()
        wall = time.perf_counter() - started
        results = list(self.finished)
        stats = EngineStats(
            requests=len(results),
            prompt_tokens=self._prompt_tokens,
            generated_tokens=sum(len(r.tokens) for r in results),
            # Only steps that actually ran a batched decode count; a
            # request finishing at prefill adds no decode step.
            decode_steps=len(self._trace),
            wall_s=wall,
            trace=list(self._trace),
        )
        return results, stats


__all__ = [
    "EngineStats",
    "Request",
    "RequestResult",
    "SamplingParams",
    "ServingEngine",
    "StepTrace",
]
