"""Continuous-batching serving engine over the numeric runtime.

Request lifecycle::

    submit() -> WAITING -> (admission) -> prefill -> ACTIVE
        -> batched decode steps (continuous batching) -> FINISHED
        -> KV blocks freed back to the shared pool

The scheduler admits waiting requests whenever a decode slot is free —
sequences join and leave the running batch *between steps*, they never
wait for a whole batch to drain (continuous batching, vLLM-style, at
numeric scale). *Which* waiting request is admitted is delegated to a
pluggable :class:`~repro.runtime.scheduler.SchedulerPolicy` (``fifo``
by default; ``sjf`` and ``memory-aware`` built in — the latter gates
admission on KV block-pool headroom so a bounded pool back-pressures
instead of failing mid-decode). Each decode step runs the model's
batched step: linear projections execute as one ``(B, hidden)`` mpGEMM
per projection on the registered kernel backend, attention runs per
sequence over its own incrementally extended paged KV cache. When a
request completes, its KV blocks return to the pool for reuse.

When a *bounded* pool cannot cover the next decode step's block needs
(boundary allocations plus copy-on-write clones), the engine
**preempts**: a pluggable
:class:`~repro.runtime.scheduler.PreemptionPolicy`
(``priority-remaining`` by default) ranks the active sequences, and
victims are evicted front-first until the step fits. A victim's
non-shared blocks return to the pool (shared blocks survive for their
other holders, full prompt blocks stay parked in the prefix index), and
its state collapses to a recompute-on-resume record — the request, its
generated tokens and its sampling RNG. Resumption re-prefills the
prompt through the prefix index (mostly block-table reconstruction
when the index is warm) and replays the generated tokens through the
decode path, rebuilding exactly the KV state the unpreempted run had —
preemption is output-transparent on the batch-invariant LUT backends.
Preempted requests resume ahead of new admissions. Per-request
preemption counts land in
:class:`RequestResult`, per-step preemption-queue depth and shared
block counts in :class:`StepTrace`, and event totals plus resume
latency in :class:`EngineStats`.

With :attr:`~repro.runtime.model.RuntimeConfig.prefill_chunk` set, the
engine runs **chunked prefill**: admission only creates the sequence,
and each step spends at most ``prefill_chunk`` prompt tokens across
the in-progress prompts (fair-share split, so a short prompt is never
stuck behind a long one) before the batched decode runs. A partially
prefilled sequence holds its blocks between steps and counts against
batch slots and reserved pool headroom; under pool pressure it can be
preempted mid-prefill (its blocks are released and it restarts from
token zero through the warm prefix index, ahead of new admissions).
The full prompt's prefix adoption happens before the first chunk, so
chunking adopts exactly what a monolithic prefill would — and because
every prefill row's numerics depend only on its absolute position
(never the chunk split), token streams with chunking on and off are
bit-identical on the LUT backends.

Every decode step also appends a :class:`StepTrace` record (occupancy,
queue depth, context tokens, pool usage) to the run's
:class:`EngineStats`, so occupancy percentiles and pool behavior are
observable after the fact instead of lost.

Sampling is greedy by default; ``top_k``/``temperature`` with a
per-request seed gives reproducible stochastic decoding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServingError
from repro.numerics import softmax
from repro.runtime.model import DecoderModel
from repro.runtime.scheduler import (
    PreemptionPolicy,
    SchedulerPolicy,
    SchedulingContext,
    get_preemption_policy,
    get_scheduler,
    worst_case_blocks,
)


@dataclass(frozen=True)
class SamplingParams:
    """How next tokens are drawn from the logits.

    ``top_k=None`` selects greedy argmax decoding; ``temperature`` then
    has no effect (argmax is invariant under positive scaling). With
    ``top_k`` set, sampling draws from the temperature-scaled softmax
    over the k highest logits, seeded per request for reproducibility.
    """

    top_k: int | None = None      # None => greedy argmax
    temperature: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.top_k is not None and self.top_k < 1:
            raise ServingError("top_k must be >= 1")
        if self.temperature <= 0:
            raise ServingError("temperature must be positive")


@dataclass(frozen=True)
class Request:
    """One inference request.

    ``priority`` feeds the preemption policy: when a bounded pool runs
    hot, lower-priority sequences are evicted first (default 0; higher
    values are safer from eviction).
    """

    request_id: str
    prompt: tuple[int, ...]
    max_new_tokens: int
    sampling: SamplingParams = SamplingParams()
    eos_token_id: int | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.prompt:
            raise ServingError(f"request {self.request_id}: empty prompt")
        if self.max_new_tokens < 1:
            raise ServingError(
                f"request {self.request_id}: max_new_tokens must be >= 1"
            )


@dataclass
class RequestResult:
    """Completion record returned for every finished request."""

    request_id: str
    prompt: tuple[int, ...]
    tokens: list[int]
    finish_reason: str            # "length" | "eos"
    prefill_ms: float
    first_token_ms: float         # submit -> first sampled token
    latency_ms: float             # submit -> completion
    decode_steps: int
    preemptions: int = 0          # times this request was evicted


@dataclass(frozen=True)
class StepTrace:
    """Snapshot of one batched decode step (taken at step entry).

    Attributes
    ----------
    step:
        0-based decode-step index within the run.
    active:
        Sequences in the decode batch this step (== occupancy).
    waiting:
        Requests still queued for admission.
    finished:
        Requests completed so far.
    context_tokens:
        Summed cached context length of the active sequences.
    kv_blocks_used:
        Blocks currently allocated from the shared pool (all sequences,
        all layers).
    kv_blocks_free:
        Blocks still allocatable; ``None`` when the pool is unbounded.
    preempted:
        Requests currently swapped out awaiting resumption.
    kv_blocks_shared:
        In-use blocks referenced by more than one block table (the
        prefix-sharing savings visible this step).
    prefilling:
        Sequences mid-way through a chunked prefill (holding blocks
        and a batch slot, not yet decoding). Always 0 without
        ``prefill_chunk``.
    """

    step: int
    active: int
    waiting: int
    finished: int
    context_tokens: int
    kv_blocks_used: int
    kv_blocks_free: int | None
    preempted: int = 0
    kv_blocks_shared: int = 0
    prefilling: int = 0


@dataclass
class EngineStats:
    """Aggregate throughput/latency statistics of one engine run."""

    requests: int
    prompt_tokens: int
    generated_tokens: int
    decode_steps: int
    wall_s: float
    #: Preemption relief-valve traffic: eviction events, completed
    #: resumptions, and total wall time spent in resume re-prefills.
    preemptions: int = 0
    resumes: int = 0
    resume_ms_total: float = 0.0
    #: Per-decode-step history — occupancy, queue depth, pool usage —
    #: so a finished run can be audited instead of reduced to means.
    trace: list[StepTrace] = field(default_factory=list)

    @property
    def batch_occupancy(self) -> list[int]:
        """Decode-batch size per step (derived from the trace)."""
        return [t.active for t in self.trace]

    @property
    def mean_batch(self) -> float:
        if not self.batch_occupancy:
            return 0.0
        return float(np.mean(self.batch_occupancy))

    def occupancy_percentile(self, q: float) -> float:
        """Batch-occupancy percentile over the run's decode steps."""
        if not self.batch_occupancy:
            return 0.0
        return float(np.percentile(self.batch_occupancy, q))

    @property
    def occupancy_p50(self) -> float:
        return self.occupancy_percentile(50)

    @property
    def occupancy_p95(self) -> float:
        return self.occupancy_percentile(95)

    @property
    def throughput_tok_s(self) -> float:
        return self.generated_tokens / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_resume_ms(self) -> float:
        """Mean re-prefill latency of one preemption resumption."""
        return self.resume_ms_total / self.resumes if self.resumes else 0.0

    @property
    def shared_block_ratio(self) -> float:
        """Fraction of in-use block observations that were shared
        (refcount > 1), aggregated over the decode-step trace."""
        used = sum(t.kv_blocks_used for t in self.trace)
        if used == 0:
            return 0.0
        return sum(t.kv_blocks_shared for t in self.trace) / used


class _Sequence:
    """Mutable in-flight state of one admitted request."""

    def __init__(
        self, request: Request, model: DecoderModel, submit_time: float
    ) -> None:
        self.request = request
        self.caches = model.new_caches()
        self.generated: list[int] = []
        self.rng = np.random.default_rng(request.sampling.seed)
        # Wall-clock origin of the latency fields: when the request was
        # *submitted*, so queue-wait time counts toward ttft/latency.
        self.submit_time = submit_time
        self.prefill_ms = 0.0
        #: Prompt tokens already prefilled (chunked prefill progress);
        #: equals ``len(request.prompt)`` once the sequence is active.
        self.prefill_pos = 0
        self.first_token_ms = 0.0
        self.decode_steps = 0
        self.preemptions = 0
        self.finish_reason: str | None = None

    @property
    def last_token(self) -> int:
        if self.generated:
            return self.generated[-1]
        return self.request.prompt[-1]

    @property
    def priority(self) -> int:
        """Request priority, exposed for preemption policies."""
        return self.request.priority

    @property
    def remaining_tokens(self) -> int:
        """Generation budget still outstanding."""
        return self.request.max_new_tokens - len(self.generated)

    @property
    def resume_tokens(self) -> tuple[int, ...]:
        """Token prefix a recompute-on-resume prefill must rebuild."""
        return self.request.prompt + tuple(self.generated)

    def sample(self, logits: np.ndarray) -> int:
        params = self.request.sampling
        if params.top_k is None:
            return int(np.argmax(logits))
        k = min(params.top_k, logits.size)
        top = np.argpartition(logits, -k)[-k:]
        probs = softmax(logits[top] / params.temperature)
        return int(self.rng.choice(top, p=probs))

    def accept(self, token: int, now: float | None = None) -> None:
        """Record a sampled token; *now* lets a batched caller stamp the
        whole step with one clock read instead of one per sequence."""
        if now is None:
            now = time.perf_counter()
        if not self.generated:
            self.first_token_ms = (now - self.submit_time) * 1e3
        self.generated.append(token)
        req = self.request
        if req.eos_token_id is not None and token == req.eos_token_id:
            self.finish_reason = "eos"
        elif len(self.generated) >= req.max_new_tokens:
            self.finish_reason = "length"

    def result(self) -> RequestResult:
        return RequestResult(
            request_id=self.request.request_id,
            prompt=self.request.prompt,
            tokens=list(self.generated),
            finish_reason=self.finish_reason or "length",
            prefill_ms=self.prefill_ms,
            first_token_ms=self.first_token_ms,
            latency_ms=(time.perf_counter() - self.submit_time) * 1e3,
            decode_steps=self.decode_steps,
            preemptions=self.preemptions,
        )


class ServingEngine:
    """Continuous-batching scheduler over a :class:`DecoderModel`.

    ``scheduler`` selects the admission policy: a name from
    :data:`~repro.runtime.scheduler.SCHEDULERS` (``"fifo"``, ``"sjf"``,
    ``"memory-aware"``) or any :class:`SchedulerPolicy` instance.
    ``preemption`` selects the eviction policy consulted when a bounded
    pool cannot cover the next decode step: a name from
    :data:`~repro.runtime.scheduler.PREEMPTION_POLICIES`
    (``"priority-remaining"``, ``"latest-first"``) or any
    :class:`PreemptionPolicy` instance.
    """

    def __init__(
        self,
        model: DecoderModel,
        max_batch_size: int = 8,
        scheduler: str | SchedulerPolicy = "fifo",
        preemption: str | PreemptionPolicy = "priority-remaining",
    ) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        self.model = model
        self.max_batch_size = max_batch_size
        self.scheduler = get_scheduler(scheduler)
        self.preemption = get_preemption_policy(preemption)
        #: (request, submit wall-clock time) pairs in arrival order; the
        #: scheduler policy picks which index is admitted next.
        self.waiting: list[tuple[Request, float]] = []
        self.active: list[_Sequence] = []
        #: Admitted sequences mid-way through a chunked prefill: they
        #: hold blocks and a batch slot and advance by at most
        #: ``prefill_chunk`` prompt tokens per step (empty unless the
        #: runtime sets ``prefill_chunk``).
        self.prefilling: list[_Sequence] = []
        #: Swapped-out sequences in eviction order (recompute-on-resume
        #: records: request, generated tokens, sampling RNG, timings).
        self.preempted: list[_Sequence] = []
        self.finished: list[RequestResult] = []
        self._trace: list[StepTrace] = []
        self._prompt_tokens = 0
        self._preemptions = 0
        self._resumes = 0
        self._resume_ms = 0.0
        self._ids: set[str] = set()

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue a request for admission."""
        limit = self.model.runtime.max_seq_len
        if len(request.prompt) + request.max_new_tokens > limit:
            raise ServingError(
                f"request {request.request_id}: prompt + max_new_tokens "
                f"({len(request.prompt)} + {request.max_new_tokens}) "
                f"exceeds max_seq_len {limit}"
            )
        pool = self.model.kv_pool
        if pool.num_blocks is not None:
            needed = worst_case_blocks(
                len(request.prompt), request.max_new_tokens,
                pool.block_size, self.model.config.layers,
            )
            # A prompt whose leading blocks are held by live sequences
            # never materializes them privately — discount them before
            # declaring the request unservable against its worst-case
            # footprint. Live-only: adopting a *parked* block would
            # re-occupy pool capacity, so counting it here would admit
            # requests that cannot fit even into an empty pool.
            shareable = self.model.shareable_blocks(
                request.prompt, live_only=True
            )
            if needed - shareable > pool.num_blocks:
                raise ServingError(
                    f"request {request.request_id}: needs {needed} KV "
                    f"blocks at full length ({shareable} shareable), "
                    f"pool holds {pool.num_blocks}"
                )
        if request.request_id in self._ids:
            raise ServingError(
                f"duplicate request id {request.request_id!r}"
            )
        self._ids.add(request.request_id)
        self.waiting.append((request, time.perf_counter()))

    @property
    def has_work(self) -> bool:
        return bool(
            self.waiting or self.active or self.prefilling
            or self.preempted
        )

    def _scheduling_context(self) -> SchedulingContext:
        pool = self.model.kv_pool
        free = pool.free_blocks
        if free is not None:
            # Report *unreserved* headroom: blocks the pool still owes
            # already-admitted sequences at their worst-case length
            # (prompt + max_new_tokens) are spoken for, even though
            # they are not allocated yet. Without this, admitting into
            # the interim gap lets an active sequence exhaust the pool
            # at its next block boundary — mid-decode, where it is a
            # hard error instead of back-pressure. A shared partial
            # trailing block carries one extra reserved block per
            # layer: its first append clones it (copy-on-write) while
            # the original stays with its other holders.
            # Mid-prefill sequences reserve like active ones: their
            # partial footprint is already allocated and the rest of
            # their worst case is still owed.
            reserved = 0
            layers = self.model.config.layers
            for seq in self.active + self.prefilling:
                request = seq.request
                worst = worst_case_blocks(
                    len(request.prompt), request.max_new_tokens,
                    pool.block_size, layers,
                )
                allocated = 0
                cow_debt = 0
                for cache in seq.caches:
                    allocated += len(cache.block_ids)
                    if (
                        cache.block_ids
                        and pool.refcount(cache.block_ids[-1]) > 1
                        and cache.length < cache.padded_context()
                    ):
                        cow_debt += 1
                reserved += max(0, worst - allocated) + cow_debt
            free = max(0, free - reserved)
        return SchedulingContext(
            free_slots=(
                self.max_batch_size - len(self.active)
                - len(self.prefilling)
            ),
            free_blocks=free,
            block_size=pool.block_size,
            layers=self.model.config.layers,
            live_shareable=lambda prompt: self.model.shareable_blocks(
                prompt, live_only=True
            ),
        )

    def _retire(self, seq: _Sequence) -> RequestResult:
        """Record a finished sequence and return its blocks to the pool."""
        result = seq.result()
        self.finished.append(result)
        self.model.free_caches(seq.caches)
        return result

    # ------------------------------------------------------------------
    def _preempt(self, seq: _Sequence) -> None:
        """Evict an active or mid-prefill sequence: release its block
        references and collapse it to a recompute-on-resume record.

        Shared blocks survive for their other holders; this sequence's
        full prompt blocks stay parked in the prefix index, so its own
        resumption re-prefill usually re-adopts them. A sequence
        evicted mid-prefill restarts its prompt from token zero on
        resumption (no decode state exists yet to replay).
        """
        self.model.free_caches(seq.caches)
        seq.caches = []
        seq.prefill_pos = 0
        seq.preemptions += 1
        self._preemptions += 1
        if seq in self.active:
            self.active.remove(seq)
        else:
            self.prefilling.remove(seq)
        self.preempted.append(seq)

    def _requeue_prefill(self, seq: _Sequence) -> None:
        """Re-admit a sequence that was preempted mid-prefill.

        Nothing was generated yet, so there is no decode state to
        replay — the sequence rejoins the chunked-prefill queue from
        token zero (recompute-on-resume for the prompt; a warm prefix
        index usually turns the recompute back into block-table
        adoption).
        """
        seq.caches = []
        seq.prefill_pos = 0
        self.prefilling.append(seq)
        self._resumes += 1

    def _can_resume(self, seq: _Sequence) -> bool:
        """Does the pool's unreserved headroom cover a resumption?

        The resumed sequence's worst case is its full original
        footprint (``prompt + generated`` rebuilt now, the rest of the
        generation later), minus the full blocks *live* holders are
        already keeping in the pool — parked cached-free matches do
        not count: adopting one costs the same headroom as a fresh
        allocation.
        """
        context = self._scheduling_context()
        if context.free_blocks is None:
            return True
        tokens = seq.resume_tokens
        needed = worst_case_blocks(
            len(tokens), seq.remaining_tokens,
            context.block_size, context.layers,
        )
        shareable = self.model.shareable_blocks(tokens, live_only=True)
        return needed - shareable <= context.free_blocks

    def _resume(self, seq: _Sequence) -> RequestResult | None:
        """Re-admit a preempted sequence by recompute-on-resume.

        The prompt is re-prefilled through the prefix index (adopting
        any still-indexed blocks — mostly block-table reconstruction
        for a warm index), then the already-generated tokens are
        **replayed through the decode path**. Replaying rebuilds
        exactly the KV state the unpreempted run had — decode-path
        attention (quantized when ``kv_bits`` is set) writes the same
        rows it wrote the first time — so the next token is sampled
        from the same logits the eviction interrupted and preemption
        is output-transparent (bit-for-bit on the batch-invariant LUT
        backends; the reference backend's BLAS is batch-shape
        sensitive at the ulp level). Returns the completion record if
        that token finished the request, else ``None``.
        """
        seq.caches = self.model.new_caches()
        started = time.perf_counter()
        try:
            self.model.prefill(np.array(seq.request.prompt), seq.caches)
            # Replay: the first generated token was sampled at prefill,
            # so every generated token is a decode-step *input*; the
            # last replay step yields the logits the preemption
            # interrupted.
            for token in seq.generated[:-1]:
                self.model.decode_step(token, seq.caches)
            logits = self.model.decode_step(seq.generated[-1], seq.caches)
        except Exception:
            # A failed resume (true pool exhaustion) must not leak the
            # partially rebuilt blocks.
            self.model.free_caches(seq.caches)
            raise
        self._resume_ms += (time.perf_counter() - started) * 1e3
        self._resumes += 1
        seq.accept(seq.sample(logits))
        if seq.finish_reason is not None:
            return self._retire(seq)
        self.active.append(seq)
        return None

    def _step_block_need(self, seq: _Sequence) -> int:
        """Pool blocks the next decode step must allocate for *seq*:
        one per layer at a block boundary, one per layer whose shared
        trailing block will be copy-on-written."""
        pool = self.model.kv_pool
        need = 0
        for cache in seq.caches:
            if cache.length == cache.padded_context():
                need += 1
            elif (
                cache.block_ids
                and pool.refcount(cache.block_ids[-1]) > 1
            ):
                need += 1
        return need

    # ------------------------------------------------------------------
    def _admit(self) -> list[RequestResult]:
        """Resume preempted sequences, then admit scheduler-selected
        waiting requests into free slots (monolithic prefill inline;
        with ``prefill_chunk`` set, admission only queues the sequence
        for budgeted chunked prefill and sequences preempted
        mid-prefill rejoin that queue).

        Preempted requests hold completed work, so they re-enter ahead
        of new admissions whenever the pool's unreserved headroom
        covers them. The admission policy is re-consulted after every
        admission (pool headroom and slot counts change); ``None``
        stops admission for this step. If nothing is active afterwards
        but preempted work remains, the head resumption is forced —
        the progress guarantee that turns PR 4's stall into forward
        motion (a truly unservable resumption raises instead of
        spinning). Returns requests that completed already at prefill
        or at resumption.
        """
        done: list[RequestResult] = []
        chunked = self.model.runtime.prefill_chunk is not None

        def occupied() -> int:
            return len(self.active) + len(self.prefilling)

        while self.preempted and occupied() < self.max_batch_size:
            if not self._can_resume(self.preempted[0]):
                break
            head = self.preempted.pop(0)
            if head.generated:
                result = self._resume(head)
                if result is not None:
                    done.append(result)
            else:
                # Preempted mid-prefill: no decode state to replay —
                # rejoin the chunked-prefill queue from token zero.
                self._requeue_prefill(head)
        while self.waiting and occupied() < self.max_batch_size:
            choice = self.scheduler.select(
                [request for request, _ in self.waiting],
                self._scheduling_context(),
            )
            if choice is None:
                break
            request, submitted = self.waiting.pop(choice)
            seq = _Sequence(request, self.model, submitted)
            if chunked:
                # Chunked prefill: admission only claims the slot; the
                # prompt is processed by _prefill_step under the
                # per-step token budget, interleaved with decodes.
                self.prefilling.append(seq)
                continue
            started = time.perf_counter()
            try:
                logits = self.model.prefill(
                    np.array(request.prompt), seq.caches
                )
            except Exception:
                # Return the partially prefilled sequence's blocks so a
                # failed admission (e.g. pool exhaustion under FIFO)
                # doesn't leak pool capacity; the request itself is
                # dropped, active sequences stay resumable.
                self.model.free_caches(seq.caches)
                raise
            seq.prefill_ms = (time.perf_counter() - started) * 1e3
            seq.prefill_pos = len(request.prompt)
            self._prompt_tokens += len(request.prompt)
            seq.accept(seq.sample(logits[-1]))
            if seq.finish_reason is not None:
                done.append(self._retire(seq))
            else:
                self.active.append(seq)
        if not self.active and not self.prefilling and self.preempted:
            head = self.preempted.pop(0)
            if head.generated:
                result = self._resume(head)
                if result is not None:
                    done.append(result)
            else:
                self._requeue_prefill(head)
        if (
            self.waiting and not self.active and not self.prefilling
            and not self.preempted
        ):
            # Nothing is in flight, so no future step can free blocks
            # or change a slot count — if the policy still declines the
            # queue, it declines it forever. Surface the deadlock
            # instead of letting run() spin (reachable when a request
            # admitted through the sharing discount outlives its
            # donors).
            head = self.waiting[0][0]
            raise ServingError(
                f"admission deadlock: {len(self.waiting)} waiting "
                f"request(s), nothing active, and the {self.scheduler.name!r}"
                f" policy declines the head ({head.request_id!r}); the "
                "pool can never satisfy it"
            )
        return done

    def _prefill_chunk(
        self, seq: _Sequence, budget: int
    ) -> tuple[RequestResult | None, int]:
        """Advance one mid-prefill sequence by at most *budget* prompt
        tokens; returns ``(completion, tokens_spent)``.

        The first chunk is preceded by whole-prompt prefix adoption
        (:meth:`DecoderModel.adopt_prompt_prefix`), so chunking adopts
        exactly what a monolithic prefill would. When the final chunk
        lands, the first token is sampled and the sequence joins the
        active batch (or retires if one token was all it needed). On
        pool exhaustion mid-chunk the sequence self-preempts — its
        blocks are released and it restarts later — unless it is the
        only sequence holding anything, in which case the exhaustion is
        genuine and re-raised.
        """
        prompt = seq.request.prompt
        model = self.model
        started = time.perf_counter()
        try:
            if not seq.caches:
                seq.caches = model.new_caches()
            if seq.prefill_pos == 0:
                seq.prefill_pos = model.adopt_prompt_prefix(
                    np.array(prompt), seq.caches
                )
            take = min(budget, len(prompt) - seq.prefill_pos)
            logits = model.prefill(
                np.array(prompt[seq.prefill_pos:seq.prefill_pos + take]),
                seq.caches,
            )
        except ServingError:
            # Pool exhaustion mid-chunk. If any other sequence holds
            # blocks, theirs will drain — self-preempt and retry later;
            # alone, nothing can ever free the shortfall: re-raise.
            if self.active or len(self.prefilling) > 1:
                self._preempt(seq)
                return None, 0
            self.model.free_caches(seq.caches)
            self.prefilling.remove(seq)
            raise
        seq.prefill_ms += (time.perf_counter() - started) * 1e3
        seq.prefill_pos += take
        if seq.prefill_pos < len(prompt):
            return None, take
        self.prefilling.remove(seq)
        self._prompt_tokens += len(prompt)
        seq.accept(seq.sample(logits[-1]))
        if seq.finish_reason is not None:
            return self._retire(seq), take
        self.active.append(seq)
        return None, take

    def _prefill_step(self) -> list[RequestResult]:
        """Spend this step's ``prefill_chunk`` token budget across the
        in-progress prompts (chunked prefill).

        The budget is split fair-share over the prefilling queue —
        ``max(1, remaining // needy)`` tokens each, re-divided until
        the budget is spent or every prompt is done — so one long
        prompt cannot monopolize the step while short prompts wait
        (head-of-line TTFT). Sequences whose final chunk lands join
        the active batch immediately and decode in this same step.
        """
        done: list[RequestResult] = []
        budget = self.model.runtime.prefill_chunk
        if budget is None or not self.prefilling:
            return done
        remaining = budget
        while remaining > 0 and self.prefilling:
            queue = list(self.prefilling)
            progressed = False
            share = max(1, remaining // len(queue))
            for seq in queue:
                if remaining <= 0:
                    break
                result, spent = self._prefill_chunk(
                    seq, min(share, remaining)
                )
                remaining -= spent
                if spent:
                    progressed = True
                if result is not None:
                    done.append(result)
            if not progressed:
                break
        return done

    def step(self) -> list[RequestResult]:
        """Admit, run one batched decode step, retire finished sequences.

        Before the decode, a bounded pool is checked against the
        step's block needs (boundary allocations + copy-on-write
        clones); if they do not fit, the preemption policy's victims
        are evicted until they do. Returns the requests that finished
        during this step — at the decode step, at prefill, or at a
        resumption.
        """
        done = self._admit()
        done.extend(self._prefill_step())
        if not self.active:
            return done
        pool = self.model.kv_pool
        if pool.num_blocks is not None:
            # Relief valve: preempt until this step's allocations fit.
            # Block-holding mid-prefill sequences go first (latest
            # first — they lose the least completed work and re-adopt
            # most of it through the prefix index); then the preemption
            # policy ranks the active batch. A single remaining active
            # sequence is never preempted — evicting it cannot create
            # headroom its own resumption wouldn't need again, so a
            # genuine exhaustion surfaces in the decode as before.
            while True:
                needed = sum(
                    self._step_block_need(seq) for seq in self.active
                )
                if needed <= pool.free_blocks:
                    break
                holders = [
                    seq for seq in self.prefilling
                    if any(c.block_ids for c in seq.caches)
                ]
                if holders:
                    self._preempt(holders[-1])
                    continue
                if len(self.active) <= 1:
                    break
                order = self.preemption.select_victims(
                    self.active, self._scheduling_context()
                )
                if not order:
                    break
                self._preempt(self.active[order[0]])
        self._trace.append(
            StepTrace(
                step=len(self._trace),
                active=len(self.active),
                waiting=len(self.waiting),
                finished=len(self.finished),
                context_tokens=sum(
                    seq.caches[0].length for seq in self.active
                ),
                kv_blocks_used=pool.used_blocks,
                kv_blocks_free=pool.free_blocks,
                preempted=len(self.preempted),
                kv_blocks_shared=pool.shared_in_use,
                prefilling=len(self.prefilling),
            )
        )
        tokens = np.array([seq.last_token for seq in self.active])
        caches = [seq.caches for seq in self.active]
        try:
            logits = self.model.decode_batch(tokens, caches)
        except Exception:
            # A failed batched step leaves per-layer cache state
            # inconsistent across the batch; the sequences cannot be
            # resumed, so return their blocks instead of leaking them
            # from the model's shared pool.
            for seq in self.active:
                self.model.free_caches(seq.caches)
            self.active = []
            raise
        # Vectorized accept/trace accounting: one argmax over the whole
        # logits batch (greedy sequences read their row of it — equal to
        # per-row argmax) and one wall-clock read for every acceptance.
        still_active: list[_Sequence] = []
        greedy = np.argmax(logits, axis=1)
        now = time.perf_counter()
        for i, seq in enumerate(self.active):
            seq.decode_steps += 1
            if seq.request.sampling.top_k is None:
                token = int(greedy[i])
            else:
                token = seq.sample(logits[i])
            seq.accept(token, now=now)
            if seq.finish_reason is not None:
                done.append(self._retire(seq))
            else:
                still_active.append(seq)
        self.active = still_active
        return done

    def run(self) -> tuple[list[RequestResult], EngineStats]:
        """Drive the engine until every submitted request completes."""
        started = time.perf_counter()
        while self.has_work:
            self.step()
        wall = time.perf_counter() - started
        results = list(self.finished)
        stats = EngineStats(
            requests=len(results),
            prompt_tokens=self._prompt_tokens,
            generated_tokens=sum(len(r.tokens) for r in results),
            # Only steps that actually ran a batched decode count; a
            # request finishing at prefill adds no decode step.
            decode_steps=len(self._trace),
            wall_s=wall,
            preemptions=self._preemptions,
            resumes=self._resumes,
            resume_ms_total=self._resume_ms,
            trace=list(self._trace),
        )
        return results, stats


__all__ = [
    "EngineStats",
    "Request",
    "RequestResult",
    "SamplingParams",
    "ServingEngine",
    "StepTrace",
]
