"""Continuous-batching serving engine over the numeric runtime.

Request lifecycle::

    submit() -> WAITING -> (admission) -> prefill -> ACTIVE
        -> batched decode steps (continuous batching) -> FINISHED

The scheduler admits waiting requests whenever a decode slot is free —
sequences join and leave the running batch *between steps*, they never
wait for a whole batch to drain (continuous batching, vLLM-style, at
numeric scale). Each decode step runs the model's batched step: linear
projections execute as one ``(B, hidden)`` mpGEMM per projection on the
registered kernel backend, attention runs per sequence over its own
incrementally extended KV cache.

Sampling is greedy by default; ``top_k``/``temperature`` with a
per-request seed gives reproducible stochastic decoding.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServingError
from repro.numerics import softmax
from repro.runtime.model import DecoderModel


@dataclass(frozen=True)
class SamplingParams:
    """How next tokens are drawn from the logits.

    ``top_k=None`` selects greedy argmax decoding; ``temperature`` then
    has no effect (argmax is invariant under positive scaling). With
    ``top_k`` set, sampling draws from the temperature-scaled softmax
    over the k highest logits, seeded per request for reproducibility.
    """

    top_k: int | None = None      # None => greedy argmax
    temperature: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.top_k is not None and self.top_k < 1:
            raise ServingError("top_k must be >= 1")
        if self.temperature <= 0:
            raise ServingError("temperature must be positive")


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: str
    prompt: tuple[int, ...]
    max_new_tokens: int
    sampling: SamplingParams = SamplingParams()
    eos_token_id: int | None = None

    def __post_init__(self) -> None:
        if not self.prompt:
            raise ServingError(f"request {self.request_id}: empty prompt")
        if self.max_new_tokens < 1:
            raise ServingError(
                f"request {self.request_id}: max_new_tokens must be >= 1"
            )


@dataclass
class RequestResult:
    """Completion record returned for every finished request."""

    request_id: str
    prompt: tuple[int, ...]
    tokens: list[int]
    finish_reason: str            # "length" | "eos"
    prefill_ms: float
    first_token_ms: float         # submit -> first sampled token
    latency_ms: float             # submit -> completion
    decode_steps: int


@dataclass
class EngineStats:
    """Aggregate throughput/latency statistics of one engine run."""

    requests: int
    prompt_tokens: int
    generated_tokens: int
    decode_steps: int
    wall_s: float
    batch_occupancy: list[int] = field(default_factory=list)

    @property
    def mean_batch(self) -> float:
        if not self.batch_occupancy:
            return 0.0
        return float(np.mean(self.batch_occupancy))

    @property
    def throughput_tok_s(self) -> float:
        return self.generated_tokens / self.wall_s if self.wall_s > 0 else 0.0


class _Sequence:
    """Mutable in-flight state of one admitted request."""

    def __init__(
        self, request: Request, model: DecoderModel, submit_time: float
    ) -> None:
        self.request = request
        self.caches = model.new_caches()
        self.generated: list[int] = []
        self.rng = np.random.default_rng(request.sampling.seed)
        # Wall-clock origin of the latency fields: when the request was
        # *submitted*, so queue-wait time counts toward ttft/latency.
        self.submit_time = submit_time
        self.prefill_ms = 0.0
        self.first_token_ms = 0.0
        self.decode_steps = 0
        self.finish_reason: str | None = None

    @property
    def last_token(self) -> int:
        if self.generated:
            return self.generated[-1]
        return self.request.prompt[-1]

    def sample(self, logits: np.ndarray) -> int:
        params = self.request.sampling
        if params.top_k is None:
            return int(np.argmax(logits))
        k = min(params.top_k, logits.size)
        top = np.argpartition(logits, -k)[-k:]
        probs = softmax(logits[top] / params.temperature)
        return int(self.rng.choice(top, p=probs))

    def accept(self, token: int) -> None:
        now = time.perf_counter()
        if not self.generated:
            self.first_token_ms = (now - self.submit_time) * 1e3
        self.generated.append(token)
        req = self.request
        if req.eos_token_id is not None and token == req.eos_token_id:
            self.finish_reason = "eos"
        elif len(self.generated) >= req.max_new_tokens:
            self.finish_reason = "length"

    def result(self) -> RequestResult:
        return RequestResult(
            request_id=self.request.request_id,
            prompt=self.request.prompt,
            tokens=list(self.generated),
            finish_reason=self.finish_reason or "length",
            prefill_ms=self.prefill_ms,
            first_token_ms=self.first_token_ms,
            latency_ms=(time.perf_counter() - self.submit_time) * 1e3,
            decode_steps=self.decode_steps,
        )


class ServingEngine:
    """Continuous-batching scheduler over a :class:`DecoderModel`."""

    def __init__(self, model: DecoderModel, max_batch_size: int = 8) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        self.model = model
        self.max_batch_size = max_batch_size
        #: (request, submit wall-clock time) pairs, FIFO.
        self.waiting: deque[tuple[Request, float]] = deque()
        self.active: list[_Sequence] = []
        self.finished: list[RequestResult] = []
        self._batch_occupancy: list[int] = []
        self._prompt_tokens = 0
        self._ids: set[str] = set()

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue a request for admission (FIFO)."""
        limit = self.model.runtime.max_seq_len
        if len(request.prompt) + request.max_new_tokens > limit:
            raise ServingError(
                f"request {request.request_id}: prompt + max_new_tokens "
                f"({len(request.prompt)} + {request.max_new_tokens}) "
                f"exceeds max_seq_len {limit}"
            )
        if request.request_id in self._ids:
            raise ServingError(
                f"duplicate request id {request.request_id!r}"
            )
        self._ids.add(request.request_id)
        self.waiting.append((request, time.perf_counter()))

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.active)

    # ------------------------------------------------------------------
    def _admit(self) -> list[RequestResult]:
        """Prefill waiting requests into free decode slots.

        Returns requests that completed already at prefill (their first
        sampled token hit EOS or ``max_new_tokens == 1``).
        """
        done: list[RequestResult] = []
        while self.waiting and len(self.active) < self.max_batch_size:
            request, submitted = self.waiting.popleft()
            seq = _Sequence(request, self.model, submitted)
            started = time.perf_counter()
            logits = self.model.prefill(
                np.array(request.prompt), seq.caches
            )
            seq.prefill_ms = (time.perf_counter() - started) * 1e3
            self._prompt_tokens += len(request.prompt)
            seq.accept(seq.sample(logits[-1]))
            if seq.finish_reason is not None:
                result = seq.result()
                self.finished.append(result)
                done.append(result)
            else:
                self.active.append(seq)
        return done

    def step(self) -> list[RequestResult]:
        """Admit, run one batched decode step, retire finished sequences.

        Returns the requests that finished during this step — at the
        decode step or already at prefill.
        """
        done = self._admit()
        if not self.active:
            return done
        self._batch_occupancy.append(len(self.active))
        tokens = np.array([seq.last_token for seq in self.active])
        caches = [seq.caches for seq in self.active]
        logits = self.model.decode_batch(tokens, caches)
        still_active: list[_Sequence] = []
        for seq, row in zip(self.active, logits):
            seq.decode_steps += 1
            seq.accept(seq.sample(row))
            if seq.finish_reason is not None:
                result = seq.result()
                self.finished.append(result)
                done.append(result)
            else:
                still_active.append(seq)
        self.active = still_active
        return done

    def run(self) -> tuple[list[RequestResult], EngineStats]:
        """Drive the engine until every submitted request completes."""
        started = time.perf_counter()
        while self.has_work:
            self.step()
        wall = time.perf_counter() - started
        results = list(self.finished)
        stats = EngineStats(
            requests=len(results),
            prompt_tokens=self._prompt_tokens,
            generated_tokens=sum(len(r.tokens) for r in results),
            # Only steps that actually ran a batched decode count; a
            # request finishing at prefill adds no decode step.
            decode_steps=len(self._batch_occupancy),
            wall_s=wall,
            batch_occupancy=list(self._batch_occupancy),
        )
        return results, stats


__all__ = [
    "EngineStats",
    "Request",
    "RequestResult",
    "SamplingParams",
    "ServingEngine",
]
