"""Continuous-batching serving engine over the numeric runtime.

Request lifecycle::

    submit() -> WAITING -> (admission) -> prefill -> ACTIVE
        -> batched decode steps (continuous batching) -> FINISHED
        -> KV blocks freed back to the shared pool

The scheduler admits waiting requests whenever a decode slot is free —
sequences join and leave the running batch *between steps*, they never
wait for a whole batch to drain (continuous batching, vLLM-style, at
numeric scale). *Which* waiting request is admitted is delegated to a
pluggable :class:`~repro.runtime.scheduler.SchedulerPolicy` (``fifo``
by default; ``sjf`` and ``memory-aware`` built in — the latter gates
admission on KV block-pool headroom so a bounded pool back-pressures
instead of failing mid-decode). Each decode step runs the model's
batched step: linear projections execute as one ``(B, hidden)`` mpGEMM
per projection on the registered kernel backend, attention runs per
sequence over its own incrementally extended paged KV cache. When a
request completes, its KV blocks return to the pool for reuse.

When a *bounded* pool cannot cover the next decode step's block needs
(boundary allocations plus copy-on-write clones), the engine
**preempts**: a pluggable
:class:`~repro.runtime.scheduler.PreemptionPolicy`
(``priority-remaining`` by default) ranks the active sequences, and
victims are evicted front-first until the step fits. A victim's
non-shared blocks return to the pool (shared blocks survive for their
other holders, full prompt blocks stay parked in the prefix index), and
its state collapses to a recompute-on-resume record — the request, its
generated tokens and its sampling RNG. Resumption re-prefills the
prompt through the prefix index (mostly block-table reconstruction
when the index is warm) and replays the generated tokens through the
decode path, rebuilding exactly the KV state the unpreempted run had —
preemption is output-transparent on the batch-invariant LUT backends.
Preempted requests resume ahead of new admissions.

With :attr:`~repro.runtime.model.RuntimeConfig.swap_threshold_tokens`
set, a victim whose cached context reaches the threshold is **swapped
to host** instead: eviction serializes its KV blocks (float slabs +
K codes + fill metadata, via
:meth:`~repro.runtime.paging.PagedLayerCache.serialize`) into a
host-side spill record, and resumption restores the blocks into the
pool — turning resume cost from O(context) model FLOPs into
O(context) memcpy plus one decode step. The restored slabs are the
evicted bits verbatim (frozen K plans and V caches rebuild lazily
from identical codes, the CoW guarantee), so swapped resumption is
just as output-transparent; a restore the pool cannot hold right now
falls back to recompute-on-resume, which can adopt shared blocks
instead of allocating. Swap traffic lands in
:attr:`EngineStats.swaps` / :attr:`EngineStats.swap_resumes` /
:attr:`EngineStats.swap_bytes`. Per-request
preemption counts land in
:class:`RequestResult`, per-step preemption-queue depth and shared
block counts in :class:`StepTrace`, and event totals plus resume
latency in :class:`EngineStats`.

With :attr:`~repro.runtime.model.RuntimeConfig.prefill_chunk` set, the
engine runs **chunked prefill**: admission only creates the sequence,
and each step spends at most ``prefill_chunk`` prompt tokens across
the in-progress prompts (fair-share split, so a short prompt is never
stuck behind a long one) before the batched decode runs. A partially
prefilled sequence holds its blocks between steps and counts against
batch slots and reserved pool headroom; under pool pressure it can be
preempted mid-prefill (its blocks are released and it restarts from
token zero through the warm prefix index, ahead of new admissions).
The full prompt's prefix adoption happens before the first chunk, so
chunking adopts exactly what a monolithic prefill would — and because
every prefill row's numerics depend only on its absolute position
(never the chunk split), token streams with chunking on and off are
bit-identical on the LUT backends.

Every decode step also appends a :class:`StepTrace` record (occupancy,
queue depth, context tokens, pool usage) to the run's
:class:`EngineStats`, so occupancy percentiles and pool behavior are
observable after the fact instead of lost.

With :attr:`~repro.runtime.model.RuntimeConfig.speculative` set, the
engine runs **output-identical speculative decoding**: a configurable
smaller draft model greedily proposes ``k`` tokens per live sequence,
the target scores all ``k + 1`` candidate rows in one batched
:meth:`~repro.runtime.model.DecoderModel.verify_batch` pass (each row
bit-identical to the sequential decode step at that position on the
LUT backends), and acceptance keeps the longest prefix of rows whose
sampled token matches the next candidate — plus that step's one bonus
token. Rejected rows are rolled back with
:meth:`~repro.runtime.paging.PagedLayerCache.truncate_rows`, which
restores the shared pool bit-for-bit, so the token stream equals the
non-speculative stream exactly; only the step count shrinks. A step
that cannot afford speculation (bounded-pool pressure on the transient
``k + 1``-row append, or no positional headroom) silently falls back
to a plain decode step, and preemption simply drops the draft's
private KV (rebuilt by a catch-up prefill on resume). Per-step
``drafted``/``accepted`` counts land in :class:`StepTrace`;
:attr:`EngineStats.acceptance_rate` and
:attr:`EngineStats.mean_tokens_per_step` summarize the run.

Sampling is greedy by default; ``top_k``/``temperature`` with a
per-request seed gives reproducible stochastic decoding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ServingError
from repro.models.configs import ModelConfig
from repro.numerics import softmax
from repro.runtime.model import DecoderModel, SpeculativeConfig
from repro.runtime.paging import PagedLayerCache, spill_nbytes
from repro.runtime.scheduler import (
    PreemptionPolicy,
    SchedulerPolicy,
    SchedulingContext,
    SloSpec,
    WaitingRequest,
    get_preemption_policy,
    get_scheduler,
    resume_blocks_needed,
    worst_case_blocks,
)
from repro.runtime.stats import percentiles


@dataclass(frozen=True)
class SamplingParams:
    """How next tokens are drawn from the logits.

    ``top_k=None`` selects greedy argmax decoding; ``temperature`` then
    has no effect (argmax is invariant under positive scaling). With
    ``top_k`` set, sampling draws from the temperature-scaled softmax
    over the k highest logits, seeded per request for reproducibility.
    """

    top_k: int | None = None      # None => greedy argmax
    temperature: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.top_k is not None and self.top_k < 1:
            raise ServingError("top_k must be >= 1")
        if self.temperature <= 0:
            raise ServingError("temperature must be positive")

    def to_dict(self) -> dict:
        """JSON-ready form; :meth:`from_dict` round-trips it exactly."""
        return {
            "top_k": self.top_k,
            "temperature": self.temperature,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SamplingParams":
        return cls(
            top_k=data.get("top_k"),
            temperature=float(data.get("temperature", 1.0)),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class Request:
    """One inference request.

    ``priority`` feeds the preemption policy: when a bounded pool runs
    hot, lower-priority sequences are evicted first (default 0; higher
    values are safer from eviction). ``slo`` optionally attaches
    latency budgets (:class:`~repro.runtime.scheduler.SloSpec`):
    deadline-aware policies order admission/eviction by them, and SLO
    evaluation counts the request's tokens toward goodput only when
    both budgets are met. A request without one is best-effort.
    """

    request_id: str
    prompt: tuple[int, ...]
    max_new_tokens: int
    sampling: SamplingParams = SamplingParams()
    eos_token_id: int | None = None
    priority: int = 0
    slo: SloSpec | None = None

    def __post_init__(self) -> None:
        if not self.prompt:
            raise ServingError(f"request {self.request_id}: empty prompt")
        if self.max_new_tokens < 1:
            raise ServingError(
                f"request {self.request_id}: max_new_tokens must be >= 1"
            )

    def to_dict(self) -> dict:
        """JSON-ready form — the wire format requests cross the
        router/worker seam in; :meth:`from_dict` round-trips it."""
        return {
            "request_id": self.request_id,
            "prompt": [int(t) for t in self.prompt],
            "max_new_tokens": self.max_new_tokens,
            "sampling": self.sampling.to_dict(),
            "eos_token_id": self.eos_token_id,
            "priority": self.priority,
            "slo": None if self.slo is None else self.slo.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Request":
        slo = data.get("slo")
        return cls(
            request_id=data["request_id"],
            prompt=tuple(int(t) for t in data["prompt"]),
            max_new_tokens=int(data["max_new_tokens"]),
            sampling=SamplingParams.from_dict(data.get("sampling", {})),
            eos_token_id=data.get("eos_token_id"),
            priority=int(data.get("priority", 0)),
            slo=None if slo is None else SloSpec.from_dict(slo),
        )


@dataclass
class RequestResult:
    """Completion record returned for every finished request."""

    request_id: str
    prompt: tuple[int, ...]
    tokens: list[int]
    finish_reason: str            # "length" | "eos"
    prefill_ms: float
    first_token_ms: float         # submit -> first sampled token
    latency_ms: float             # submit -> completion
    decode_steps: int
    preemptions: int = 0          # times this request was evicted
    #: Mean time-per-output-token after the first (0.0 for one-token
    #: completions): (last token - first token) / (tokens - 1).
    tpot_ms: float = 0.0
    #: Draft tokens this request accepted across its speculative steps
    #: (excluding each step's guaranteed bonus token); 0 when the
    #: engine runs without speculative decoding.
    spec_accepted: int = 0

    def to_dict(self) -> dict:
        """JSON-ready form — crosses the worker seam and persists from
        bench runs; :meth:`from_dict` round-trips it exactly."""
        return {
            "request_id": self.request_id,
            "prompt": [int(t) for t in self.prompt],
            "tokens": [int(t) for t in self.tokens],
            "finish_reason": self.finish_reason,
            "prefill_ms": self.prefill_ms,
            "first_token_ms": self.first_token_ms,
            "latency_ms": self.latency_ms,
            "decode_steps": self.decode_steps,
            "preemptions": self.preemptions,
            "tpot_ms": self.tpot_ms,
            "spec_accepted": self.spec_accepted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RequestResult":
        return cls(
            request_id=data["request_id"],
            prompt=tuple(int(t) for t in data["prompt"]),
            tokens=[int(t) for t in data["tokens"]],
            finish_reason=data["finish_reason"],
            prefill_ms=float(data["prefill_ms"]),
            first_token_ms=float(data["first_token_ms"]),
            latency_ms=float(data["latency_ms"]),
            decode_steps=int(data["decode_steps"]),
            preemptions=int(data.get("preemptions", 0)),
            tpot_ms=float(data.get("tpot_ms", 0.0)),
            spec_accepted=int(data.get("spec_accepted", 0)),
        )


@dataclass(frozen=True)
class StepTrace:
    """Snapshot of one batched decode step (taken at step entry).

    Attributes
    ----------
    step:
        0-based decode-step index within the run.
    active:
        Sequences in the decode batch this step (== occupancy).
    waiting:
        Requests still queued for admission.
    finished:
        Requests completed so far.
    context_tokens:
        Summed cached context length of the active sequences.
    kv_blocks_used:
        Blocks currently allocated from the shared pool (all sequences,
        all layers).
    kv_blocks_free:
        Blocks still allocatable; ``None`` when the pool is unbounded.
    preempted:
        Requests currently swapped out awaiting resumption.
    kv_blocks_shared:
        In-use blocks referenced by more than one block table (the
        prefix-sharing savings visible this step).
    prefilling:
        Sequences mid-way through a chunked prefill (holding blocks
        and a batch slot, not yet decoding). Always 0 without
        ``prefill_chunk``.
    drafted:
        Draft tokens proposed this step (``batch * k`` on a
        speculative step, 0 on a plain decode or when speculation is
        off).
    accepted:
        Draft tokens the verify pass accepted this step (excluding
        each sequence's guaranteed bonus token), so
        ``accepted / drafted`` is the step's acceptance rate.
    """

    step: int
    active: int
    waiting: int
    finished: int
    context_tokens: int
    kv_blocks_used: int
    kv_blocks_free: int | None
    preempted: int = 0
    kv_blocks_shared: int = 0
    prefilling: int = 0
    drafted: int = 0
    accepted: int = 0


@dataclass
class EngineStats:
    """Aggregate throughput/latency statistics of one engine run."""

    requests: int
    prompt_tokens: int
    generated_tokens: int
    decode_steps: int
    wall_s: float
    #: Preemption relief-valve traffic: eviction events, completed
    #: resumptions, and total wall time spent in resume re-prefills.
    preemptions: int = 0
    resumes: int = 0
    resume_ms_total: float = 0.0
    #: Swap-to-host traffic: preemptions that spilled their KV blocks,
    #: resumptions served by restoring a spill (the rest recomputed),
    #: and total bytes serialized to the spill store.
    swaps: int = 0
    swap_resumes: int = 0
    swap_bytes: int = 0
    #: Per-request time-per-output-token percentiles (ms), over the
    #: requests that generated more than one token.
    tpot_p50: float = 0.0
    tpot_p95: float = 0.0
    tpot_p99: float = 0.0
    #: Per-request time-to-first-token percentiles (ms), over every
    #: completed request (submit -> first sampled token, queue wait
    #: included).
    ttft_p50: float = 0.0
    ttft_p95: float = 0.0
    ttft_p99: float = 0.0
    #: Per-decode-step history — occupancy, queue depth, pool usage —
    #: so a finished run can be audited instead of reduced to means.
    trace: list[StepTrace] = field(default_factory=list)

    @property
    def batch_occupancy(self) -> list[int]:
        """Decode-batch size per step (derived from the trace)."""
        return [t.active for t in self.trace]

    @property
    def mean_batch(self) -> float:
        if not self.batch_occupancy:
            return 0.0
        return float(np.mean(self.batch_occupancy))

    def occupancy_percentile(self, q: float) -> float:
        """Batch-occupancy percentile over the run's decode steps."""
        return percentiles(self.batch_occupancy, (q,))[0]

    @property
    def occupancy_p50(self) -> float:
        return self.occupancy_percentile(50)

    @property
    def occupancy_p95(self) -> float:
        return self.occupancy_percentile(95)

    @property
    def throughput_tok_s(self) -> float:
        return self.generated_tokens / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def mean_resume_ms(self) -> float:
        """Mean re-prefill latency of one preemption resumption."""
        return self.resume_ms_total / self.resumes if self.resumes else 0.0

    @property
    def acceptance_rate(self) -> float:
        """Accepted fraction of all drafted tokens over the run (0.0
        when nothing was drafted — speculation off or never viable)."""
        drafted = sum(t.drafted for t in self.trace)
        if drafted == 0:
            return 0.0
        return sum(t.accepted for t in self.trace) / drafted

    @property
    def mean_tokens_per_step(self) -> float:
        """Generated tokens per batched step — above 1.0 per sequence
        only when speculative verification lands multi-token steps
        (includes prefill-sampled first tokens in the numerator)."""
        if self.decode_steps == 0:
            return 0.0
        return self.generated_tokens / self.decode_steps

    @property
    def shared_block_ratio(self) -> float:
        """Fraction of in-use block observations that were shared
        (refcount > 1), aggregated over the decode-step trace."""
        used = sum(t.kv_blocks_used for t in self.trace)
        if used == 0:
            return 0.0
        return sum(t.kv_blocks_shared for t in self.trace) / used


class _Sequence:
    """Mutable in-flight state of one admitted request."""

    def __init__(
        self, request: Request, model: DecoderModel, submit_time: float
    ) -> None:
        self.request = request
        self.caches = model.new_caches()
        self.generated: list[int] = []
        self.rng = np.random.default_rng(request.sampling.seed)
        # Wall-clock origin of the latency fields: when the request was
        # *submitted*, so queue-wait time counts toward ttft/latency.
        self.submit_time = submit_time
        self.prefill_ms = 0.0
        #: Prompt tokens already prefilled (chunked prefill progress);
        #: equals ``len(request.prompt)`` once the sequence is active.
        self.prefill_pos = 0
        self.first_token_ms = 0.0
        self.decode_steps = 0
        self.preemptions = 0
        self.finish_reason: str | None = None
        #: Draft-model block tables (speculative decoding only). Built
        #: lazily by the engine's draft catch-up, freed on preemption
        #: (the draft KV is recomputed on resume) and at retirement.
        self.draft_caches: list | None = None
        self.spec_accepted = 0
        #: Serialized KV blocks captured at preemption when the context
        #: cleared ``swap_threshold_tokens`` — one payload per layer
        #: cache. ``None`` means recompute-on-resume.
        self.swap_record: list[dict] | None = None
        #: Wall-clock stamp of the most recent accepted token, so TPOT
        #: measures first-token -> last-token without re-reading the
        #: clock at retirement.
        self.last_token_time = submit_time

    @property
    def last_token(self) -> int:
        if self.generated:
            return self.generated[-1]
        return self.request.prompt[-1]

    @property
    def priority(self) -> int:
        """Request priority, exposed for preemption policies."""
        return self.request.priority

    @property
    def remaining_tokens(self) -> int:
        """Generation budget still outstanding."""
        return self.request.max_new_tokens - len(self.generated)

    @property
    def observed_tpot_ms(self) -> float:
        """Live mean time-per-output-token after the first (ms); 0.0
        until a second token exists. Feeds deadline-slack estimates."""
        n = len(self.generated)
        if n < 2:
            return 0.0
        generated_ms = (
            (self.last_token_time - self.submit_time) * 1e3
            - self.first_token_ms
        )
        return max(0.0, generated_ms) / (n - 1)

    @property
    def resume_tokens(self) -> tuple[int, ...]:
        """Token prefix a recompute-on-resume prefill must rebuild."""
        return self.request.prompt + tuple(self.generated)

    def sample(self, logits: np.ndarray) -> int:
        params = self.request.sampling
        if params.top_k is None:
            return int(np.argmax(logits))
        k = min(params.top_k, logits.size)
        top = np.argpartition(logits, -k)[-k:]
        probs = softmax(logits[top] / params.temperature)
        return int(self.rng.choice(top, p=probs))

    def accept(self, token: int, now: float | None = None) -> None:
        """Record a sampled token; *now* lets a batched caller stamp the
        whole step with one clock read instead of one per sequence."""
        if now is None:
            now = time.perf_counter()
        if not self.generated:
            self.first_token_ms = (now - self.submit_time) * 1e3
        self.last_token_time = now
        self.generated.append(token)
        req = self.request
        if req.eos_token_id is not None and token == req.eos_token_id:
            self.finish_reason = "eos"
        elif len(self.generated) >= req.max_new_tokens:
            self.finish_reason = "length"

    def result(self) -> RequestResult:
        n = len(self.generated)
        generated_ms = (
            (self.last_token_time - self.submit_time) * 1e3
            - self.first_token_ms
        )
        return RequestResult(
            request_id=self.request.request_id,
            prompt=self.request.prompt,
            tokens=list(self.generated),
            finish_reason=self.finish_reason or "length",
            prefill_ms=self.prefill_ms,
            first_token_ms=self.first_token_ms,
            latency_ms=(time.perf_counter() - self.submit_time) * 1e3,
            decode_steps=self.decode_steps,
            preemptions=self.preemptions,
            tpot_ms=max(0.0, generated_ms) / (n - 1) if n > 1 else 0.0,
            spec_accepted=self.spec_accepted,
        )


def _build_draft_model(
    target: DecoderModel, spec: SpeculativeConfig
) -> DecoderModel:
    """Construct the speculative draft model from the target plus the
    :class:`~repro.runtime.model.SpeculativeConfig` overrides.

    The draft shares the target's token space (same vocab) and KV
    numerics, but runs on its own *unbounded* private pool: draft KV
    never competes with target sequences for bounded-pool headroom, it
    is simply freed on preemption and recomputed on resume. Prefix
    sharing is off — draft caches are cheap, short-lived, and never
    donate blocks. With no overrides the draft is weight-identical to
    the target (same seed, same shape), which makes greedy proposals
    always agree — the acceptance-rate-1.0 bench configuration.
    """
    cfg, rt = target.config, target.runtime

    def pick(override, inherited):
        return inherited if override is None else override

    draft_cfg = ModelConfig(
        name=f"{cfg.name}-draft",
        hidden=pick(spec.hidden, cfg.hidden),
        ffn=pick(spec.ffn, cfg.ffn),
        layers=pick(spec.layers, cfg.layers),
        heads=pick(spec.heads, cfg.heads),
        kv_heads=pick(spec.kv_heads, cfg.kv_heads),
        vocab=cfg.vocab,
        gated_ffn=cfg.gated_ffn,
    )
    draft_rt = replace(
        rt,
        weight_bits=pick(spec.weight_bits, rt.weight_bits),
        kv_bits=(
            rt.kv_bits if spec.kv_bits == "inherit" else spec.kv_bits
        ),
        seed=pick(spec.seed, rt.seed),
        backend=pick(spec.backend, rt.backend),
        kv_pool_blocks=None,
        prefix_sharing=False,
        prefix_cache_blocks=0,
        prefill_chunk=None,
        speculative=None,
    )
    return DecoderModel(draft_cfg, draft_rt)


class ServingEngine:
    """Continuous-batching scheduler over a :class:`DecoderModel`.

    ``scheduler`` selects the admission policy: a name from
    :data:`~repro.runtime.scheduler.SCHEDULERS` (``"fifo"``, ``"sjf"``,
    ``"memory-aware"``) or any :class:`SchedulerPolicy` instance.
    ``preemption`` selects the eviction policy consulted when a bounded
    pool cannot cover the next decode step: a name from
    :data:`~repro.runtime.scheduler.PREEMPTION_POLICIES`
    (``"priority-remaining"``, ``"latest-first"``) or any
    :class:`PreemptionPolicy` instance.
    """

    def __init__(
        self,
        model: DecoderModel,
        max_batch_size: int = 8,
        scheduler: str | SchedulerPolicy = "fifo",
        preemption: str | PreemptionPolicy = "priority-remaining",
    ) -> None:
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be >= 1")
        self.model = model
        self.max_batch_size = max_batch_size
        self.scheduler = get_scheduler(scheduler)
        self.preemption = get_preemption_policy(preemption)
        #: (request, submit wall-clock time) pairs in arrival order; the
        #: scheduler policy picks which index is admitted next.
        self.waiting: list[tuple[Request, float]] = []
        self.active: list[_Sequence] = []
        #: Admitted sequences mid-way through a chunked prefill: they
        #: hold blocks and a batch slot and advance by at most
        #: ``prefill_chunk`` prompt tokens per step (empty unless the
        #: runtime sets ``prefill_chunk``).
        self.prefilling: list[_Sequence] = []
        #: Swapped-out sequences in eviction order (recompute-on-resume
        #: records: request, generated tokens, sampling RNG, timings).
        self.preempted: list[_Sequence] = []
        self.finished: list[RequestResult] = []
        self._trace: list[StepTrace] = []
        self._prompt_tokens = 0
        self._preemptions = 0
        self._resumes = 0
        self._resume_ms = 0.0
        self._swaps = 0
        self._swap_resumes = 0
        self._swap_bytes = 0
        self._ids: set[str] = set()
        #: Speculative decoding: the draft proposer model and its
        #: per-step proposal count, built from
        #: ``model.runtime.speculative`` (``None`` => plain decoding).
        spec = model.runtime.speculative
        self.draft_model: DecoderModel | None = (
            _build_draft_model(model, spec) if spec is not None else None
        )
        self.spec_k = spec.k if spec is not None else 0

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue a request for admission."""
        limit = self.model.runtime.max_seq_len
        if len(request.prompt) + request.max_new_tokens > limit:
            raise ServingError(
                f"request {request.request_id}: prompt + max_new_tokens "
                f"({len(request.prompt)} + {request.max_new_tokens}) "
                f"exceeds max_seq_len {limit}"
            )
        pool = self.model.kv_pool
        if pool.num_blocks is not None:
            needed = worst_case_blocks(
                len(request.prompt), request.max_new_tokens,
                pool.block_size, self.model.config.layers,
            )
            # A prompt whose leading blocks are held by live sequences
            # never materializes them privately — discount them before
            # declaring the request unservable against its worst-case
            # footprint. Live-only: adopting a *parked* block would
            # re-occupy pool capacity, so counting it here would admit
            # requests that cannot fit even into an empty pool.
            shareable = self.model.shareable_blocks(
                request.prompt, live_only=True
            )
            if needed - shareable > pool.num_blocks:
                raise ServingError(
                    f"request {request.request_id}: needs {needed} KV "
                    f"blocks at full length ({shareable} shareable), "
                    f"pool holds {pool.num_blocks}"
                )
        if request.request_id in self._ids:
            raise ServingError(
                f"duplicate request id {request.request_id!r}"
            )
        self._ids.add(request.request_id)
        self.waiting.append((request, time.perf_counter()))

    @property
    def has_work(self) -> bool:
        return bool(
            self.waiting or self.active or self.prefilling
            or self.preempted
        )

    def _scheduling_context(self) -> SchedulingContext:
        pool = self.model.kv_pool
        free = pool.free_blocks
        if free is not None:
            # Report *unreserved* headroom: blocks the pool still owes
            # already-admitted sequences at their worst-case length
            # (prompt + max_new_tokens) are spoken for, even though
            # they are not allocated yet. Without this, admitting into
            # the interim gap lets an active sequence exhaust the pool
            # at its next block boundary — mid-decode, where it is a
            # hard error instead of back-pressure. A shared partial
            # trailing block carries one extra reserved block per
            # layer: its first append clones it (copy-on-write) while
            # the original stays with its other holders.
            # Mid-prefill sequences reserve like active ones: their
            # partial footprint is already allocated and the rest of
            # their worst case is still owed.
            reserved = 0
            layers = self.model.config.layers
            for seq in self.active + self.prefilling:
                request = seq.request
                worst = worst_case_blocks(
                    len(request.prompt), request.max_new_tokens,
                    pool.block_size, layers,
                )
                allocated = 0
                cow_debt = 0
                for cache in seq.caches:
                    allocated += len(cache.block_ids)
                    if (
                        cache.block_ids
                        and pool.refcount(cache.block_ids[-1]) > 1
                        and cache.length < cache.padded_context()
                    ):
                        cow_debt += 1
                reserved += max(0, worst - allocated) + cow_debt
            free = max(0, free - reserved)
        return SchedulingContext(
            free_slots=(
                self.max_batch_size - len(self.active)
                - len(self.prefilling)
            ),
            free_blocks=free,
            block_size=pool.block_size,
            layers=self.model.config.layers,
            live_shareable=lambda prompt: self.model.shareable_blocks(
                prompt, live_only=True
            ),
        )

    def _free_draft(self, seq: _Sequence) -> None:
        """Return a sequence's draft-model blocks (no-op without any)."""
        if seq.draft_caches is not None:
            self.draft_model.free_caches(seq.draft_caches)
            seq.draft_caches = None

    def _retire(self, seq: _Sequence) -> RequestResult:
        """Record a finished sequence and return its blocks to the pool."""
        result = seq.result()
        self.finished.append(result)
        self.model.free_caches(seq.caches)
        self._free_draft(seq)
        return result

    # ------------------------------------------------------------------
    def _preempt(self, seq: _Sequence) -> None:
        """Evict an active or mid-prefill sequence: release its block
        references and collapse it to a recompute-on-resume record.

        Shared blocks survive for their other holders; this sequence's
        full prompt blocks stay parked in the prefix index, so its own
        resumption re-prefill usually re-adopts them. A sequence
        evicted mid-prefill restarts its prompt from token zero on
        resumption (no decode state exists yet to replay).

        When the runtime sets ``swap_threshold_tokens`` and the cached
        context clears it, the KV blocks are serialized to a swap
        record *before* the pool frees them — resumption then restores
        the slabs (O(context) memcpy) instead of replaying the model
        (O(context) FLOPs). Mid-prefill sequences never swap: they
        have no decode state to preserve and restart from token zero
        either way.
        """
        threshold = self.model.runtime.swap_threshold_tokens
        if (
            threshold is not None
            and seq.generated
            and seq.caches
            and seq.caches[0].length >= threshold
        ):
            seq.swap_record = [cache.serialize() for cache in seq.caches]
            self._swaps += 1
            self._swap_bytes += sum(
                spill_nbytes(p) for p in seq.swap_record
            )
        self.model.free_caches(seq.caches)
        self._free_draft(seq)
        seq.caches = []
        seq.prefill_pos = 0
        seq.preemptions += 1
        self._preemptions += 1
        if seq in self.active:
            self.active.remove(seq)
        else:
            self.prefilling.remove(seq)
        self.preempted.append(seq)

    def _requeue_prefill(self, seq: _Sequence) -> None:
        """Re-admit a sequence that was preempted mid-prefill.

        Nothing was generated yet, so there is no decode state to
        replay — the sequence rejoins the chunked-prefill queue from
        token zero (recompute-on-resume for the prompt; a warm prefix
        index usually turns the recompute back into block-table
        adoption).
        """
        seq.caches = []
        seq.prefill_pos = 0
        self.prefilling.append(seq)
        self._resumes += 1

    def _can_resume(self, seq: _Sequence) -> bool:
        """Does the pool's unreserved headroom cover a resumption?

        The resumed sequence's worst case is its full original
        footprint (``prompt + generated`` rebuilt now, the rest of the
        generation later), minus the full blocks *live* holders are
        already keeping in the pool — parked cached-free matches do
        not count: adopting one costs the same headroom as a fresh
        allocation. A swapped sequence restores into private blocks
        and never adopts, so its headroom is the undiscounted worst
        case (see :func:`resume_blocks_needed`).
        """
        context = self._scheduling_context()
        if context.free_blocks is None:
            return True
        tokens = seq.resume_tokens
        needed = resume_blocks_needed(
            len(tokens), seq.remaining_tokens,
            context.block_size, context.layers,
            live_shareable=self.model.shareable_blocks(
                tokens, live_only=True
            ),
            swapped=seq.swap_record is not None,
        )
        return needed <= context.free_blocks

    def _resume(self, seq: _Sequence) -> RequestResult | None:
        """Re-admit a preempted sequence.

        A sequence carrying a swap record restores its serialized KV
        blocks into freshly allocated pool blocks — O(context) memcpy,
        zero model FLOPs — then runs **one** decode step on its last
        generated token, which yields exactly the logits the eviction
        interrupted (the restored cache holds ``prompt +
        generated[:-1]`` rows, the same state the unpreempted run had
        before that step). If the pool cannot host the restore or the
        follow-up step (:class:`ServingError`), the record is dropped
        and the sequence falls back to recompute-on-resume below,
        which can adopt live shared blocks instead of allocating.

        Recompute-on-resume: the prompt is re-prefilled through the
        prefix index (adopting
        any still-indexed blocks — mostly block-table reconstruction
        for a warm index), then the already-generated tokens are
        **replayed through the decode path**. Replaying rebuilds
        exactly the KV state the unpreempted run had — decode-path
        attention (quantized when ``kv_bits`` is set) writes the same
        rows it wrote the first time — so the next token is sampled
        from the same logits the eviction interrupted and preemption
        is output-transparent (bit-for-bit on the batch-invariant LUT
        backends; the reference backend's BLAS is batch-shape
        sensitive at the ulp level). Returns the completion record if
        that token finished the request, else ``None``.
        """
        if seq.swap_record is not None:
            started = time.perf_counter()
            caches: list[PagedLayerCache] = []
            try:
                for payload in seq.swap_record:
                    caches.append(
                        PagedLayerCache.restore(self.model.kv_pool, payload)
                    )
                seq.caches = caches
                logits = self.model.decode_step(
                    seq.generated[-1], seq.caches
                )
            except ServingError:
                # The pool cannot host the restore right now (another
                # holder may have grown since _can_resume was checked).
                # Release whatever was rebuilt and drop to the
                # recompute path, whose re-prefill adopts live shares.
                self.model.free_caches(caches)
                seq.caches = []
                seq.swap_record = None
            else:
                seq.swap_record = None
                self._resume_ms += (time.perf_counter() - started) * 1e3
                self._resumes += 1
                self._swap_resumes += 1
                seq.accept(seq.sample(logits))
                if seq.finish_reason is not None:
                    return self._retire(seq)
                self.active.append(seq)
                return None
        seq.caches = self.model.new_caches()
        started = time.perf_counter()
        try:
            self.model.prefill(np.array(seq.request.prompt), seq.caches)
            # Replay: the first generated token was sampled at prefill,
            # so every generated token is a decode-step *input*; the
            # last replay step yields the logits the preemption
            # interrupted.
            for token in seq.generated[:-1]:
                self.model.decode_step(token, seq.caches)
            logits = self.model.decode_step(seq.generated[-1], seq.caches)
        except Exception:
            # A failed resume (true pool exhaustion) must not leak the
            # partially rebuilt blocks.
            self.model.free_caches(seq.caches)
            raise
        self._resume_ms += (time.perf_counter() - started) * 1e3
        self._resumes += 1
        seq.accept(seq.sample(logits))
        if seq.finish_reason is not None:
            return self._retire(seq)
        self.active.append(seq)
        return None

    def _step_block_need(self, seq: _Sequence, rows: int = 1) -> int:
        """Pool blocks a step appending *rows* tokens must allocate for
        *seq*: boundary growth per layer (possibly several blocks for a
        speculative multi-row append), plus one per layer whose shared
        partial trailing block will be copy-on-written first."""
        pool = self.model.kv_pool
        bs = pool.block_size
        need = 0
        for cache in seq.caches:
            grown = -(-(cache.length + rows) // bs) - len(cache.block_ids)
            need += max(0, grown)
            if (
                cache.block_ids
                and pool.refcount(cache.block_ids[-1]) > 1
                and cache.length < cache.padded_context()
            ):
                need += 1
        return need

    # ------------------------------------------------------------------
    def _spec_step_k(self) -> int:
        """Draft tokens this step can speculate per sequence.

        0 means "run a plain decode step": speculation disabled, no
        positional headroom for even one draft row, or a bounded pool
        whose free blocks cannot cover every sequence's transient
        ``k + 1``-row append (the accepted prefix keeps at most that
        many; the rest is truncated back within the step, so the gate
        is actual free blocks, never the admission reservation).
        Falling back never changes the output stream — speculative
        steps are output-identical to plain ones by construction.
        """
        if self.draft_model is None or not self.active:
            return 0
        limit = self.model.runtime.max_seq_len
        k = self.spec_k
        for seq in self.active:
            k = min(k, limit - 1 - seq.caches[0].length)
        if k < 1:
            return 0
        pool = self.model.kv_pool
        if pool.num_blocks is not None:
            needed = sum(
                self._step_block_need(seq, rows=k + 1)
                for seq in self.active
            )
            if needed > pool.free_blocks:
                return 0
        return k

    def _draft_catch_up(self, seqs: list[_Sequence]) -> None:
        """Bring every sequence's draft cache to its decode frontier.

        Each draft must have consumed exactly ``prompt + generated``
        minus the final token (the next decode input). A fresh or
        post-preemption sequence rebuilds the whole history; after a
        fully-accepted speculative step or a plain fallback step the
        gap is one token. The rebuild mirrors how the *target* built
        its cache — prompt tokens through prefill, generated tokens
        through the decode path — so a draft configured identically to
        the target holds the exact same cache bits and its greedy
        proposals always agree. Replay decodes are batched across the
        lagging sequences (the usual case is everyone exactly one
        token behind: one batched step).
        """
        draft = self.draft_model
        histories = []
        for seq in seqs:
            if seq.draft_caches is None:
                seq.draft_caches = draft.new_caches()
            history = seq.request.prompt + tuple(seq.generated)
            have = seq.draft_caches[0].length
            prompt_len = len(seq.request.prompt)
            frontier = len(history) - 1
            if have < prompt_len and have < frontier:
                take = min(prompt_len, frontier)
                draft.prefill(np.array(history[have:take]), seq.draft_caches)
            histories.append(history)
        while True:
            behind = [
                (seq, hist)
                for seq, hist in zip(seqs, histories)
                if seq.draft_caches[0].length < len(hist) - 1
            ]
            if not behind:
                return
            tokens = np.array([
                hist[seq.draft_caches[0].length] for seq, hist in behind
            ])
            draft.decode_batch(
                tokens, [seq.draft_caches for seq, _ in behind]
            )

    def _spec_step(self, k: int) -> tuple[int, int, list[RequestResult]]:
        """One speculative decode step over the active batch.

        Per sequence: the draft greedily proposes ``k`` tokens, the
        target scores all ``k + 1`` candidate rows (current last token
        + proposals) in one :meth:`DecoderModel.verify_batch` pass, and
        sampling walks the rows exactly as sequential decoding would —
        each row's token is sampled (consuming the same per-request RNG
        draws in the same order), and the walk continues only while the
        sampled token equals the next candidate row's input. Rejected
        rows are rolled back with ``truncate_rows`` on the target *and*
        draft caches, so both pools hold exactly the state a plain run
        would. Returns ``(drafted, accepted_drafts, completions)``.
        """
        draft = self.draft_model
        seqs = list(self.active)
        b = len(seqs)
        self._draft_catch_up(seqs)
        draft_caches = [seq.draft_caches for seq in seqs]
        last = np.array([seq.last_token for seq in seqs])
        proposals = np.empty((b, k), dtype=np.int64)
        cur = last
        for j in range(k):
            logits = draft.decode_batch(cur, draft_caches)
            cur = np.argmax(logits, axis=1)
            proposals[:, j] = cur
        candidates = np.concatenate([last[:, None], proposals], axis=1)
        try:
            logits = self.model.verify_batch(
                candidates, [seq.caches for seq in seqs]
            )
        except Exception:
            # Mirror the plain decode path: a failed batched step
            # leaves per-layer state inconsistent — return all blocks
            # instead of leaking them.
            for seq in seqs:
                self.model.free_caches(seq.caches)
                self._free_draft(seq)
            self.active = []
            raise
        done: list[RequestResult] = []
        still_active: list[_Sequence] = []
        accepted_drafts = 0
        now = time.perf_counter()
        for i, seq in enumerate(seqs):
            m = 0
            for j in range(k + 1):
                token = seq.sample(logits[i, j])
                seq.accept(token, now=now)
                m += 1
                if seq.finish_reason is not None or j == k:
                    break
                if token != int(proposals[i, j]):
                    break
            seq.decode_steps += 1
            seq.spec_accepted += m - 1
            accepted_drafts += m - 1
            # Roll back the rejected candidate rows. The target keeps
            # m consumed rows of the k+1 appended; the draft consumed
            # last + proposals[:k-1] and must keep m of those k rows
            # (when every row was accepted it is one token *behind*
            # instead — the next catch-up prefills it).
            if k + 1 - m:
                for cache in seq.caches:
                    cache.truncate_rows(k + 1 - m)
            if k - m > 0:
                for cache in seq.draft_caches:
                    cache.truncate_rows(k - m)
            if seq.finish_reason is not None:
                done.append(self._retire(seq))
            else:
                still_active.append(seq)
        self.active = still_active
        return b * k, accepted_drafts, done

    # ------------------------------------------------------------------
    def _admit(self) -> list[RequestResult]:
        """Resume preempted sequences, then admit scheduler-selected
        waiting requests into free slots (monolithic prefill inline;
        with ``prefill_chunk`` set, admission only queues the sequence
        for budgeted chunked prefill and sequences preempted
        mid-prefill rejoin that queue).

        Preempted requests hold completed work, so they re-enter ahead
        of new admissions whenever the pool's unreserved headroom
        covers them. The admission policy is re-consulted after every
        admission (pool headroom and slot counts change); ``None``
        stops admission for this step. If nothing is active afterwards
        but preempted work remains, the head resumption is forced —
        the progress guarantee that turns PR 4's stall into forward
        motion (a truly unservable resumption raises instead of
        spinning). Returns requests that completed already at prefill
        or at resumption.
        """
        done: list[RequestResult] = []
        chunked = self.model.runtime.prefill_chunk is not None

        def occupied() -> int:
            return len(self.active) + len(self.prefilling)

        while self.preempted and occupied() < self.max_batch_size:
            if not self._can_resume(self.preempted[0]):
                break
            head = self.preempted.pop(0)
            if head.generated:
                result = self._resume(head)
                if result is not None:
                    done.append(result)
            else:
                # Preempted mid-prefill: no decode state to replay —
                # rejoin the chunked-prefill queue from token zero.
                self._requeue_prefill(head)
        while self.waiting and occupied() < self.max_batch_size:
            choice = self.scheduler.select(
                [
                    WaitingRequest(request, submitted)
                    for request, submitted in self.waiting
                ],
                self._scheduling_context(),
            )
            if choice is None:
                break
            request, submitted = self.waiting.pop(choice)
            seq = _Sequence(request, self.model, submitted)
            if chunked:
                # Chunked prefill: admission only claims the slot; the
                # prompt is processed by _prefill_step under the
                # per-step token budget, interleaved with decodes.
                self.prefilling.append(seq)
                continue
            started = time.perf_counter()
            try:
                logits = self.model.prefill(
                    np.array(request.prompt), seq.caches
                )
            except Exception:
                # Return the partially prefilled sequence's blocks so a
                # failed admission (e.g. pool exhaustion under FIFO)
                # doesn't leak pool capacity; the request itself is
                # dropped, active sequences stay resumable.
                self.model.free_caches(seq.caches)
                raise
            seq.prefill_ms = (time.perf_counter() - started) * 1e3
            seq.prefill_pos = len(request.prompt)
            self._prompt_tokens += len(request.prompt)
            seq.accept(seq.sample(logits[-1]))
            if seq.finish_reason is not None:
                done.append(self._retire(seq))
            else:
                self.active.append(seq)
        if not self.active and not self.prefilling and self.preempted:
            head = self.preempted.pop(0)
            if head.generated:
                result = self._resume(head)
                if result is not None:
                    done.append(result)
            else:
                self._requeue_prefill(head)
        if (
            self.waiting and not self.active and not self.prefilling
            and not self.preempted
        ):
            # Nothing is in flight, so no future step can free blocks
            # or change a slot count — if the policy still declines the
            # queue, it declines it forever. Surface the deadlock
            # instead of letting run() spin (reachable when a request
            # admitted through the sharing discount outlives its
            # donors).
            head = self.waiting[0][0]
            raise ServingError(
                f"admission deadlock: {len(self.waiting)} waiting "
                f"request(s), nothing active, and the {self.scheduler.name!r}"
                f" policy declines the head ({head.request_id!r}); the "
                "pool can never satisfy it"
            )
        return done

    def _prefill_chunk(
        self, seq: _Sequence, budget: int
    ) -> tuple[RequestResult | None, int]:
        """Advance one mid-prefill sequence by at most *budget* prompt
        tokens; returns ``(completion, tokens_spent)``.

        The first chunk is preceded by whole-prompt prefix adoption
        (:meth:`DecoderModel.adopt_prompt_prefix`), so chunking adopts
        exactly what a monolithic prefill would. When the final chunk
        lands, the first token is sampled and the sequence joins the
        active batch (or retires if one token was all it needed). On
        pool exhaustion mid-chunk the sequence self-preempts — its
        blocks are released and it restarts later — unless it is the
        only sequence holding anything, in which case the exhaustion is
        genuine and re-raised.
        """
        prompt = seq.request.prompt
        model = self.model
        started = time.perf_counter()
        try:
            if not seq.caches:
                seq.caches = model.new_caches()
            if seq.prefill_pos == 0:
                seq.prefill_pos = model.adopt_prompt_prefix(
                    np.array(prompt), seq.caches
                )
            take = min(budget, len(prompt) - seq.prefill_pos)
            logits = model.prefill(
                np.array(prompt[seq.prefill_pos:seq.prefill_pos + take]),
                seq.caches,
            )
        except ServingError:
            # Pool exhaustion mid-chunk. If any other sequence holds
            # blocks, theirs will drain — self-preempt and retry later;
            # alone, nothing can ever free the shortfall: re-raise.
            if self.active or len(self.prefilling) > 1:
                self._preempt(seq)
                return None, 0
            self.model.free_caches(seq.caches)
            self.prefilling.remove(seq)
            raise
        seq.prefill_ms += (time.perf_counter() - started) * 1e3
        seq.prefill_pos += take
        if seq.prefill_pos < len(prompt):
            return None, take
        self.prefilling.remove(seq)
        self._prompt_tokens += len(prompt)
        seq.accept(seq.sample(logits[-1]))
        if seq.finish_reason is not None:
            return self._retire(seq), take
        self.active.append(seq)
        return None, take

    def _prefill_step(self) -> list[RequestResult]:
        """Spend this step's ``prefill_chunk`` token budget across the
        in-progress prompts (chunked prefill).

        The budget is split fair-share over the prefilling queue —
        ``max(1, remaining // needy)`` tokens each, re-divided until
        the budget is spent or every prompt is done — so one long
        prompt cannot monopolize the step while short prompts wait
        (head-of-line TTFT). Sequences whose final chunk lands join
        the active batch immediately and decode in this same step.
        """
        done: list[RequestResult] = []
        budget = self.model.runtime.prefill_chunk
        if budget is None or not self.prefilling:
            return done
        remaining = budget
        while remaining > 0 and self.prefilling:
            queue = list(self.prefilling)
            progressed = False
            share = max(1, remaining // len(queue))
            for seq in queue:
                if remaining <= 0:
                    break
                result, spent = self._prefill_chunk(
                    seq, min(share, remaining)
                )
                remaining -= spent
                if spent:
                    progressed = True
                if result is not None:
                    done.append(result)
            if not progressed:
                break
        return done

    def step(self) -> list[RequestResult]:
        """Admit, run one batched decode step, retire finished sequences.

        Before the decode, a bounded pool is checked against the
        step's block needs (boundary allocations + copy-on-write
        clones); if they do not fit, the preemption policy's victims
        are evicted until they do. Returns the requests that finished
        during this step — at the decode step, at prefill, or at a
        resumption.
        """
        done = self._admit()
        done.extend(self._prefill_step())
        if not self.active:
            return done
        pool = self.model.kv_pool
        if pool.num_blocks is not None:
            # Relief valve: preempt until this step's allocations fit.
            # Block-holding mid-prefill sequences go first (latest
            # first — they lose the least completed work and re-adopt
            # most of it through the prefix index); then the preemption
            # policy ranks the active batch. A single remaining active
            # sequence is never preempted — evicting it cannot create
            # headroom its own resumption wouldn't need again, so a
            # genuine exhaustion surfaces in the decode as before.
            while True:
                needed = sum(
                    self._step_block_need(seq) for seq in self.active
                )
                if needed <= pool.free_blocks:
                    break
                holders = [
                    seq for seq in self.prefilling
                    if any(c.block_ids for c in seq.caches)
                ]
                if holders:
                    self._preempt(holders[-1])
                    continue
                if len(self.active) <= 1:
                    break
                order = self.preemption.select_victims(
                    self.active, self._scheduling_context()
                )
                if not order:
                    break
                self._preempt(self.active[order[0]])
        # Entry snapshot for the step trace; appended *after* the step
        # so a speculative step can record its drafted/accepted counts.
        entry = dict(
            step=len(self._trace),
            active=len(self.active),
            waiting=len(self.waiting),
            finished=len(self.finished),
            context_tokens=sum(
                seq.caches[0].length for seq in self.active
            ),
            kv_blocks_used=pool.used_blocks,
            kv_blocks_free=pool.free_blocks,
            preempted=len(self.preempted),
            kv_blocks_shared=pool.shared_in_use,
            prefilling=len(self.prefilling),
        )
        spec_k = self._spec_step_k()
        if spec_k:
            drafted, accepted, spec_done = self._spec_step(spec_k)
            done.extend(spec_done)
            self._trace.append(
                StepTrace(**entry, drafted=drafted, accepted=accepted)
            )
            return done
        tokens = np.array([seq.last_token for seq in self.active])
        caches = [seq.caches for seq in self.active]
        try:
            logits = self.model.decode_batch(tokens, caches)
        except Exception:
            # A failed batched step leaves per-layer cache state
            # inconsistent across the batch; the sequences cannot be
            # resumed, so return their blocks instead of leaking them
            # from the model's shared pool.
            for seq in self.active:
                self.model.free_caches(seq.caches)
                self._free_draft(seq)
            self.active = []
            raise
        # Vectorized accept/trace accounting: one argmax over the whole
        # logits batch (greedy sequences read their row of it — equal to
        # per-row argmax) and one wall-clock read for every acceptance.
        still_active: list[_Sequence] = []
        greedy = np.argmax(logits, axis=1)
        now = time.perf_counter()
        for i, seq in enumerate(self.active):
            seq.decode_steps += 1
            if seq.request.sampling.top_k is None:
                token = int(greedy[i])
            else:
                token = seq.sample(logits[i])
            seq.accept(token, now=now)
            if seq.finish_reason is not None:
                done.append(self._retire(seq))
            else:
                still_active.append(seq)
        self.active = still_active
        self._trace.append(StepTrace(**entry))
        return done

    def run(self, feed=None) -> tuple[list[RequestResult], EngineStats]:
        """Drive the engine until every submitted request completes.

        With *feed* set, the run is **open-loop**: before each step,
        ``feed(step)`` is called with the loop-iteration index and
        returns the requests arriving *now* (submitted before the step
        runs), or ``None`` once the arrival process is exhausted — the
        engine then drains the in-flight work and stops. The step index
        advances every loop iteration, including idle ones where
        nothing is in flight yet, so a feed can map wall-clock arrival
        offsets onto a virtual step clock (trace replay does exactly
        that). Without *feed* the behavior is unchanged: drain whatever
        was submitted beforehand.
        """
        started = time.perf_counter()
        if feed is None:
            while self.has_work:
                self.step()
        else:
            step = 0
            draining = False
            while True:
                if not draining:
                    batch = feed(step)
                    if batch is None:
                        draining = True
                    else:
                        for request in batch:
                            self.submit(request)
                if self.has_work:
                    self.step()
                elif draining:
                    break
                step += 1
        wall = time.perf_counter() - started
        results = list(self.finished)
        tpots = [r.tpot_ms for r in results if len(r.tokens) > 1]
        ttfts = [r.first_token_ms for r in results]
        tpot_p50, tpot_p95, tpot_p99 = percentiles(tpots, (50, 95, 99))
        ttft_p50, ttft_p95, ttft_p99 = percentiles(ttfts, (50, 95, 99))
        stats = EngineStats(
            requests=len(results),
            prompt_tokens=self._prompt_tokens,
            generated_tokens=sum(len(r.tokens) for r in results),
            # Only steps that actually ran a batched decode count; a
            # request finishing at prefill adds no decode step.
            decode_steps=len(self._trace),
            wall_s=wall,
            preemptions=self._preemptions,
            resumes=self._resumes,
            resume_ms_total=self._resume_ms,
            swaps=self._swaps,
            swap_resumes=self._swap_resumes,
            swap_bytes=self._swap_bytes,
            tpot_p50=tpot_p50,
            tpot_p95=tpot_p95,
            tpot_p99=tpot_p99,
            ttft_p50=ttft_p50,
            ttft_p95=ttft_p95,
            ttft_p99=ttft_p99,
            trace=list(self._trace),
        )
        return results, stats


__all__ = [
    "EngineStats",
    "Request",
    "RequestResult",
    "SamplingParams",
    "ServingEngine",
    "StepTrace",
]
