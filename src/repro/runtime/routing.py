"""Replica placement policies for the multi-worker router.

The router in :mod:`repro.runtime.cluster` fronts N shared-nothing
:class:`~repro.runtime.engine.ServingEngine` workers; this module
decides **which worker a request lands on**. Placement is the whole
game for prefix-cache locality: two requests sharing a long prompt
prefix only share KV blocks if they land on the *same* replica.

The headline ``prefix-aware`` policy exploits that the prefix index
built in PR 5 is content-addressed: a block chain is identified by
chained sha256 digests of token ids alone
(:meth:`~repro.runtime.paging.BlockAllocator.prefix_key`), so the
router can predict which replica holds a prompt's prefix **without
querying worker memory**. Each worker gets a :class:`ShadowPrefixIndex`
— a digest-set the *router* maintains from its own placement records
(every routed prompt's full-block chain keys are inserted) — and an
incoming prompt routes to the replica whose shadow chain covers the
most leading tokens. The shadow is an over-approximation (workers
evict under pressure; the shadow evicts by its own bounded policy),
which can only cost a missed sharing opportunity, never correctness:
workers re-verify token ids on every real match.

Policies implement :class:`RoutingPolicy` and are registered in
:data:`ROUTING_POLICIES` (same registry idiom as
:data:`~repro.runtime.scheduler.SCHEDULERS`):

- ``round-robin`` — rotate over workers in submission order;
- ``least-loaded`` — fewest in-flight requests (router-tracked, ties
  by lowest worker index);
- ``prefix-aware`` — longest shadow-index prefix chain; zero-match
  and ties fall back to least-loaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import ServingError
from repro.runtime.paging import (
    BlockAllocator,
    get_prefix_eviction_policy,
)


class ShadowPrefixIndex:
    """Router-side mirror of one worker's prefix-cache *reachability*.

    Holds the chained content digests of every **full** block of every
    prompt placed on the worker — partial trailing blocks are not
    mirrored (the router cannot know a worker block's live fill, and a
    partial match is at most ``block_size - 1`` tokens of signal).
    Bounded at *capacity* keys; over capacity the configured eviction
    policy (same names as the worker-pool seam:
    :data:`~repro.runtime.paging.PREFIX_EVICTION_POLICIES`) picks
    victims from the insertion-ordered key set.

    Matching never touches the worker: equal chained digests imply
    equal leading token histories, so the longest matched chain is a
    placement *prediction*. The worker's own index stays the source of
    truth for actual sharing.
    """

    def __init__(
        self,
        block_size: int,
        capacity: int = 4096,
        eviction: str = "lru",
    ) -> None:
        if block_size < 1:
            raise ServingError("block_size must be >= 1")
        if capacity < 1:
            raise ServingError("shadow capacity must be >= 1")
        self.block_size = block_size
        self.capacity = capacity
        self.eviction = get_prefix_eviction_policy(eviction)
        #: Insertion-ordered digest set (dict-as-ordered-set, the same
        #: structure the pool uses for parked blocks).
        self._keys: dict[bytes, None] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def _chain_keys(self, prompt: Sequence[int]) -> list[bytes]:
        """Chained digests of the prompt's full blocks, first to last.

        Layer 0 only: every layer's chain digests the same token ids,
        so one layer carries all the placement signal.
        """
        ids = [int(t) for t in prompt]
        keys: list[bytes] = []
        prev = b""
        for start in range(0, len(ids) - self.block_size + 1,
                           self.block_size):
            segment = tuple(ids[start:start + self.block_size])
            prev = BlockAllocator.prefix_key(0, prev, segment)
            keys.append(prev)
        return keys

    def record(self, prompt: Sequence[int]) -> None:
        """Index a placed prompt's full-block chain."""
        for key in self._chain_keys(prompt):
            if key in self._keys:
                # Move-to-end: recency for the lru policy's victim
                # order (first key = coldest).
                del self._keys[key]
            self._keys[key] = None
            self.eviction.record_use(key)
        while len(self._keys) > self.capacity:
            victim = self.eviction.select_victim(self._keys)
            self.eviction.forget(victim)
            del self._keys[victim]

    def match(self, prompt: Sequence[int]) -> int:
        """Leading tokens of *prompt* covered by the recorded chains.

        Walks full-block digests until the first miss; hits are
        re-touched so a matched chain stays warm in the shadow.
        """
        covered = 0
        for key in self._chain_keys(prompt):
            if key not in self._keys:
                break
            del self._keys[key]
            self._keys[key] = None
            self.eviction.record_use(key)
            covered += self.block_size
        return covered


@dataclass(frozen=True)
class RoutingContext:
    """Router state one placement decision may consult.

    Attributes
    ----------
    loads:
        In-flight request count per worker, router-tracked from its
        own submissions and completions (never queried from workers).
    shadows:
        Per-worker :class:`ShadowPrefixIndex`, maintained by the
        router from placement records.
    """

    loads: Sequence[int]
    shadows: Sequence[ShadowPrefixIndex]


@runtime_checkable
class RoutingPolicy(Protocol):
    """Contract every placement policy implements."""

    name: str

    def place(self, request, context: RoutingContext) -> int:
        """Worker index for *request* (a
        :class:`~repro.runtime.engine.Request`). *context* always has
        at least one worker."""
        ...


class RoundRobinPolicy:
    """Rotate over workers in submission order (the default)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def place(self, request, context):
        worker = self._next % len(context.loads)
        self._next = worker + 1
        return worker


class LeastLoadedPolicy:
    """Fewest in-flight requests, ties by lowest worker index."""

    name = "least-loaded"

    def place(self, request, context):
        return min(
            range(len(context.loads)),
            key=lambda i: (context.loads[i], i),
        )


class PrefixAwarePolicy:
    """Longest shadow-index prefix chain wins the placement.

    Workers whose shadow covers the most leading prompt tokens get the
    request — landing it where its KV prefix most plausibly already
    lives. Zero coverage everywhere (cold prompt) and exact coverage
    ties fall back to least-loaded so the policy degrades to load
    balancing, never to starvation of one replica.
    """

    name = "prefix-aware"

    def place(self, request, context):
        matches = [
            shadow.match(request.prompt) for shadow in context.shadows
        ]
        best = max(matches)
        if best == 0:
            return LeastLoadedPolicy().place(request, context)
        candidates = [i for i, m in enumerate(matches) if m == best]
        return min(candidates, key=lambda i: (context.loads[i], i))


#: Built-in routing policy constructors by name.
ROUTING_POLICIES: dict[str, Callable[[], RoutingPolicy]] = {
    "round-robin": RoundRobinPolicy,
    "least-loaded": LeastLoadedPolicy,
    "prefix-aware": PrefixAwarePolicy,
}


def get_routing_policy(policy: str | RoutingPolicy) -> RoutingPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, str):
        try:
            return ROUTING_POLICIES[policy]()
        except KeyError:
            raise ServingError(
                f"unknown routing policy {policy!r}; "
                f"available: {', '.join(sorted(ROUTING_POLICIES))}"
            ) from None
    if not isinstance(policy, RoutingPolicy):
        raise ServingError(
            "routing must be a policy name or implement RoutingPolicy"
        )
    return policy


__all__ = [
    "LeastLoadedPolicy",
    "PrefixAwarePolicy",
    "ROUTING_POLICIES",
    "RoundRobinPolicy",
    "RoutingContext",
    "RoutingPolicy",
    "ShadowPrefixIndex",
    "get_routing_policy",
]
