"""Paged KV allocation: a shared block pool with O(1) per-step plan work.

The contiguous :class:`~repro.runtime.kv.LayerKvCache` keeps one growing
buffer per (sequence, layer) and rebuilds the K-side
:class:`~repro.kernels.WeightPlan` from scratch at every decode step —
O(context) plan work per token, O(context²) per request, which
contradicts the paper's premise that all weight-side table preparation
is offline and amortized. This module replaces it with a vLLM-style
paged design:

- :class:`BlockAllocator` owns a **shared pool** of fixed-size token
  blocks (float K/V storage plus, in quantized mode, incrementally
  written K codes). Blocks are allocated as sequences grow, freed when
  requests complete, and reused by later requests.
- :class:`PagedLayerCache` is the per-(sequence, layer) view: a block
  table (list of block ids) plus a token count. ``append`` writes rows
  into the trailing block and quantizes K rows the moment they arrive
  (the per-row scales are independent, so the codes equal a
  from-scratch quantize — the same property the contiguous cache pins).
- **Per-block K plans**: the score mpGEMM treats the K rows of one
  block as a weight matrix ``(fill, head_dim)``. Each block keeps one
  :class:`~repro.kernels.WeightPlan` per KV head, built on first use
  and *extended* via :meth:`WeightPlan.extend` as rows arrive. Full
  blocks freeze their plans forever; only the trailing block pays
  O(head_dim) extension work per token — O(1) amortized in context.
- **Per-block V quantization**: V is group-quantized along the context
  *within each block* (groups of 16 when the block size allows, the
  same KIVI-style recipe :class:`~repro.lut.attention.QuantizedKvCache`
  applies at ``context == block_size``). Because groups never span
  blocks, full blocks quantize once and are cached; only the trailing
  block — the only place scales can still change — is requantized
  when its fill changed.

:func:`paged_decode_attention` stitches the blocks back together
bit-exactly: every output column of the score mpGEMM depends only on
its own K row (no cross-column reductions anywhere in the kernel
stack), so per-block score segments concatenated in block order equal a
single full-context matmul bit for bit; positions past the valid
context are masked to :data:`~repro.lut.attention.MASKED_SCORE` exactly
as the dense path masks its padding. The context mpGEMM accumulates
per-block partial products in ascending block order — the block
structure *is* the numeric recipe, and the parity tests pin the whole
incremental paged path against a from-scratch dense computation of the
same recipe.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import LutError, ServingError
from repro.kernels import WeightPlan, build_weight_plan, get_backend
from repro.lut.attention import MASKED_SCORE
from repro.lut.mpgemm import LutMpGemmConfig, precompute_tables
from repro.lut.table import DEFAULT_K
from repro.numerics import softmax
from repro.quant.weight import QuantizedWeight, quantize_weights
from repro.runtime.kv import KV_GROUP

#: Default tokens per KV block. A multiple of both the LUT group length
#: (so per-block contexts stay mpGEMM-alignable) and :data:`KV_GROUP`
#: (so V quantization groups never span blocks).
DEFAULT_BLOCK_SIZE = 16

#: Initial pool capacity (blocks) when no explicit bound is given; the
#: pool then grows geometrically on demand.
INITIAL_POOL_BLOCKS = 8


class BlockAllocator:
    """Shared fixed-size-block KV pool for one model's serving state.

    One allocator serves every sequence and every layer of a model:
    a block id names a ``(kv_heads, block_size, head_dim)`` slab of K
    and V storage (plus incremental K quantization state when ``bits``
    is set). ``num_blocks=None`` lets the pool grow geometrically on
    demand; a concrete bound makes :meth:`allocate` raise
    :class:`ServingError` on exhaustion — the failure mode the
    memory-aware admission policy exists to prevent.
    """

    def __init__(
        self,
        kv_heads: int,
        head_dim: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        num_blocks: int | None = None,
        bits: int | None = None,
        lut_k: int = DEFAULT_K,
    ) -> None:
        if kv_heads < 1 or head_dim < 1:
            raise ServingError("kv_heads and head_dim must be positive")
        if block_size < 1 or block_size % lut_k != 0:
            raise ServingError(
                f"block_size must be a positive multiple of lut_k={lut_k}, "
                f"got {block_size}"
            )
        if bits is not None and not 1 <= bits <= 8:
            raise ServingError(f"kv bits must be in 1..8, got {bits}")
        if bits is not None and head_dim % lut_k != 0:
            # head_dim is the reduction dim of every per-block K score
            # plan; catch the misfit at pool construction instead of at
            # the first decode, when tokens are already cached.
            raise ServingError(
                f"head_dim {head_dim} must be a multiple of lut_k={lut_k} "
                "for the paged LUT decode path"
            )
        if num_blocks is not None and num_blocks < 1:
            raise ServingError("num_blocks must be >= 1 or None")
        self.kv_heads = kv_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.num_blocks = num_blocks
        self.bits = bits
        self.lut_k = lut_k
        # Same per-row K recipe as the contiguous cache / the V recipe
        # QuantizedKvCache.quantize would pick at context == block_size.
        self._k_group = KV_GROUP if head_dim % KV_GROUP == 0 else None
        self._v_group = KV_GROUP if block_size % KV_GROUP == 0 else None

        cap = num_blocks if num_blocks is not None else INITIAL_POOL_BLOCKS
        self._alloc_storage(cap)
        self._free: list[int] = list(range(cap - 1, -1, -1))
        self._in_use: set[int] = set()
        self._ever_used: set[int] = set()
        self._fill = np.zeros(cap, dtype=np.int64)
        #: Per-block, per-KV-head K score plans (built lazily, extended
        #: incrementally) and V quantization caches, keyed by block id.
        self._k_plans: dict[int, list[WeightPlan]] = {}
        self._v_cache: dict[
            int, tuple[int, list[QuantizedWeight], list[WeightPlan]]
        ] = {}
        #: Allocation and incremental-plan-work counters. ``k_plan_cols``
        #: counts K-plan columns built or extended — per decode step it
        #: stays constant (one column per KV head per layer) no matter
        #: how long the context is; the serving bench reads the
        #: ``*_s`` timers to prove per-step plan time is flat.
        self.stats: dict[str, float] = {
            "allocated": 0,
            "freed": 0,
            "reused": 0,
            "k_plan_cols": 0,
            "k_plan_s": 0.0,
            "v_quant_cols": 0,
            "v_quant_s": 0.0,
        }

    # ------------------------------------------------------------------
    def _alloc_storage(self, cap: int) -> None:
        hw = (cap, self.kv_heads, self.block_size, self.head_dim)
        self._k = np.zeros(hw)
        self._v = np.zeros(hw)
        if self.bits is not None:
            scale_w = self.head_dim if self._k_group else 1
            self._k_codes = np.zeros(hw, dtype=np.int64)
            self._k_scale = np.ones(
                (cap, self.kv_heads, self.block_size, scale_w)
            )
            self._k_zp = np.zeros(
                (cap, self.kv_heads, self.block_size, scale_w)
            )

    def _grow(self) -> None:
        old_cap = self.capacity
        new_cap = old_cap * 2
        arrays = ["_k", "_v"] + (
            ["_k_codes", "_k_scale", "_k_zp"] if self.bits is not None else []
        )
        old = {name: getattr(self, name) for name in arrays}
        self._alloc_storage(new_cap)
        for name, arr in old.items():
            getattr(self, name)[:old_cap] = arr
        fill = np.zeros(new_cap, dtype=np.int64)
        fill[:old_cap] = self._fill
        self._fill = fill
        self._free.extend(range(new_cap - 1, old_cap - 1, -1))

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Blocks currently backed by storage (grows when unbounded)."""
        return self._k.shape[0]

    @property
    def free_blocks(self) -> int | None:
        """Blocks still allocatable; ``None`` when the pool is unbounded."""
        if self.num_blocks is None:
            return None
        return self.num_blocks - len(self._in_use)

    @property
    def used_blocks(self) -> int:
        return len(self._in_use)

    def blocks_for_tokens(self, tokens: int) -> int:
        """Blocks one layer of a *tokens*-long sequence occupies."""
        return -(-max(tokens, 0) // self.block_size)

    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Claim a free block; raises when a bounded pool is exhausted."""
        if not self._free:
            if self.num_blocks is not None:
                raise ServingError(
                    f"KV block pool exhausted ({self.num_blocks} blocks in "
                    "use); complete requests to free blocks or admit with "
                    "the memory-aware scheduler"
                )
            self._grow()
        bid = self._free.pop()
        self._in_use.add(bid)
        if bid in self._ever_used:
            self.stats["reused"] += 1
        else:
            self._ever_used.add(bid)
        self.stats["allocated"] += 1
        self._fill[bid] = 0
        return bid

    def free(self, block_id: int) -> None:
        """Return a block to the pool, scrubbing its state for reuse."""
        if block_id not in self._in_use:
            raise ServingError(f"block {block_id} is not allocated")
        self._in_use.remove(block_id)
        self._k[block_id] = 0.0
        self._v[block_id] = 0.0
        if self.bits is not None:
            self._k_codes[block_id] = 0
            self._k_scale[block_id] = 1.0
            self._k_zp[block_id] = 0.0
        self._fill[block_id] = 0
        self._k_plans.pop(block_id, None)
        self._v_cache.pop(block_id, None)
        self._free.append(block_id)
        self.stats["freed"] += 1

    # ------------------------------------------------------------------
    def write_rows(
        self, block_id: int, k_rows: np.ndarray, v_rows: np.ndarray
    ) -> None:
        """Append ``(t, kv_heads, head_dim)`` rows into one block.

        Writes the float slabs, quantizes the K rows in place (per-row
        scales — independent of every other row, hence equal to a
        from-scratch quantize), extends the block's K plans if they are
        already materialized, and invalidates the block's V cache (its
        trailing group's scales may have changed).
        """
        t_new = k_rows.shape[0]
        off = int(self._fill[block_id])
        if off + t_new > self.block_size:
            raise ServingError(
                f"block overflow: {off} + {t_new} > {self.block_size}"
            )
        self._k[block_id][:, off:off + t_new] = k_rows.transpose(1, 0, 2)
        self._v[block_id][:, off:off + t_new] = v_rows.transpose(1, 0, 2)
        if self.bits is not None:
            flat = k_rows.transpose(1, 0, 2).reshape(-1, self.head_dim)
            if self._k_group:
                qw = quantize_weights(
                    flat, self.bits, axis=1, group_size=self._k_group
                )
            else:
                qw = quantize_weights(flat, self.bits, axis=0)
            sl = np.s_[block_id, :, off:off + t_new]
            self._k_codes[sl] = qw.codes.reshape(
                self.kv_heads, t_new, self.head_dim
            )
            shape = (self.kv_heads, t_new, -1)
            self._k_scale[sl] = qw.scale.reshape(shape)
            self._k_zp[sl] = qw.zero_point.reshape(shape)
            plans = self._k_plans.get(block_id)
            if plans is not None:
                started = time.perf_counter()
                for h, plan in enumerate(plans):
                    plan.extend(self.k_row_weight(block_id, h, off, off + t_new))
                self.stats["k_plan_cols"] += t_new * self.kv_heads
                self.stats["k_plan_s"] += time.perf_counter() - started
            self._v_cache.pop(block_id, None)
        self._fill[block_id] = off + t_new

    def k_row_weight(
        self, block_id: int, head: int, r0: int, r1: int
    ) -> QuantizedWeight:
        """The quantized K rows ``[r0, r1)`` of one block/head as an
        ``(r1-r0, head_dim)`` weight — the unit :meth:`WeightPlan.extend`
        consumes."""
        return QuantizedWeight(
            codes=self._k_codes[block_id, head, r0:r1],
            scale=self._k_scale[block_id, head, r0:r1],
            zero_point=self._k_zp[block_id, head, r0:r1],
            bits=self.bits,
        )

    # ------------------------------------------------------------------
    def k_plans(self, block_id: int) -> list[WeightPlan]:
        """Per-KV-head score plans over the block's current rows.

        Built from scratch on first use (e.g. right after prefill —
        the one-time cost the paper's offline table quantization
        amortizes), then *extended* as rows arrive; a full block's plans
        are frozen and free on every later step.
        """
        if self.bits is None:
            raise ServingError("pool was built with bits=None (float mode)")
        plans = self._k_plans.get(block_id)
        if plans is None:
            fill = int(self._fill[block_id])
            started = time.perf_counter()
            plans = [
                build_weight_plan(
                    self.k_row_weight(block_id, h, 0, fill), self.lut_k
                )
                for h in range(self.kv_heads)
            ]
            self.stats["k_plan_cols"] += fill * self.kv_heads
            self.stats["k_plan_s"] += time.perf_counter() - started
            self._k_plans[block_id] = plans
        return plans

    def v_quantized(
        self, block_id: int
    ) -> tuple[list[QuantizedWeight], list[WeightPlan]]:
        """Per-KV-head quantized V (transposed, block-padded) + plans.

        The block's V slab is consumed as a ``(head_dim, block_size)``
        weight — zero columns past the fill, exactly the zero-padding
        the dense cache applies — and group-quantized along the block
        context. Cached per fill level: full blocks quantize once and
        never again; the trailing block requantizes only when its fill
        (and therefore its trailing group's scale) changed.
        """
        if self.bits is None:
            raise ServingError("pool was built with bits=None (float mode)")
        fill = int(self._fill[block_id])
        cached = self._v_cache.get(block_id)
        if cached is not None and cached[0] == fill:
            return cached[1], cached[2]
        started = time.perf_counter()
        v_quant = []
        for h in range(self.kv_heads):
            v_t = self._v[block_id, h].T  # (head_dim, block_size)
            if self._v_group:
                v_quant.append(
                    quantize_weights(
                        v_t, self.bits, axis=1, group_size=self._v_group
                    )
                )
            else:
                v_quant.append(quantize_weights(v_t, self.bits, axis=0))
        plans = [build_weight_plan(q, self.lut_k) for q in v_quant]
        self.stats["v_quant_cols"] += self.block_size * self.kv_heads
        self.stats["v_quant_s"] += time.perf_counter() - started
        self._v_cache[block_id] = (fill, v_quant, plans)
        return v_quant, plans


class PagedLayerCache:
    """Block-table view of one attention layer of one sequence.

    The drop-in successor of :class:`~repro.runtime.kv.LayerKvCache`
    for the serving model: same ``append``/``k_view``/``v_view``
    surface, but all storage lives in a shared :class:`BlockAllocator`
    and the quantized decode path runs over per-block cached plans
    instead of rebuilding full-context state each step. Call
    :meth:`release` when the sequence completes so the blocks return to
    the pool.
    """

    def __init__(self, pool: BlockAllocator) -> None:
        self.pool = pool
        self.block_ids: list[int] = []
        self.length = 0
        self._released = False

    # -- delegated geometry --------------------------------------------
    @property
    def kv_heads(self) -> int:
        return self.pool.kv_heads

    @property
    def head_dim(self) -> int:
        return self.pool.head_dim

    @property
    def bits(self) -> int | None:
        return self.pool.bits

    @property
    def lut_k(self) -> int:
        return self.pool.lut_k

    @property
    def block_size(self) -> int:
        return self.pool.block_size

    def padded_context(self) -> int:
        """Allocated context: block count × block size."""
        return len(self.block_ids) * self.block_size

    def block_fill(self, index: int) -> int:
        """Valid tokens in the *index*-th block of this sequence."""
        return min(
            self.block_size, self.length - index * self.block_size
        )

    # ------------------------------------------------------------------
    def append(self, k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Extend the sequence by one or more tokens (same contract as
        :meth:`LayerKvCache.append`), allocating blocks on demand."""
        if self._released:
            raise ServingError("cache was released back to the pool")
        k_rows = np.asarray(k_rows, dtype=np.float64)
        v_rows = np.asarray(v_rows, dtype=np.float64)
        if k_rows.ndim == 2:
            k_rows = k_rows[None]
            v_rows = v_rows[None]
        if (
            k_rows.shape != v_rows.shape
            or k_rows.shape[1:] != (self.kv_heads, self.head_dim)
        ):
            raise ServingError(
                f"expected rows of shape (*, {self.kv_heads}, "
                f"{self.head_dim}), got {k_rows.shape} / {v_rows.shape}"
            )
        written = 0
        total = k_rows.shape[0]
        while written < total:
            off = self.length % self.block_size
            if off == 0 and self.length == self.padded_context():
                self.block_ids.append(self.pool.allocate())
            take = min(self.block_size - off, total - written)
            self.pool.write_rows(
                self.block_ids[-1],
                k_rows[written:written + take],
                v_rows[written:written + take],
            )
            self.length += take
            written += take

    def release(self) -> None:
        """Return every block to the pool (idempotent)."""
        if self._released:
            return
        for bid in self.block_ids:
            self.pool.free(bid)
        self.block_ids = []
        self.length = 0
        self._released = True

    # ------------------------------------------------------------------
    def k_view(self) -> np.ndarray:
        """Float K history gathered from the block table,
        ``(kv_heads, length, head_dim)``."""
        return self._gather(self.pool._k)

    def v_view(self) -> np.ndarray:
        """Float V history gathered from the block table."""
        return self._gather(self.pool._v)

    def _gather(self, storage: np.ndarray) -> np.ndarray:
        out = np.empty((self.kv_heads, self.length, self.head_dim))
        for i, bid in enumerate(self.block_ids):
            fill = self.block_fill(i)
            start = i * self.block_size
            out[:, start:start + fill] = storage[bid][:, :fill]
        return out

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Footprint of the allocated blocks (packed when quantized).

        Pure shape arithmetic over the block table — padded block
        capacity included, mirroring what the pool actually holds.
        """
        entries = (
            2 * self.kv_heads * self.padded_context() * self.head_dim
        )
        if self.bits is None:
            return entries * 8
        return (entries * self.bits + 7) // 8


def paged_decode_attention(
    query: np.ndarray,
    cache: PagedLayerCache,
    repeat: int = 1,
    act_dtype=None,
    table_dtype=None,
    backend: str | None = None,
) -> np.ndarray:
    """Single-token LUT decode attention over a block table.

    *query* has shape ``(kv_heads * repeat, head_dim)`` (grouped-query
    attention shares each KV head's cached plans across ``repeat``
    query heads — by reference, no extra plan work). Returns the
    per-head context vectors, ``(heads, head_dim)``.

    Scores are computed block by block against the cached (extended)
    per-block K plans and stitched into one padded score vector —
    bit-identical to a single full-context mpGEMM because no kernel
    reduction crosses output columns. Unfilled trailing positions are
    masked to :data:`MASKED_SCORE`, so their probabilities underflow to
    exactly 0.0 and the zero-padded V columns contribute nothing. The
    context product then accumulates per-block partials in ascending
    block order over the per-block cached V plans.
    """
    if cache.bits is None:
        raise ServingError("paged LUT attention needs a quantized pool")
    if cache.length == 0:
        raise ServingError("cannot attend over an empty cache")
    config = LutMpGemmConfig(
        k=cache.lut_k,
        act_dtype=act_dtype,
        table_dtype=table_dtype,
        backend=backend,
    )
    kernel = get_backend(config.backend)
    if config.table_dtype is not None and not kernel.needs_table:
        raise LutError(
            f"backend {kernel.name!r} has no tables and cannot model "
            f"table_dtype={config.table_dtype.name} quantization"
        )
    heads = cache.kv_heads * repeat
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (heads, cache.head_dim):
        raise LutError(
            f"query must be ({heads}, {cache.head_dim}), got {query.shape}"
        )
    pool = cache.pool
    block_size = cache.block_size
    ctx_pad = cache.padded_context()
    inv_sqrt_d = 1.0 / np.sqrt(cache.head_dim)
    out = np.zeros_like(query)
    for qh in range(heads):
        kv_h = qh // repeat
        q_row = query[qh][None]
        q_table = precompute_tables(q_row, config) if kernel.needs_table else None
        scores = np.full(ctx_pad, MASKED_SCORE)
        for i, bid in enumerate(cache.block_ids):
            fill = cache.block_fill(i)
            plan = pool.k_plans(bid)[kv_h]
            seg = kernel.execute(plan, config, q_row, q_table)[0]
            start = i * block_size
            scores[start:start + fill] = seg * inv_sqrt_d
        probs = softmax(scores)
        ctx_vec: np.ndarray | None = None
        for i, bid in enumerate(cache.block_ids):
            _, v_plans = pool.v_quantized(bid)
            p_seg = probs[i * block_size:(i + 1) * block_size][None]
            p_table = (
                precompute_tables(p_seg, config) if kernel.needs_table else None
            )
            part = kernel.execute(v_plans[kv_h], config, p_seg, p_table)[0]
            ctx_vec = part if ctx_vec is None else ctx_vec + part
        out[qh] = ctx_vec
    return out


__all__ = [
    "BlockAllocator",
    "DEFAULT_BLOCK_SIZE",
    "INITIAL_POOL_BLOCKS",
    "PagedLayerCache",
    "paged_decode_attention",
]
